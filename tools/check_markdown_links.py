#!/usr/bin/env python
"""Check relative links and anchors in the repository's Markdown files.

The documentation map (``docs/README.md`` and the cross-links between
``README.md``, ``EXPERIMENTS.md``, ``ROADMAP.md`` and ``docs/*.md``) is only
useful while its links resolve.  This checker walks every inline Markdown
link in the given files (default: ``README.md``, ``EXPERIMENTS.md`` and
``docs/*.md``), skips external schemes (``http://``, ``https://``,
``mailto:``), and verifies that

* a relative target resolves to an existing file or directory, and
* an ``#anchor`` (on another Markdown file or the file itself) matches a
  heading, using GitHub's slug rules (lowercase, punctuation stripped,
  spaces to hyphens, ``-N`` suffixes for duplicates).

Fenced code blocks and inline code spans are ignored, so shell snippets
containing ``[...]`` never produce false positives.  Exit status 0 means
every link resolved; 1 lists the broken ones — which is what makes the CI
job fail loudly instead of letting the docs rot.

No third-party dependencies: run as ``python tools/check_markdown_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documented default scope (extend via command-line arguments).
DEFAULT_FILES = ("README.md", "EXPERIMENTS.md", "docs/*.md")

_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`[^`]*`")
#: Inline links/images: [text](target) with an optional "title".
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def _strip_code(text: str) -> str:
    """Blank out fenced code blocks and inline code spans, keeping line count."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else _INLINE_CODE.sub("", line))
    return "\n".join(lines)


def _github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (sans duplicate numbering)."""
    # Strip inline markup that does not appear in the anchor.
    text = _INLINE_CODE.sub(lambda match: match.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # [text](url) -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    """Every anchor GitHub generates for ``path``'s headings."""
    anchors: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_file(path: Path) -> list:
    """All broken links of one Markdown file, as human-readable strings."""
    problems = []
    text = _strip_code(path.read_text(encoding="utf-8"))
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue  # external URL: out of scope (and flaky to probe)
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (path.parent / raw_path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                        f"broken link target {target!r} "
                        f"(no such file: {raw_path})"
                    )
                    continue
            else:
                resolved = path
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors are only checkable on Markdown files
                if fragment.lower() not in heading_anchors(resolved):
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                        f"broken anchor {target!r} "
                        f"(no heading slugs to '#{fragment}' in "
                        f"{resolved.relative_to(REPO_ROOT)})"
                    )
    return problems


def main(argv=None) -> int:
    patterns = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_FILES)
    files = []
    for pattern in patterns:
        matched = sorted(REPO_ROOT.glob(pattern))
        if not matched:
            print(f"error: pattern {pattern!r} matched no files", file=sys.stderr)
            return 2
        files.extend(path for path in matched if path.is_file())

    problems = []
    for path in files:
        problems.extend(check_file(path))

    if problems:
        print(f"{len(problems)} broken link(s) in {len(files)} file(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"all relative links and anchors resolve across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
