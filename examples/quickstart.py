#!/usr/bin/env python
"""Quickstart: build an OSP instance, run randPr, and compare against OPT.

This walks through the library's central objects in ~60 lines:

1. build a small weighted set system and an online instance over it,
2. run the paper's randomized algorithm (randPr) and a greedy baseline,
3. compute the offline optimum and the closed-form competitive bounds,
4. print everything side by side.

Run with:  python examples/quickstart.py
"""

import random

from repro import RandPrAlgorithm, simulate
from repro.algorithms import GreedyWeightAlgorithm, UniformRandomAlgorithm
from repro.core import OnlineInstance, SetSystem, bound_report, compute_statistics
from repro.experiments import estimate_opt, measure_ratio
from repro.experiments.report import format_table


def build_demo_instance() -> OnlineInstance:
    """A hand-written instance: three data frames competing for six time slots.

    Frame "A" is a large, valuable video frame (4 packets, weight 4);
    frames "B" and "C" are smaller.  Several slots see bursts of more than
    one packet, so somebody has to lose.
    """
    system = SetSystem(
        sets={
            "A": ["t0", "t1", "t2", "t3"],
            "B": ["t1", "t2", "t4"],
            "C": ["t3", "t4", "t5"],
        },
        weights={"A": 4.0, "B": 3.0, "C": 3.0},
    )
    return OnlineInstance(system, ["t0", "t1", "t2", "t3", "t4", "t5"], name="quickstart")


def main() -> None:
    instance = build_demo_instance()
    stats = compute_statistics(instance.system)
    bounds = bound_report(stats)
    opt = estimate_opt(instance.system, method="exact")

    print("Instance:", instance)
    print(f"  k_max = {stats.k_max}, sigma_max = {stats.sigma_max}, "
          f"total weight = {stats.total_weight}")
    print(f"  offline OPT = {opt.value} (method: {opt.method})")
    print(f"  Theorem 1 bound on randPr's ratio : {bounds.theorem1:.3f}")
    print(f"  Corollary 6 bound (kmax*sqrt(smax)): {bounds.corollary6:.3f}")
    print()

    algorithms = [RandPrAlgorithm(), GreedyWeightAlgorithm(), UniformRandomAlgorithm()]
    rows = []
    for algorithm in algorithms:
        measurement = measure_ratio(instance, algorithm, trials=200, seed=7, opt=opt)
        rows.append(
            {
                "algorithm": algorithm.name,
                "mean benefit": round(measurement.mean_benefit, 3),
                "measured ratio": round(measurement.ratio, 3),
                "within Thm 1 bound": measurement.ratio <= bounds.theorem1 + 1e-9,
            }
        )
    print(format_table(rows, title="Algorithm comparison (200 trials)"))
    print()

    # Show one concrete randPr run with its per-step decisions.
    result = simulate(instance, RandPrAlgorithm(), rng=random.Random(42), record_steps=True)
    print("One randPr run (seed 42):")
    for step in result.steps:
        kept = ", ".join(sorted(map(str, step.assigned))) or "-"
        dropped = ", ".join(sorted(map(str, step.dropped))) or "-"
        print(f"  slot {step.element_id}: served frame {kept:3s} dropped {dropped}")
    print(f"  completed frames: {sorted(map(str, result.completed_sets))} "
          f"-> benefit {result.benefit}")


if __name__ == "__main__":
    main()
