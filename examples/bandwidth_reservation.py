#!/usr/bin/env python
"""General packing in action: online bandwidth reservation along link paths.

This example exercises the library's general-packing extension (the paper's
first open problem: packing programs with arbitrary non-negative integer
matrix entries).  Flows request an integer amount of bandwidth on every link
of a path through a chain of routers; each link offers a fixed capacity, and
a flow is worth admitting only if it gets its full bandwidth on *every* link
— the integer-demand analogue of the paper's multi-part tasks.

The script compares the generalized randPr (static R_w priorities with greedy
admission per link) against weight- and density-greedy baselines and the
exact offline optimum.

Run with:  python examples/bandwidth_reservation.py
"""

import random

from repro.algorithms.general import (
    GeneralDensityAlgorithm,
    GeneralGreedyWeightAlgorithm,
    GeneralRandPrAlgorithm,
)
from repro.core.general_packing import simulate_general, solve_general_exact
from repro.experiments.report import format_table
from repro.workloads.general import bandwidth_reservation_instance


def main() -> None:
    instance = bandwidth_reservation_instance(
        num_flows=18,
        num_links=10,
        path_length=4,
        link_capacity=6,
        rng=random.Random(42),
        bandwidth_range=(1, 3),
    )
    chosen, opt_value = solve_general_exact(instance)

    print("Bandwidth-reservation workload (general packing):")
    print(f"  flows requesting paths : {instance.num_sets}")
    print(f"  links (resources)      : {instance.num_resources}")
    print(f"  offline optimum        : admits weight {opt_value:.0f} "
          f"({len(chosen)} flows)")
    print()

    rows = []
    for factory, trials in (
        (GeneralRandPrAlgorithm, 50),
        (GeneralGreedyWeightAlgorithm, 1),
        (GeneralDensityAlgorithm, 1),
    ):
        total_benefit = 0.0
        total_admitted = 0
        for trial in range(trials):
            result = simulate_general(instance, factory(), rng=random.Random(trial))
            total_benefit += result.benefit
            total_admitted += result.num_completed
        rows.append(
            {
                "policy": factory().name,
                "mean admitted flows": round(total_admitted / trials, 1),
                "mean admitted weight": round(total_benefit / trials, 1),
                "ratio vs OPT": round(opt_value / max(total_benefit / trials, 1e-9), 2),
            }
        )
    print(format_table(rows, title="Online admission policies"))
    print()
    print("Every admitted flow received its full bandwidth on every link of its")
    print("path; partially served flows pay nothing, exactly as in OSP.  The")
    print("generalized randPr needs no per-link coordination: its priorities are")
    print("a function of the flow identifier and weight alone.")


if __name__ == "__main__":
    main()
