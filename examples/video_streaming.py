#!/usr/bin/env python
"""Video streaming through a bottleneck router (the paper's Section 1 scenario).

Four synthetic video flows (MPEG-like I/P/B group-of-pictures traffic) share
one outgoing link of capacity 1 packet per slot.  Each video frame fragments
into several MTU packets and is useful only if every packet survives.  The
example compares drop policies at the router:

* randPr (hash-priority, exactly the paper's algorithm),
* greedy-by-progress ("protect the frame that is almost done"),
* first-listed (serve whatever is first in the burst),
* uniform random dropping.

Run with:  python examples/video_streaming.py
"""

import random

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyProgressAlgorithm,
    HashedRandPrAlgorithm,
    UniformRandomAlgorithm,
)
from repro.core import compute_statistics
from repro.experiments.report import format_table
from repro.network import BottleneckRouter, jain_fairness_index
from repro.workloads import make_video_workload


def main() -> None:
    workload = make_video_workload(
        num_flows=4, frames_per_flow=30, seed=2024, link_capacity=1
    )
    stats = compute_statistics(workload.instance.system)
    print("Synthetic video workload:")
    print(f"  flows               : {workload.num_flows}")
    print(f"  frames offered      : {workload.num_frames}")
    print(f"  packets offered     : {workload.trace.num_packets}")
    print(f"  busy slots          : {workload.trace.busy_slots()}")
    print(f"  overloaded slots    : {workload.trace.overloaded_slots()}")
    print(f"  max burst (sigma)   : {workload.max_burst}")
    print(f"  max packets/frame k : {stats.k_max}")
    print()

    policies = {
        "randPr (hash)": HashedRandPrAlgorithm(salt="video-demo"),
        "greedy-progress": GreedyProgressAlgorithm(),
        "first-listed": FirstListedAlgorithm(),
        "uniform-random": UniformRandomAlgorithm(),
    }

    rows = []
    for label, policy in policies.items():
        router = BottleneckRouter(policy)
        outcome = router.run(workload.trace, rng=random.Random(99))
        metrics = outcome.metrics
        fairness = jain_fairness_index(metrics.per_flow_completion.values())
        rows.append(
            {
                "policy": label,
                "frames delivered": metrics.completed_frames,
                "completion %": round(100 * metrics.completion_ratio, 1),
                "goodput %": round(100 * metrics.goodput_ratio, 1),
                "flow fairness": round(fairness, 3),
            }
        )

    print(format_table(rows, title="Router drop-policy comparison"))
    print()
    print("Reading the table: randPr's strength is its *worst-case* guarantee — it")
    print("drops whole frames consistently, so no adversarial arrival pattern can")
    print("starve it (see examples/adversarial_lower_bound.py, where the greedy")
    print("heuristics collapse).  On smooth, well-ordered video traffic like this")
    print("one, the 'protect the almost-finished frame' greedy is a strong policy —")
    print("consistent with the positive results of Kesselman et al. for well-ordered")
    print("arrivals cited in the paper's related work — while policies that ignore")
    print("frame structure (first-listed, uniform-random) waste capacity on frames")
    print("that never complete.")


if __name__ == "__main__":
    main()
