#!/usr/bin/env python
"""Variable link capacity and buffering: the paper's extensions in action.

Part 1 (Theorem 4 setting): the outgoing link's per-slot capacity varies
(e.g. a wireless link whose rate fluctuates).  Elements then have capacities
b(u) > 1 and the relevant parameter is the *adjusted load* nu = sigma / b.
We sweep the link capacity and compare the measured competitive ratio of
randPr with the Theorem 4 bound.

Part 2 (open problem 2): the same adversarial burst trace is pushed through a
buffered link with increasing buffer sizes, showing how quickly a small
buffer closes the gap left by bufferless dropping — and that the
hash-priority rule still beats FIFO for any fixed buffer.

Run with:  python examples/variable_capacity_router.py
"""

import random

from repro.algorithms import RandPrAlgorithm
from repro.core import compute_statistics, theorem4_upper_bound
from repro.experiments import estimate_opt, measure_ratio
from repro.experiments.report import format_table
from repro.network import (
    FIFO_POLICY,
    PRIORITY_POLICY,
    AdversarialBurstGenerator,
    BufferedLink,
)
from repro.workloads import random_variable_capacity_instance


def part1_variable_capacity() -> None:
    print("Part 1: variable element capacities (Theorem 4)")
    rows = []
    for capacity in (1, 2, 3, 4):
        rng = random.Random(100 + capacity)
        instance = random_variable_capacity_instance(
            num_sets=40,
            num_elements=60,
            set_size_range=(2, 4),
            capacity_range=(1, capacity),
            rng=rng,
            name=f"b<= {capacity}",
        )
        stats = compute_statistics(instance.system)
        opt = estimate_opt(instance.system, method="auto")
        measurement = measure_ratio(
            instance, RandPrAlgorithm(), trials=40, seed=7, opt=opt
        )
        rows.append(
            {
                "max capacity": capacity,
                "mean adjusted load": round(stats.adjusted_load_mean, 2),
                "measured ratio": round(measurement.ratio, 2),
                "Theorem 4 bound": round(theorem4_upper_bound(stats), 1),
            }
        )
    print(format_table(rows))
    print("Larger capacities lower the adjusted load, and the measured ratio")
    print("drops with it — the shape Theorem 4 predicts (its constant is loose).")
    print()


def part2_buffering() -> None:
    print("Part 2: buffering the bottleneck (open problem 2)")
    # Waves of 4 aligned 3-packet frames, separated by idle gaps during which
    # a buffered link can drain.  A bufferless link can complete at most one
    # frame per wave no matter what; with a buffer the question is how much
    # of the backlog survives until the gap.
    trace = AdversarialBurstGenerator(
        burst_size=4, packets_per_frame=3, gap_slots=6
    ).generate(12)
    rows = []
    for buffer_size in (0, 1, 2, 4, 8):
        for policy in (PRIORITY_POLICY, FIFO_POLICY):
            link = BufferedLink(buffer_size=buffer_size, capacity=1, policy=policy)
            outcome = link.run(trace)
            rows.append(
                {
                    "buffer": buffer_size,
                    "policy": policy,
                    "frames delivered": outcome.metrics.completed_frames,
                    "of": outcome.metrics.total_frames,
                    "dropped packets": outcome.dropped_packets,
                }
            )
    print(format_table(rows))
    print("With idle gaps between bursts, growing the buffer steadily recovers")
    print("frames that the bufferless OSP model would have had to drop — the effect")
    print("the paper's second open problem asks about.  Under sustained overload")
    print("(no gaps) a buffer barely helps, since excess packets must be dropped")
    print("eventually regardless of policy.")


def main() -> None:
    part1_variable_capacity()
    part2_buffering()


if __name__ == "__main__":
    main()
