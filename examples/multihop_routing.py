#!/usr/bin/env python
"""Multi-hop packet scheduling with independent, uncoordinated switches.

The paper's second scenario: packets traverse several switches and are
delivered only if *no* switch on the route drops them.  Each (time, switch)
pair can serve a bounded number of packets.  The reduction to OSP models each
packet as a set whose elements are its (time, switch) visits.

This example builds a 6-switch line network, injects random packets over
contiguous sub-paths, and runs:

* hash-randPr executed *distributively* — every switch ranks packets with the
  same shared hash and sees only its own arrivals (zero coordination), and
* the same policy executed centrally, to confirm the outcomes are identical,
* plus a first-listed baseline for contrast, and the offline optimum.

Run with:  python examples/multihop_routing.py
"""

import random

from repro.algorithms import FirstListedAlgorithm, HashedRandPrAlgorithm
from repro.experiments import estimate_opt
from repro.experiments.report import format_table
from repro.network import MultiHopNetwork, random_path_workload


def main() -> None:
    hop_ids = [f"sw{i}" for i in range(6)]
    network = MultiHopNetwork(hop_ids, hop_capacity=1)
    packets = random_path_workload(
        num_packets=60,
        hop_ids=hop_ids,
        max_path_length=5,
        time_horizon=30,
        rng=random.Random(7),
    )
    instance = network.instance_for(packets)
    opt = estimate_opt(instance.system, method="auto")

    print(f"Line network with {len(hop_ids)} switches, {len(packets)} packets")
    print(f"  OSP view: {instance.system.num_sets} sets over "
          f"{instance.system.num_elements} (time, switch) elements")
    print(f"  offline OPT delivers {opt.value:.0f} packets ({opt.method})")
    print()

    salt = "multihop-demo"
    distributed = network.run_distributed(packets, salt=salt)
    centralized = network.run_centralized(
        packets, HashedRandPrAlgorithm(salt=salt), rng=random.Random(0)
    )
    baseline = network.run_centralized(
        packets, FirstListedAlgorithm(), rng=random.Random(0)
    )

    rows = [
        {
            "execution": "randPr, distributed (per-switch)",
            "packets delivered": distributed.num_completed,
        },
        {
            "execution": "randPr, centralized (same hash)",
            "packets delivered": len(centralized),
        },
        {
            "execution": "first-listed baseline",
            "packets delivered": len(baseline),
        },
        {
            "execution": "offline optimum",
            "packets delivered": int(opt.value),
        },
    ]
    print(format_table(rows, title="Delivered multi-hop packets"))
    print()

    agreement = distributed.completed_sets == frozenset(centralized)
    print(f"Distributed and centralized randPr agree on the delivered packets: {agreement}")
    print("Per-switch load (elements handled locally):")
    for node_id, count in sorted(distributed.per_node_counts.items()):
        print(f"  {node_id}: {count}")


if __name__ == "__main__":
    main()
