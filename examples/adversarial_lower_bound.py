#!/usr/bin/env python
"""Reproducing the lower bounds: Theorem 3 and the Lemma 9 / Figure 1 construction.

Part 1 plays the adaptive adversary of Theorem 3 against several deterministic
policies and shows that each is forced down to a single completed set while
the adversary's own solution completes about sigma^(k-1) sets.

Part 2 samples instances from the randomized Lemma 9 distribution (the
four-stage construction of Figure 1), prints the stage structure, and runs
both deterministic policies and randPr on them: the planted optimum is ell^3
while online algorithms complete only a handful of sets.

Run with:  python examples/adversarial_lower_bound.py
"""

import random

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyProgressAlgorithm,
    GreedyWeightAlgorithm,
    RandPrAlgorithm,
    StaticOrderAlgorithm,
)
from repro.core import simulate
from repro.experiments.report import format_table
from repro.lowerbounds import build_lemma9_instance, run_deterministic_adversary
from repro.lowerbounds.randomized_construction import theoretical_profile


def part1_theorem3() -> None:
    print("Part 1: the adaptive adversary of Theorem 3 (sigma=3, k=3)")
    rows = []
    for factory in (GreedyWeightAlgorithm, GreedyProgressAlgorithm,
                    FirstListedAlgorithm, StaticOrderAlgorithm):
        algorithm = factory()
        outcome = run_deterministic_adversary(algorithm, sigma=3, k=3)
        rows.append(
            {
                "algorithm": algorithm.name,
                "alg completed": outcome.algorithm_benefit,
                "adversary OPT": outcome.opt_benefit,
                "ratio": round(outcome.ratio, 2),
                "paper bound sigma^(k-1)": outcome.theoretical_lower_bound,
            }
        )
    print(format_table(rows))
    print()


def part2_lemma9() -> None:
    ell = 3
    print(f"Part 2: the randomized lower-bound distribution of Lemma 9 (ell={ell})")
    profile = theoretical_profile(ell)
    sample = build_lemma9_instance(ell, random.Random(1))
    print("  predicted structure vs. built instance:")
    print(f"    sets            : {profile['num_sets']} / {sample.instance.system.num_sets}")
    print(f"    planted optimum : {profile['planted_opt']} / {sample.planted_benefit}")
    print(f"    sigma_max       : {profile['sigma_max']}")
    print("    per-stage element counts:", sample.stage_element_counts)
    print()

    rows = []
    for algorithm in (GreedyWeightAlgorithm(), FirstListedAlgorithm(), RandPrAlgorithm()):
        benefits = []
        for seed in range(5):
            instance = build_lemma9_instance(ell, random.Random(seed)).instance
            result = simulate(instance, algorithm, rng=random.Random(seed + 100))
            benefits.append(result.benefit)
        mean_benefit = sum(benefits) / len(benefits)
        rows.append(
            {
                "algorithm": algorithm.name,
                "mean completed (5 draws)": round(mean_benefit, 2),
                "planted OPT": ell ** 3,
                "mean ratio": round(ell ** 3 / max(mean_benefit, 1e-9), 1),
            }
        )
    print(format_table(rows, title="Online algorithms vs. the planted optimum"))
    print()
    print("Every online algorithm — including randPr — is crushed on this family,")
    print("which is exactly what Theorem 2 predicts: no randomized algorithm can be")
    print("much better than kmax*sqrt(sigma_max)-competitive in the worst case.")


def main() -> None:
    part1_theorem3()
    part2_lemma9()


if __name__ == "__main__":
    main()
