"""E15 — throughput of the vectorized batch engine vs. the reference simulator.

Not a paper table: this experiment characterizes the reproduction itself.
A Monte-Carlo estimate of randPr's expected benefit pays the reference
simulator's per-arrival Python loop once per trial; the batch engine
(:mod:`repro.engine`) compiles the instance once and replays all trials as
array operations, so the same 1000-trial estimate should run an order of
magnitude faster *while returning bit-identical per-trial benefits* (the
differential suite pins the exactness; this benchmark pins the speed).

Headline claim checked here: >= 10x trial throughput at 1000 trials of
randPr on a 200-set / 400-element instance, with the batch time *including*
instance compilation and priority generation.
"""

import random
import time

from repro.algorithms import HashedRandPrAlgorithm, RandPrAlgorithm
from repro.core import simulate_batch, simulate_many
from repro.experiments import format_table
from repro.workloads import random_online_instance

NUM_SETS = 200
NUM_ELEMENTS = 400
SET_SIZE_RANGE = (2, 5)
WEIGHT_RANGE = (1.0, 6.0)
TRIALS = 1000
SEED = 42

#: The acceptance floor for the headline configuration.
MIN_SPEEDUP = 10.0


def _instance():
    return random_online_instance(
        NUM_SETS,
        NUM_ELEMENTS,
        SET_SIZE_RANGE,
        random.Random(SEED),
        weight_range=WEIGHT_RANGE,
        name=f"{NUM_SETS}x{NUM_ELEMENTS}",
    )


def _compare(instance, algorithm, trials, seed):
    """Time both engines on the same shared-seed batch and check agreement.

    The reference loop is timed once (it is long enough for timer noise not
    to matter and has no lazy-initialization cost); the batch engine is
    warmed once (first-call numpy setup) and then timed best-of-3, which is
    the standard way to measure a sub-100ms kernel.
    """
    start = time.perf_counter()
    reference = simulate_many(instance, algorithm, trials=trials, seed=seed)
    reference_seconds = time.perf_counter() - start

    simulate_batch(instance, algorithm, trials=min(trials, 10), seed=seed)  # warm-up
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = simulate_batch(instance, algorithm, trials=trials, seed=seed)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    # Shared-seed trials must agree exactly, or the speedup is meaningless.
    for trial, result in enumerate(reference):
        assert float(batch.benefits[trial]) == result.benefit
        assert batch.completed_sets(trial) == result.completed_sets

    return {
        "algorithm": algorithm.name,
        "trials": trials,
        "ref_seconds": round(reference_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "speedup": round(reference_seconds / batch_seconds, 1),
        "ref_trials_per_sec": int(trials / reference_seconds),
        "batch_trials_per_sec": int(trials / batch_seconds),
        "mean_benefit": round(batch.mean_benefit, 4),
    }


def test_e15_engine_speedup(run_once, experiment_report):
    def experiment():
        instance = _instance()
        return [
            _compare(instance, RandPrAlgorithm(), TRIALS, seed=7),
            _compare(instance, HashedRandPrAlgorithm(salt="bench"), 100, seed=7),
        ]

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E15: batch engine vs reference simulator "
            f"({NUM_SETS} sets x {NUM_ELEMENTS} elements, shared seeds)"
        ),
    )
    text += (
        f"\n\nheadline: randPr at {TRIALS} trials -> "
        f"{rows[0]['speedup']}x (floor: {MIN_SPEEDUP}x)"
    )
    experiment_report("E15_engine_speedup", text)

    # The headline acceptance bar: >= 10x at 1000 randPr trials.
    assert rows[0]["speedup"] >= MIN_SPEEDUP
