"""E15 — throughput of the vectorized batch engine vs. the reference simulator.

Not a paper table: this experiment characterizes the reproduction itself.
A Monte-Carlo estimate of randPr's expected benefit pays the reference
simulator's per-arrival Python loop once per trial; the batch engine
(:mod:`repro.engine`) compiles the instance once and replays all trials as
array operations, so the same 1000-trial estimate should run an order of
magnitude faster *while returning bit-identical per-trial benefits* (the
differential suite pins the exactness; this benchmark pins the speed).

Three phases are measured:

* **end-to-end trials** (the historical headline): ``simulate_many`` vs.
  ``simulate_batch``, batch timings taken cold (compile cache warm, but the
  RNG-bridge draw cache cleared per run so priority generation is included).
  Floor: >= 10x at 1000 randPr trials on the 200-set / 400-element instance.
* **priority setup** (the RNG-bridge phase): the per-trial priority
  *generation* alone — for the reference engine the ``random.Random(seed+b)``
  construction plus ``algorithm.start`` per trial (exactly ``simulate_many``'s
  per-trial setup), for the batch engine
  :func:`~repro.engine.specs.priority_matrix`.  Reported per kind (cold) and
  for the standard suite pair randPr + uniform-priority, which shares one
  vectorized draw table (`repro.engine.rng`'s cache) the way ``measure_suite``
  does.  Floors: >= 5x for the suite pair, >= 3x for cold randPr alone —
  the cold randPr path is bounded below by 200k scalar libm ``pow`` calls
  (the one stage that *cannot* be vectorized bit-exactly; see
  ``docs/INTERNALS-rng.md``), which is also why the draw-table sharing is
  part of the headline number.
* **uniform-random trials** (E15c, the word-stream phase): end-to-end trial
  throughput of ``UniformRandomAlgorithm`` — the per-arrival randomized
  baseline whose ``random.sample`` draws cannot use a precomputed priority
  row.  The batch engine replays the selection over batched per-trial
  MT19937 word streams (:class:`repro.engine.rng.WordStreams`); before the
  rewrite the replay was a per-trial Python loop barely faster than the
  reference simulator.  Floor: >= 3x reference trial throughput at
  1000 trials (measured well above; the margin grows with the batch since
  the vectorized replay's step cost is amortized over all trials).

Run directly for the CI smoke mode::

    python benchmarks/bench_engine_speedup.py --smoke

which runs the setup-phase measurement and a reduced-batch uniform-random
phase (both sub-second on a quiet machine), asserts all three floors and the
bit-identity probes, and skips only the minute-scale end-to-end phase.
"""

import argparse
import random
import sys
import time

from repro.algorithms import (
    HashedRandPrAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
    UnweightedPriorityAlgorithm,
)
from repro.core import simulate_batch, simulate_many
from repro.engine import AlgorithmSpec, clear_uniform_cache, compiled_for, priority_matrix
from repro.experiments import format_table
from repro.workloads import random_online_instance

NUM_SETS = 200
NUM_ELEMENTS = 400
SET_SIZE_RANGE = (2, 5)
WEIGHT_RANGE = (1.0, 6.0)
TRIALS = 1000
SEED = 42

#: The acceptance floor for the end-to-end headline configuration.
MIN_SPEEDUP = 10.0

#: Setup-phase floors (see the module docstring): the suite pair shares one
#: draw table; cold randPr alone is libm-pow-bound.
SETUP_SUITE_MIN_SPEEDUP = 5.0
SETUP_COLD_MIN_SPEEDUP = 3.0

#: Uniform-random (word-stream replay) floors: >= 3x reference trial
#: throughput at the full batch; the smoke mode uses a reduced batch (the
#: reference loop is the slow side) against the same floor.
UNIFORM_MIN_SPEEDUP = 3.0
UNIFORM_TRIALS = 1000
UNIFORM_SMOKE_TRIALS = 200


def _instance():
    return random_online_instance(
        NUM_SETS,
        NUM_ELEMENTS,
        SET_SIZE_RANGE,
        random.Random(SEED),
        weight_range=WEIGHT_RANGE,
        name=f"{NUM_SETS}x{NUM_ELEMENTS}",
    )


def _compare(instance, algorithm, trials, seed):
    """Time both engines on the same shared-seed batch and check agreement.

    The reference loop is timed once (it is long enough for timer noise not
    to matter and has no lazy-initialization cost); the batch engine is
    warmed once (first-call numpy setup) and then timed best-of-3 with the
    RNG-bridge draw cache cleared each round, so every timed run regenerates
    its priorities — the speedup includes priority generation, not just the
    replay.
    """
    start = time.perf_counter()
    reference = simulate_many(instance, algorithm, trials=trials, seed=seed)
    reference_seconds = time.perf_counter() - start

    simulate_batch(instance, algorithm, trials=min(trials, 10), seed=seed)  # warm-up
    batch_seconds = float("inf")
    for _ in range(3):
        clear_uniform_cache()
        start = time.perf_counter()
        batch = simulate_batch(instance, algorithm, trials=trials, seed=seed)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    # Shared-seed trials must agree exactly, or the speedup is meaningless.
    for trial, result in enumerate(reference):
        assert float(batch.benefits[trial]) == result.benefit
        assert batch.completed_sets(trial) == result.completed_sets

    return {
        "algorithm": algorithm.name,
        "trials": trials,
        "ref_seconds": round(reference_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "speedup": round(reference_seconds / batch_seconds, 1),
        "ref_trials_per_sec": int(trials / reference_seconds),
        "batch_trials_per_sec": int(trials / batch_seconds),
        "mean_benefit": round(batch.mean_benefit, 4),
    }


# ----------------------------------------------------------------------
# Priority-setup phase
# ----------------------------------------------------------------------


def _reference_setup_seconds(instance, algorithm, trials, seed, rounds=3):
    """Best-of-``rounds`` timing of ``simulate_many``'s per-trial setup.

    The per-trial setup is rng construction + set-info copy + ``start`` —
    exactly what the reference engine pays before any arrival.  Best-of on
    *both* sides of the comparison (here and in :func:`_batch_setup_seconds`)
    keeps the reported ratio stable on loaded machines: min/min converges to
    the quiet-machine ratio, while a single noisy pass on either side would
    swing the floor check both ways.
    """
    set_infos = instance.system.set_infos()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for trial in range(trials):
            rng = random.Random(seed + trial)
            infos = dict(set_infos)
            algorithm.start(infos, rng)
        best = min(best, time.perf_counter() - start)
    return best


def _batch_setup_seconds(compiled, specs, trials, seed, rounds=3):
    """Best-of-``rounds`` cold timing of the given priority-matrix sequence.

    The draw cache is cleared before every round, so a multi-spec sequence
    measures exactly what a suite pays: the first randomized spec generates
    the shared draw table, later ones reuse it.
    """
    best = float("inf")
    for _ in range(rounds):
        clear_uniform_cache()
        start = time.perf_counter()
        for spec in specs:
            priority_matrix(spec, compiled, trials, seed)
        best = min(best, time.perf_counter() - start)
    return best


def run_setup_phase(instance, trials, seed):
    """Measure the priority-setup phase; returns (rows, suite_speedup, cold_speedup)."""
    compiled = compiled_for(instance)
    priority_matrix(AlgorithmSpec("randPr"), compiled, 8, seed)  # warm numpy

    reference_randpr = _reference_setup_seconds(
        instance, RandPrAlgorithm(), trials, seed
    )
    reference_uniform = _reference_setup_seconds(
        instance, UnweightedPriorityAlgorithm(), trials, seed
    )
    batch_randpr = _batch_setup_seconds(
        compiled, [AlgorithmSpec("randPr")], trials, seed
    )
    batch_uniform = _batch_setup_seconds(
        compiled, [AlgorithmSpec("uniform-priority")], trials, seed
    )
    batch_suite = _batch_setup_seconds(
        compiled,
        [AlgorithmSpec("randPr"), AlgorithmSpec("uniform-priority")],
        trials,
        seed,
    )

    def row(phase, reference_seconds, batch_seconds):
        return {
            "setup phase": phase,
            "ref_ms": round(reference_seconds * 1e3, 1),
            "batch_ms": round(batch_seconds * 1e3, 1),
            "speedup": round(reference_seconds / batch_seconds, 1),
            "ref_trials_per_sec": int(trials / reference_seconds),
            "batch_trials_per_sec": int(trials / batch_seconds),
        }

    rows = [
        row("randPr (cold)", reference_randpr, batch_randpr),
        row("uniform-priority (cold)", reference_uniform, batch_uniform),
        row(
            "suite: randPr + uniform-priority (shared draw table)",
            reference_randpr + reference_uniform,
            batch_suite,
        ),
    ]
    suite_speedup = (reference_randpr + reference_uniform) / batch_suite
    cold_speedup = reference_randpr / batch_randpr
    return rows, suite_speedup, cold_speedup


def test_e15_engine_speedup(run_once, experiment_report):
    def experiment():
        instance = _instance()
        return [
            _compare(instance, RandPrAlgorithm(), TRIALS, seed=7),
            _compare(instance, HashedRandPrAlgorithm(salt="bench"), 100, seed=7),
        ]

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E15: batch engine vs reference simulator "
            f"({NUM_SETS} sets x {NUM_ELEMENTS} elements, shared seeds)"
        ),
    )
    text += (
        f"\n\nheadline: randPr at {TRIALS} trials -> "
        f"{rows[0]['speedup']}x (floor: {MIN_SPEEDUP}x)"
    )
    experiment_report("E15_engine_speedup", text)

    # The headline acceptance bar: >= 10x at 1000 randPr trials.
    assert rows[0]["speedup"] >= MIN_SPEEDUP


def test_e15b_priority_setup_speedup(run_once, experiment_report):
    def experiment():
        return run_setup_phase(_instance(), TRIALS, seed=7)

    rows, suite_speedup, cold_speedup = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E15b: priority-setup phase, reference per-trial start vs "
            f"RNG-bridge priority_matrix ({NUM_SETS} sets, {TRIALS} trials)"
        ),
    )
    text += (
        f"\n\nheadline: suite setup -> {suite_speedup:.1f}x "
        f"(floor: {SETUP_SUITE_MIN_SPEEDUP}x); "
        f"cold randPr setup -> {cold_speedup:.1f}x "
        f"(floor: {SETUP_COLD_MIN_SPEEDUP}x)"
    )
    experiment_report("E15b_priority_setup", text)

    assert suite_speedup >= SETUP_SUITE_MIN_SPEEDUP
    assert cold_speedup >= SETUP_COLD_MIN_SPEEDUP


def test_e15c_uniform_random_speedup(run_once, experiment_report):
    """E15c — trial throughput of the word-stream uniform-random replay.

    ``_compare`` asserts per-trial bit-identity between the engines before
    any timing is trusted, so the floor measures equal computations.
    """

    def experiment():
        instance = _instance()
        return [_compare(instance, UniformRandomAlgorithm(), UNIFORM_TRIALS, seed=7)]

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E15c: uniform-random trials, per-trial scalar reference vs "
            f"word-stream batch replay ({NUM_SETS} sets x {NUM_ELEMENTS} "
            f"elements, shared seeds)"
        ),
    )
    text += (
        f"\n\nheadline: uniform-random at {UNIFORM_TRIALS} trials -> "
        f"{rows[0]['speedup']}x (floor: {UNIFORM_MIN_SPEEDUP}x)"
    )
    experiment_report("E15c_uniform_random", text)

    assert rows[0]["speedup"] >= UNIFORM_MIN_SPEEDUP


def _smoke():
    """CI smoke: setup-phase + uniform-random floors plus bit-identity probes."""
    instance = _instance()
    # Exactness probe first — a speedup between unequal computations is void.
    algorithm = RandPrAlgorithm()
    batch = simulate_batch(instance, algorithm, trials=20, seed=7)
    for trial, result in enumerate(simulate_many(instance, algorithm, trials=20, seed=7)):
        assert batch.completed_sets(trial) == result.completed_sets
        assert float(batch.benefits[trial]) == result.benefit
    print("bit-identity probe OK (20 shared-seed randPr trials)")

    # Two attempts: a load spike on a shared CI runner can depress one whole
    # measurement; a *persistent* regression fails both.
    for attempt in (1, 2):
        rows, suite_speedup, cold_speedup = run_setup_phase(instance, TRIALS, seed=7)
        for entry in rows:
            print(
                f"{entry['setup phase']}: ref {entry['ref_ms']}ms, "
                f"batch {entry['batch_ms']}ms -> {entry['speedup']}x"
            )
        if (
            suite_speedup >= SETUP_SUITE_MIN_SPEEDUP
            and cold_speedup >= SETUP_COLD_MIN_SPEEDUP
        ):
            break
        print(f"floors missed on attempt {attempt}, remeasuring")
    assert suite_speedup >= SETUP_SUITE_MIN_SPEEDUP, (
        f"suite setup speedup {suite_speedup:.1f}x below the "
        f"{SETUP_SUITE_MIN_SPEEDUP}x floor"
    )
    assert cold_speedup >= SETUP_COLD_MIN_SPEEDUP, (
        f"cold randPr setup speedup {cold_speedup:.1f}x below the "
        f"{SETUP_COLD_MIN_SPEEDUP}x floor"
    )

    # Uniform-random word-stream phase, reduced batch (_compare also runs the
    # per-trial bit-identity probe); same two-attempt load tolerance.
    for attempt in (1, 2):
        row = _compare(
            instance, UniformRandomAlgorithm(), UNIFORM_SMOKE_TRIALS, seed=7
        )
        print(
            f"uniform-random ({UNIFORM_SMOKE_TRIALS} trials): "
            f"ref {row['ref_seconds']}s, batch {row['batch_seconds']}s "
            f"-> {row['speedup']}x"
        )
        if row["speedup"] >= UNIFORM_MIN_SPEEDUP:
            break
        print(f"uniform-random floor missed on attempt {attempt}, remeasuring")
    assert row["speedup"] >= UNIFORM_MIN_SPEEDUP, (
        f"uniform-random trial throughput {row['speedup']}x below the "
        f"{UNIFORM_MIN_SPEEDUP}x floor"
    )

    print(
        f"smoke OK: suite setup {suite_speedup:.1f}x "
        f"(floor {SETUP_SUITE_MIN_SPEEDUP}x), cold randPr {cold_speedup:.1f}x "
        f"(floor {SETUP_COLD_MIN_SPEEDUP}x), uniform-random {row['speedup']}x "
        f"(floor {UNIFORM_MIN_SPEEDUP}x)"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the setup-phase floors and a bit-identity probe (CI mode)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    return _smoke()


if __name__ == "__main__":
    sys.exit(main())
