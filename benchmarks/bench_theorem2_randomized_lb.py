"""E2 — Theorem 2: the randomized lower-bound distribution (Lemma 9).

Paper claim: there is a distribution over instances with ``ell^4`` sets,
planted optimum ``ell^3``, on which *every* online algorithm (randomized
included) completes only ``O((log ell / loglog ell)^2)`` sets in expectation,
giving the ``Ω(kmax (loglog k/log k)^2 sqrt(σmax))`` lower bound.

The experiment samples the distribution for growing ``ell`` and reports the
mean number of sets completed by deterministic baselines and by randPr,
against the planted optimum ``ell^3``.  Expected shape: the completed count
stays nearly flat (polylogarithmic) while the optimum grows like ``ell^3``,
so the measured ratio blows up with ``ell``.
"""

import random

from repro.algorithms import FirstListedAlgorithm, GreedyWeightAlgorithm, RandPrAlgorithm
from repro.core import compute_statistics, simulate
from repro.core.bounds import theorem2_lower_bound
from repro.experiments import format_table
from repro.lowerbounds import stored_lemma9_instance

ELLS = (2, 3, 4)
DRAWS_PER_ELL = 3
ALGORITHMS = (GreedyWeightAlgorithm, FirstListedAlgorithm, RandPrAlgorithm)


def test_e2_randomized_lower_bound(run_once, experiment_report):
    def experiment():
        rows = []
        for ell in ELLS:
            # (ell, seed)-memoized in the persistent store when OSP_STORE is
            # set: a warm suite re-run skips the construction entirely.
            samples = [
                stored_lemma9_instance(ell, seed=1000 * ell + i)
                for i in range(DRAWS_PER_ELL)
            ]
            stats = compute_statistics(samples[0].instance.system)
            for factory in ALGORITHMS:
                benefits = []
                for draw_index, sample in enumerate(samples):
                    result = simulate(
                        sample.instance, factory(), rng=random.Random(draw_index)
                    )
                    benefits.append(result.benefit)
                mean_benefit = sum(benefits) / len(benefits)
                rows.append(
                    {
                        "ell": ell,
                        "algorithm": factory().name,
                        "mean_completed": round(mean_benefit, 2),
                        "planted_opt": ell ** 3,
                        "measured_ratio": round(ell ** 3 / max(mean_benefit, 1e-9), 2),
                        "thm2_lb_expr": round(
                            theorem2_lower_bound(stats.k_max, stats.sigma_max), 2
                        ),
                        "k_max": stats.k_max,
                        "sigma_max": stats.sigma_max,
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E2: online algorithms on the Lemma 9 distribution "
        "(ratio must grow with ell)",
    )
    experiment_report(
        "E2_theorem2_randomized_lb",
        text,
        rows=rows,
        title="E2: online algorithms on the Lemma 9 distribution "
        "(ratio must grow with ell)",
    )

    # Shape check: the measured ratio of every algorithm grows with ell, and
    # at the largest ell all algorithms are far from constant-competitive.
    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row["measured_ratio"])
    for algorithm, ratios in by_algorithm.items():
        assert ratios[-1] > ratios[0], algorithm
        assert ratios[-1] >= ELLS[-1], algorithm
