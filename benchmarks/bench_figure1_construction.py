"""E8 — Figure 1: the stage structure of the Lemma 9 construction.

Figure 1 of the paper depicts the three gadget stages of the randomized
lower-bound construction (ell x ell blocks, then ell x ell^2 concatenations,
then the final (ell^2 - ell) x ell^2 gadget), followed by the load-one tail.

The experiment builds the construction for several ell, measures the per-stage
element counts, the load profile, the set sizes and the planted optimum, and
checks each against the closed-form profile that Lemma 9 promises
(stage I: ell^4 elements of load ell; stage II: ell^5 of load ell;
stage III: ell^4 of load ell^2 - ell plus ell^2 - ell of load ell^2;
stage IV: ell^5 of load 1; opt >= ell^3; sigma_max = ell^2).
"""

from repro.core import compute_statistics
from repro.core.statistics import load_histogram
from repro.experiments import format_table
from repro.lowerbounds import stored_lemma9_instance, theoretical_profile

ELLS = (2, 3, 4)


def test_e8_figure1_construction(run_once, experiment_report):
    def experiment():
        rows = []
        for ell in ELLS:
            # (ell, seed)-memoized via the persistent store under OSP_STORE.
            sample = stored_lemma9_instance(ell, seed=ell)
            profile = theoretical_profile(ell)
            stats = compute_statistics(sample.instance.system)
            histogram = load_histogram(sample.instance.system)
            rows.append(
                {
                    "ell": ell,
                    "sets (built/paper)": f"{stats.num_sets}/{profile['num_sets']}",
                    "stageI elems": f"{sample.stage_element_counts['stage1_elements']}"
                                    f"/{profile['stage1_elements']}",
                    "stageII elems": f"{sample.stage_element_counts['stage2_elements']}"
                                     f"/{profile['stage2_elements']}",
                    "stageIII elems": f"{sample.stage_element_counts['stage3_slope_elements'] + sample.stage_element_counts['stage3_row_elements']}"
                                      f"/{profile['stage3_slope_elements'] + profile['stage3_row_elements']}",
                    "stageIV elems": f"{sample.stage_element_counts['stage4_elements']}"
                                     f"/{profile['stage4_elements']}",
                    "planted opt": f"{sample.planted_benefit}/{profile['planted_opt']}",
                    "sigma_max": f"{stats.sigma_max}/{profile['sigma_max']}",
                    "load-1 elems": histogram.get(1, 0),
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E8: Figure 1 / Lemma 9 construction — built vs paper-predicted structure",
    )
    experiment_report("E8_figure1_construction", text)

    for row, ell in zip(rows, ELLS):
        for key in ("sets (built/paper)", "stageI elems", "stageII elems",
                    "stageIII elems", "stageIV elems", "planted opt", "sigma_max"):
            built, paper = str(row[key]).split("/")
            assert built == paper, (key, row)
        assert row["load-1 elems"] == ell ** 5
