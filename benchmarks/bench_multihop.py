"""E10 — multi-hop scheduling of multi-part tasks (Section 1, second scenario).

Packets traversing several switches are delivered only if no switch drops
them; each (time, switch) pair has bounded capacity.  The experiment sweeps
the path length of random packet workloads on a line network, compares the
distributed hash-randPr execution (no coordination between switches) with the
centralized execution and with a first-listed baseline, and reports delivery
counts and the ratio against the offline optimum.

Expected shape: distributed and centralized randPr deliver exactly the same
packets at every point, delivery degrades as routes get longer (sets get
bigger, exactly the kmax dependence of the bounds), and randPr stays within
the Corollary 6 bound.
"""

import random

from repro.algorithms import FirstListedAlgorithm, HashedRandPrAlgorithm
from repro.core import compute_statistics
from repro.core.bounds import corollary6_upper_bound
from repro.experiments import estimate_opt, format_table
from repro.network import MultiHopNetwork, random_path_workload

NUM_HOPS = 6
NUM_PACKETS = 60
TIME_HORIZON = 25
PATH_LENGTHS = (2, 3, 4, 6)
SEEDS = (1, 2, 3)


def test_e10_multihop(run_once, experiment_report):
    hop_ids = [f"sw{i}" for i in range(NUM_HOPS)]
    network = MultiHopNetwork(hop_ids, hop_capacity=1)

    def experiment():
        rows = []
        for max_path in PATH_LENGTHS:
            delivered_distributed = []
            delivered_centralized = []
            delivered_baseline = []
            opts = []
            bounds = []
            agreement = True
            for seed in SEEDS:
                packets = random_path_workload(
                    NUM_PACKETS, hop_ids, max_path, TIME_HORIZON, random.Random(seed)
                )
                instance = network.instance_for(packets)
                stats = compute_statistics(instance.system)
                bounds.append(corollary6_upper_bound(stats))
                opts.append(estimate_opt(instance.system, method="lp").value)
                salt = f"hop{max_path}.{seed}"
                distributed = network.run_distributed(packets, salt=salt)
                centralized = network.run_centralized(
                    packets, HashedRandPrAlgorithm(salt=salt)
                )
                baseline = network.run_centralized(packets, FirstListedAlgorithm())
                agreement &= distributed.completed_sets == frozenset(centralized)
                delivered_distributed.append(distributed.num_completed)
                delivered_centralized.append(len(centralized))
                delivered_baseline.append(len(baseline))
            mean_distributed = sum(delivered_distributed) / len(SEEDS)
            rows.append(
                {
                    "max_path_len": max_path,
                    "randPr_distributed": round(mean_distributed, 1),
                    "randPr_centralized": round(sum(delivered_centralized) / len(SEEDS), 1),
                    "first_listed": round(sum(delivered_baseline) / len(SEEDS), 1),
                    "LP_opt": round(sum(opts) / len(SEEDS), 1),
                    "ratio_randPr": round(
                        (sum(opts) / len(SEEDS)) / max(mean_distributed, 1e-9), 2
                    ),
                    "cor6_bound": round(sum(bounds) / len(SEEDS), 1),
                    "dist==central": agreement,
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E10: multi-hop line network — distributed randPr vs centralized "
        "vs baseline (mean packets delivered over 3 seeds)",
    )
    experiment_report("E10_multihop", text)

    for row in rows:
        assert row["dist==central"] is True
        assert row["ratio_randPr"] <= row["cor6_bound"] + 1e-6
    # Longer routes are harder: delivery does not improve as paths lengthen.
    assert rows[-1]["randPr_distributed"] <= rows[0]["randPr_distributed"] + 1.0
