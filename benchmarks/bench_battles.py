"""E18 — the battle harness: empirical frontiers against theorem bounds.

Not a new paper table: this experiment drives the battle harness
(:mod:`repro.battles`) over the smoke grid — randPr and the deterministic
greedy-weight baseline against the Lemma 9 construction (Theorem 2 bound),
the full finite-field gadget and synchronized bursts (Corollary 6 bound),
and the adaptive Theorem 3 adversary — and reports each battle's frontier:
how far the escalation got, the worst measured ratio at every visited
instance size, and which theorem expression terminated it.

Shape assertions anchor the harness to the theory:

* the Lemma 9 ladder *crosses* its Theorem 2 expression (the construction
  reaches its designed frontier),
* the upper-bound families stay *below* Corollary 6 at every rung for
  randPr (the bound is honored where it applies),
* the Theorem 3 adversary forces ``ratio >= sigma^(k-1)`` at every rung of
  the deterministic baseline's ladder and declines randomized opponents,
* the whole match is bit-identical across worker counts (the wall-clock
  knobs never touch the numbers).
"""

from repro.battles import run_smoke_match


def test_e18_battle_frontiers(run_once, experiment_report):
    def experiment():
        match = run_smoke_match(workers=1, store=False)
        # Determinism spot-check: the same grid at workers=2 is bit-identical.
        assert run_smoke_match(workers=2, store=False) == match
        rows = []
        for battle in match.battles:
            for point in battle.frontier.points:
                rows.append(
                    {
                        "algorithm": battle.algorithm_name,
                        "escalator": battle.escalator_name,
                        "level": point.label,
                        "num_sets": point.num_sets,
                        "worst_ratio": round(point.ratio, 3),
                        "bound": round(point.bound, 3),
                        "stop": battle.stop_reason,
                    }
                )
        return match, rows

    match, rows = run_once(experiment)
    from repro.experiments import format_table

    title = "E18: battle frontiers — measured ratio vs theorem bound per size"
    experiment_report("E18_battle_frontiers", format_table(rows, title=title),
                      rows=rows, title=title)

    # Lemma 9 reaches its Theorem 2 frontier for both combatants.
    for algorithm in ("randPr", "greedy-weight"):
        assert match.battle_for(algorithm, "lemma9").stop_reason == "bound-crossed"
    # Upper-bound families honor Corollary 6 for randPr at every rung.
    for escalator in ("full-gadget", "adversarial-burst"):
        battle = match.battle_for("randPr", escalator)
        assert battle.rounds, escalator
        assert all(r.ratio < r.bound for r in battle.rounds), escalator
    # The Theorem 3 adversary: declines randPr, forces the bound on greedy.
    assert match.battle_for("randPr", "theorem3-adversary").stop_reason == "not-applicable"
    adversary = match.battle_for("greedy-weight", "theorem3-adversary")
    assert adversary.rounds
    assert all(r.ratio >= r.bound for r in adversary.rounds)
