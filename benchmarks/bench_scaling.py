"""E11 — scaling of the simulator and of randPr's decision machinery.

Not a paper table: this experiment characterizes the reproduction itself.
randPr's per-element work is O(σ log σ) (sorting the parent sets by
priority), so the total simulation cost grows near-linearly in the number of
element-set incidences.  The experiment times full simulations on growing
random instances and reports throughput (incidences processed per second);
the pytest-benchmark timing of the largest instance is the headline number.

The simulations are routed through either the reference simulator or the
vectorized batch engine (``repro.engine``) via the ``OSP_BENCH_ENGINE``
environment variable (``reference`` | ``batch`` | ``auto``; default
``auto``).  The engines agree run for run — ``tests/test_engine_differential.py``
pins that — so the flag changes the timings, never the completed counts.
"""

import os
import random
import time

from repro.algorithms import RandPrAlgorithm
from repro.core import simulate, simulate_batch
from repro.experiments import format_table
from repro.experiments.competitive_ratio import validate_engine
from repro.workloads import random_online_instance

ENGINE = validate_engine(os.environ.get("OSP_BENCH_ENGINE", "auto"))

SCALES = (
    (100, 200),
    (400, 800),
    (1600, 3200),
)
SET_SIZE_RANGE = (2, 5)


def _build(num_sets, num_elements, seed=0):
    return random_online_instance(
        num_sets, num_elements, SET_SIZE_RANGE, random.Random(seed),
        name=f"{num_sets}x{num_elements}",
    )


def _run_one(instance, seed):
    """One randPr run on the engine selected by OSP_BENCH_ENGINE.

    A batch of one trial with ``seed`` replays exactly the reference run
    with ``random.Random(seed)``, so both paths count the same completions.
    """
    if ENGINE == "reference":
        return simulate(instance, RandPrAlgorithm(), rng=random.Random(seed)).num_completed
    return int(simulate_batch(instance, "randPr", trials=1, seed=seed).completed_counts[0])


def test_e11_scaling_profile(run_once, experiment_report):
    def experiment():
        rows = []
        for num_sets, num_elements in SCALES:
            instance = _build(num_sets, num_elements)
            incidences = sum(
                instance.system.size(set_id) for set_id in instance.system.set_ids
            )
            start = time.perf_counter()
            completed = _run_one(instance, seed=1)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "sets": num_sets,
                    "elements": num_elements,
                    "incidences": incidences,
                    "completed": completed,
                    "seconds": round(elapsed, 4),
                    "incidences_per_sec": int(incidences / elapsed) if elapsed else 0,
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=f"E11: simulator scaling (randPr, engine={ENGINE}, single run per size)",
    )
    experiment_report("E11_scaling", text)

    # Throughput must not collapse as the instance grows (near-linear scaling).
    assert rows[-1]["incidences_per_sec"] > rows[0]["incidences_per_sec"] / 20


def test_e11_largest_instance_timing(benchmark):
    """Headline timing: one full randPr simulation at the largest scale."""
    instance = _build(*SCALES[-1], seed=7)

    def body():
        return _run_one(instance, seed=3)

    completed = benchmark(body)
    assert completed >= 0
