"""Shared fixtures for the benchmark/experiment suite.

Every benchmark module regenerates one experiment from DESIGN.md (E1-E14):
it runs the workload the paper's claim describes, prints the resulting table
(visible with ``pytest benchmarks/ --benchmark-only -s``) and also writes it
to ``benchmarks/_results/<experiment>.txt`` so the numbers survive output
capturing.  The ``run_once`` fixture times the experiment body exactly once
under pytest-benchmark — these are scientific experiments, not
micro-benchmarks, so repeated timing rounds would only waste the budget.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "_results"


@pytest.fixture
def experiment_report():
    """A callable that prints a report and persists it under _results/."""

    def _report(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run an experiment body exactly once under the benchmark timer."""

    def _run(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return _run
