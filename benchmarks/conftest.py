"""Shared fixtures for the benchmark/experiment suite.

Every benchmark module regenerates one experiment from DESIGN.md (E1-E14):
it runs the workload the paper's claim describes, prints the resulting table
(visible with ``pytest benchmarks/ --benchmark-only -s``) and also writes it
to ``benchmarks/_results/<experiment>.txt`` so the numbers survive output
capturing.  When the benchmark passes its raw rows along, a Markdown twin
(``_results/<experiment>.md``, rendered by
:func:`repro.experiments.report.format_markdown_table`) is written as well —
those are the tables EXPERIMENTS.md quotes.  The ``run_once`` fixture times
the experiment body exactly once under pytest-benchmark — these are
scientific experiments, not micro-benchmarks, so repeated timing rounds
would only waste the budget.

Persistent store: exporting ``OSP_STORE=<path>`` makes every sweep in the
suite read/write the file-backed solution store (completed work units and
OPT solves are skipped on the next invocation; see
:mod:`repro.experiments.store`).  The session fixture below announces the
store and prints its hit/miss counters at the end of the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import format_markdown_table
from repro.experiments.store import store_for_path, store_path_from_env

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "_results"


@pytest.fixture(scope="session", autouse=True)
def solution_store_report():
    """Announce the ``OSP_STORE`` store (if any) and report its counters."""
    path = store_path_from_env()
    if path is None:
        yield None
        return
    store = store_for_path(path)
    print(f"\n[benchmarks] persistent solution store: {store.path}")
    yield store
    stats = store.stats()
    print(
        f"\n[benchmarks] store {store.path}: "
        f"{stats['unit_hits']} unit hit(s), {stats['unit_misses']} miss(es); "
        f"{stats['opt_hits']} OPT hit(s), {stats['opt_misses']} miss(es); "
        f"{stats['opt_entries']} OPT + {stats['unit_entries']} unit entries on disk"
    )


@pytest.fixture
def experiment_report():
    """A callable that prints a report and persists it under _results/.

    ``rows``/``columns``/``title`` are optional: when the experiment passes
    its raw row dictionaries, the report is *also* written as
    ``_results/<experiment>.md`` — a GitHub-flavoured Markdown table suitable
    for quoting in EXPERIMENTS.md — alongside the plain-text ``.txt``.
    """

    def _report(experiment_id, text, rows=None, columns=None, title=None):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        if rows is not None:
            markdown = format_markdown_table(
                rows, columns=columns, title=title or experiment_id
            )
            (RESULTS_DIR / f"{experiment_id}.md").write_text(
                markdown + "\n", encoding="utf-8"
            )
        print()
        print(text)

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run an experiment body exactly once under the benchmark timer."""

    def _run(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return _run
