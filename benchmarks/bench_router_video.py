"""E9 — the bottleneck-router / video scenario of the paper's introduction.

The paper motivates OSP with video frames fragmented into packets contending
at an outgoing router link.  This experiment pushes synthetic multi-flow video
traffic (the substitution documented in DESIGN.md) through the router under
every drop policy in the library and reports frame completion, goodput and
per-flow fairness, plus the OSP-level competitive ratio against the offline
optimum.  Expected shape: frame-aware policies (randPr, greedy-progress)
deliver far more complete frames than frame-oblivious ones (first-listed,
uniform-random), and randPr's measured ratio respects Corollary 6.
"""

import random

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyProgressAlgorithm,
    GreedyWeightAlgorithm,
    HashedRandPrAlgorithm,
    UniformRandomAlgorithm,
)
from repro.core import compute_statistics
from repro.core.bounds import corollary6_upper_bound
from repro.experiments import estimate_opt, format_table
from repro.network import BottleneckRouter, jain_fairness_index
from repro.workloads import make_video_workload

NUM_FLOWS = 4
FRAMES_PER_FLOW = 25
SEEDS = (2024, 2025, 2026)


def test_e9_router_video(run_once, experiment_report):
    policies = {
        "randPr": lambda seed: HashedRandPrAlgorithm(salt=f"video{seed}"),
        "greedy-progress": lambda seed: GreedyProgressAlgorithm(),
        "greedy-weight": lambda seed: GreedyWeightAlgorithm(),
        "first-listed": lambda seed: FirstListedAlgorithm(),
        "uniform-random": lambda seed: UniformRandomAlgorithm(),
    }

    def experiment():
        aggregates = {name: {"frames": 0.0, "goodput": 0.0, "fairness": 0.0, "ratio": 0.0}
                      for name in policies}
        bound_total = 0.0
        for seed in SEEDS:
            workload = make_video_workload(
                num_flows=NUM_FLOWS, frames_per_flow=FRAMES_PER_FLOW, seed=seed
            )
            stats = compute_statistics(workload.instance.system)
            bound_total += corollary6_upper_bound(stats)
            opt = estimate_opt(workload.instance.system, method="lp")
            for name, factory in policies.items():
                outcome = BottleneckRouter(factory(seed)).run(
                    workload.trace, rng=random.Random(seed)
                )
                metrics = outcome.metrics
                aggregates[name]["frames"] += metrics.completion_ratio
                aggregates[name]["goodput"] += metrics.goodput_ratio
                aggregates[name]["fairness"] += jain_fairness_index(
                    metrics.per_flow_completion.values()
                )
                aggregates[name]["ratio"] += (
                    opt.value / outcome.benefit if outcome.benefit else float("inf")
                )
        rows = []
        for name, sums in aggregates.items():
            rows.append(
                {
                    "policy": name,
                    "frame_completion_%": round(100 * sums["frames"] / len(SEEDS), 1),
                    "goodput_%": round(100 * sums["goodput"] / len(SEEDS), 1),
                    "flow_fairness": round(sums["fairness"] / len(SEEDS), 3),
                    "ratio_vs_LP_opt": round(sums["ratio"] / len(SEEDS), 2),
                }
            )
        return rows, bound_total / len(SEEDS)

    rows, mean_bound = run_once(experiment)
    text = format_table(
        rows,
        title="E9: bottleneck router on synthetic video traffic "
        f"({NUM_FLOWS} flows x {FRAMES_PER_FLOW} frames, {len(SEEDS)} seeds)",
    )
    text += f"\n\nmean Corollary 6 bound for these instances: {mean_bound:.2f}"
    experiment_report("E9_router_video", text)

    by_policy = {row["policy"]: row for row in rows}
    # Frame-aware policies beat frame-oblivious ones on completed frames.
    assert by_policy["randPr"]["frame_completion_%"] >= by_policy["uniform-random"]["frame_completion_%"]
    assert by_policy["greedy-progress"]["frame_completion_%"] >= by_policy["uniform-random"]["frame_completion_%"]
    # randPr respects the paper's bound (measured against the LP upper bound).
    assert by_policy["randPr"]["ratio_vs_LP_opt"] <= mean_bound + 1.0
