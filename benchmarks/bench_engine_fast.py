"""E20 — trial throughput of the statistical fast engine vs the exact batch engine.

Not a paper table: this experiment characterizes the reproduction itself.
The exact batch engine is bound by its bit-exactness contract — MT19937
draw tables, scalar libm ``pow`` (``exact_pow``), float64 everywhere.  The
fast engine (:mod:`repro.engine.fast`, ``engine="fast"``) drops bit-identity
for a *statistical* contract and gets counter-based PCG64 draws, float32
priorities and numpy's vectorized power kernel.  This benchmark pins the
payoff: at production trial counts the fast engine must deliver **>= 3x**
the exact batch engine's trial throughput on the standard 200-set
instance — and the equivalence checks run *before* any timing is trusted,
because a speedup between statistically-inequivalent computations is void.

Two phases:

* **equivalence probe** — a two-sample KS test on per-trial benefit
  distributions and a 99.9% CI-overlap check on mean benefits (the same
  certificate ``tests/test_engine_fast_equivalence.py`` enforces, run here
  on the benchmark instance so the timed configurations are the certified
  ones);
* **throughput** — best-of-3 wall-clock of ``simulate_fast`` vs
  ``simulate_batch`` for randPr at ``TRIALS`` trials, draw caches cleared
  per round so the exact engine's timing includes priority generation (its
  real per-batch cost), and the per-kind table repeated for
  uniform-priority.

Run directly for the CI smoke mode::

    python benchmarks/bench_engine_fast.py --smoke

which runs the equivalence probe and a single-round throughput measurement
at the full batch size (two attempts, tolerating one load spike on a shared
runner) against the same 3x floor.  The batch size is not reduced in smoke
mode because the floor is regime-specific: the exact engine's draw-table
cost grows superlinearly, so a small batch would measure a different (and
much smaller) ratio.
"""

import argparse
import random
import sys
import time

from repro.core import simulate_batch
from repro.engine import clear_uniform_cache, simulate_fast
from repro.experiments import format_table
from repro.testing import (
    intervals_overlap,
    ks_two_sample,
    mean_confidence_interval,
)
from repro.workloads import random_online_instance

NUM_SETS = 200
NUM_ELEMENTS = 400
SET_SIZE_RANGE = (2, 5)
WEIGHT_RANGE = (1.0, 6.0)
SEED = 42

#: Full-mode batch size: production scale, where the fast engine's
#: per-trial savings dominate its fixed overheads.
TRIALS = 100_000

#: The acceptance floor: fast must sustain >= 3x the exact batch engine's
#: trial throughput at ``TRIALS`` trials (measured ~6-7x on a quiet
#: machine; 3x leaves headroom for slow runners without masking a real
#: regression to the exact path).  The floor is defined *at this batch
#: size*: the exact engine's draw-table cost grows superlinearly with the
#: batch, so small batches understate the fast engine's advantage (1.6x at
#: 20k trials, 3.4x at 50k, ~7x at 100k) — which is exactly the regime
#: distinction that makes ``fast`` a production-batch tool, not a default.
MIN_SPEEDUP = 3.0

#: Equivalence-probe sample size and thresholds — mirrors the pre-registered
#: constants of ``tests/test_engine_fast_equivalence.py``.
PROBE_TRIALS = 4000
KS_PVALUE_FLOOR = 1e-4
CI_CONFIDENCE = 0.999
FAST_SEED = 20_260_808
EXACT_SEED = 901


def _instance():
    return random_online_instance(
        NUM_SETS,
        NUM_ELEMENTS,
        SET_SIZE_RANGE,
        random.Random(SEED),
        weight_range=WEIGHT_RANGE,
        name=f"{NUM_SETS}x{NUM_ELEMENTS}",
    )


def _assert_equivalent(instance, kind):
    """The KS + CI certificate on the benchmark instance; raises on failure."""
    fast = simulate_fast(instance, kind, trials=PROBE_TRIALS, seed=FAST_SEED)
    exact = simulate_batch(instance, kind, trials=PROBE_TRIALS, seed=EXACT_SEED)
    ks = ks_two_sample(fast.benefits, exact.benefits)
    assert not ks.rejects(KS_PVALUE_FLOOR), (
        f"{kind}: fast/exact benefit distributions differ on the benchmark "
        f"instance (D={ks.statistic:.4f}, p={ks.pvalue:.2e}) — timings void"
    )
    fast_ci = mean_confidence_interval(fast.benefits, confidence=CI_CONFIDENCE)
    exact_ci = mean_confidence_interval(exact.benefits, confidence=CI_CONFIDENCE)
    assert intervals_overlap(fast_ci, exact_ci), (
        f"{kind}: mean-benefit CIs disjoint on the benchmark instance — "
        f"fast [{fast_ci.low:.4f}, {fast_ci.high:.4f}] vs exact "
        f"[{exact_ci.low:.4f}, {exact_ci.high:.4f}] — timings void"
    )
    return {
        "kind": kind,
        "ks_D": round(ks.statistic, 4),
        "ks_p": round(ks.pvalue, 4),
        "fast_mean": round(fast_ci.mean, 4),
        "exact_mean": round(exact_ci.mean, 4),
    }


def _compare(instance, kind, trials, seed=7, rounds=3):
    """Best-of-``rounds`` throughput of both engines on equal-size batches.

    Caches are cleared each round on the exact side (the draw table is a
    real per-batch cost at these sizes); the fast engine has no draw cache
    by construction.  Both sides are warmed once for numpy setup.
    """
    simulate_fast(instance, kind, trials=64, seed=seed)  # warm-up
    simulate_batch(instance, kind, trials=64, seed=seed)

    fast_seconds = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        simulate_fast(instance, kind, trials=trials, seed=seed)
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    exact_seconds = float("inf")
    for _ in range(rounds):
        clear_uniform_cache()
        start = time.perf_counter()
        simulate_batch(instance, kind, trials=trials, seed=seed)
        exact_seconds = min(exact_seconds, time.perf_counter() - start)

    return {
        "kind": kind,
        "trials": trials,
        "exact_seconds": round(exact_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(exact_seconds / fast_seconds, 1),
        "exact_trials_per_sec": int(trials / exact_seconds),
        "fast_trials_per_sec": int(trials / fast_seconds),
    }


def test_e20_fast_engine_speedup(run_once, experiment_report):
    def experiment():
        instance = _instance()
        probes = [
            _assert_equivalent(instance, "randPr"),
            _assert_equivalent(instance, "uniform-priority"),
        ]
        rows = [
            _compare(instance, "randPr", TRIALS),
            _compare(instance, "uniform-priority", TRIALS),
        ]
        return probes, rows

    probes, rows = run_once(experiment)
    text = format_table(
        probes,
        title=(
            f"E20 equivalence probe: KS + CI overlap at {PROBE_TRIALS} trials "
            f"({NUM_SETS} sets x {NUM_ELEMENTS} elements)"
        ),
    )
    text += "\n\n" + format_table(
        rows,
        title=(
            f"E20: fast statistical engine vs exact batch engine "
            f"({NUM_SETS} sets x {NUM_ELEMENTS} elements, {TRIALS} trials)"
        ),
    )
    text += (
        f"\n\nheadline: randPr at {TRIALS} trials -> "
        f"{rows[0]['speedup']}x (floor: {MIN_SPEEDUP}x)"
    )
    experiment_report("E20_engine_fast", text, rows=rows)

    assert rows[0]["speedup"] >= MIN_SPEEDUP


def _smoke():
    """CI smoke: equivalence probe + reduced-batch throughput floor."""
    instance = _instance()
    for kind in ("randPr", "uniform-priority"):
        probe = _assert_equivalent(instance, kind)
        print(
            f"equivalence probe OK ({kind}): KS D={probe['ks_D']} "
            f"p={probe['ks_p']}, means {probe['fast_mean']} vs "
            f"{probe['exact_mean']}"
        )

    # The floor is defined at the full TRIALS batch (small batches sit in a
    # different exact-engine cost regime; see MIN_SPEEDUP), so smoke runs
    # the full size but times a single round per engine.  Two attempts: a
    # load spike on a shared CI runner can depress one whole measurement;
    # a *persistent* regression fails both.
    for attempt in (1, 2):
        row = _compare(instance, "randPr", TRIALS, rounds=1)
        print(
            f"randPr ({TRIALS} trials): exact {row['exact_seconds']}s, "
            f"fast {row['fast_seconds']}s -> {row['speedup']}x"
        )
        if row["speedup"] >= MIN_SPEEDUP:
            break
        print(f"floor missed on attempt {attempt}, remeasuring")
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"fast-engine speedup {row['speedup']}x below the {MIN_SPEEDUP}x floor"
    )
    print(f"smoke OK: fast engine {row['speedup']}x (floor {MIN_SPEEDUP}x)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the equivalence probe and the reduced-batch floor (CI mode)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    return _smoke()


if __name__ == "__main__":
    sys.exit(main())
