"""E12 — ablation: what does the R_w priority distribution buy?

randPr draws each set's priority from R_{w(S)} (the max of w(S) uniforms), so
heavier sets win local contests with probability proportional to their
weight.  The ablation compares, on weighted instances:

* randPr                (R_w priorities, fresh randomness),
* randPr-hashed         (R_w priorities derived from a hash — the distributed form),
* uniform-priority      (a single uniform priority per set: R_1, weights ignored),
* uniform-random        (fresh random choice per element: no consistency at all).

Expected shape: the two R_w variants are statistically indistinguishable;
dropping weight sensitivity costs benefit on weighted inputs; dropping
per-set consistency (uniform-random) is far worse than everything else.
"""

import random

from repro.algorithms import (
    HashedRandPrAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
    UnweightedPriorityAlgorithm,
)
from repro.experiments import estimate_opt, format_table, measure_ratio
from repro.workloads import random_weighted_instance

NUM_INSTANCES = 4
TRIALS = 40


def test_e12_priority_ablation(run_once, experiment_report):
    algorithms = [
        RandPrAlgorithm(),
        HashedRandPrAlgorithm(),
        UnweightedPriorityAlgorithm(),
        UniformRandomAlgorithm(),
    ]

    def experiment():
        totals = {algorithm.name: {"benefit": 0.0, "ratio": 0.0} for algorithm in algorithms}
        for index in range(NUM_INSTANCES):
            instance = random_weighted_instance(
                30, 42, (2, 4), random.Random(50 + index), weight_range=(1.0, 9.0)
            )
            opt = estimate_opt(instance.system, method="auto")
            for algorithm in algorithms:
                measurement = measure_ratio(
                    instance, algorithm, trials=TRIALS, seed=index, opt=opt
                )
                totals[algorithm.name]["benefit"] += measurement.mean_benefit
                totals[algorithm.name]["ratio"] += measurement.ratio
        rows = []
        for name, sums in totals.items():
            rows.append(
                {
                    "algorithm": name,
                    "mean_benefit": round(sums["benefit"] / NUM_INSTANCES, 2),
                    "mean_ratio": round(sums["ratio"] / NUM_INSTANCES, 3),
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E12: priority-mechanism ablation on weighted instances "
        "(R_w vs unweighted priorities vs per-element randomness)",
    )
    experiment_report("E12_ablation_priorities", text)

    by_name = {row["algorithm"]: row for row in rows}
    # R_w (fresh) and R_w (hashed) agree closely.
    assert abs(
        by_name["randPr"]["mean_ratio"] - by_name["randPr-hashed"]["mean_ratio"]
    ) < 0.6
    # Weight-sensitive priorities beat weight-blind ones on weighted inputs.
    assert by_name["randPr"]["mean_ratio"] <= by_name["uniform-priority"]["mean_ratio"] + 0.2
    # Consistent priorities crush per-element re-randomization.
    assert by_name["randPr"]["mean_ratio"] < by_name["uniform-random"]["mean_ratio"]
