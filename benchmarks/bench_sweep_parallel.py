"""E16 — end-to-end sweep throughput: the parallel orchestrator vs. the serial
reference pipeline.

Not a paper table: this experiment characterizes the reproduction itself.
PR 1 made the inner Monte-Carlo loop fast; this benchmark measures the whole
measurement path — instance generation, offline OPT solving, statistics,
bounds and per-algorithm simulation — under the orchestrator refactor:

* **serial reference** — ``run_sweep(..., workers=1, engine="reference")``,
  the historical default pipeline: one process, per-arrival simulation, no
  compiled-instance reuse;
* **serial optimized** — ``workers=1, engine="auto"``: batch engine plus the
  per-process OPT/compile caches, isolating the single-process gains;
* **parallel** — ``workers=4, engine="auto"``: the full orchestrator,
  ``(point, instance)`` work units over a process pool.

Because the engines agree trial for trial and the orchestrator merges in
sweep order, all three configurations return **bit-identical rows** — which
this benchmark asserts before reporting any timing, so the speedup is a
comparison between equal computations, not between approximations.

Headline claim checked here: >= 2.5x end-to-end wall-clock at 4 workers vs.
the serial reference path on the standard 200-set sweep.  (On a single-core
host the margin comes from the batch engine and the caches; the worker pool
adds its value back on multi-core hardware — the differential guarantee is
what makes that trade invisible in the numbers.)

Run directly for the CI smoke mode::

    python benchmarks/bench_sweep_parallel.py --smoke

which shrinks the sweep, checks the bit-identity contract at workers
∈ {1, 2, 4} and skips the wall-clock floor (shared CI runners are noisy).
"""

import argparse
import time

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyWeightAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
    UnweightedPriorityAlgorithm,
)
from repro.engine import clear_compile_cache
from repro.experiments import default_opt_cache, format_table, run_sweep, workers_from_env
from repro.workloads import random_online_instance

#: The standard sweep: 200-set instances at three contention levels.
NUM_SETS = 200
ELEMENT_COUNTS = (500, 400, 300)
SET_SIZE_RANGE = (2, 5)
WEIGHT_RANGE = (1.0, 6.0)
INSTANCES_PER_POINT = 2
TRIALS_PER_INSTANCE = 300
SEED = 2025

#: The acceptance floor for the headline configuration.
MIN_SPEEDUP = 2.5

#: Worker count of the headline parallel configuration (overridable for the
#: benchmark table via OSP_BENCH_WORKERS; the floor is always checked at 4).
PARALLEL_WORKERS = 4

ALGORITHMS = (
    RandPrAlgorithm(),
    UnweightedPriorityAlgorithm(),
    UniformRandomAlgorithm(),
    GreedyWeightAlgorithm(),
    FirstListedAlgorithm(),
)


def _points(num_sets, element_counts):
    points = []
    for num_elements in element_counts:
        def factory(rng, num_elements=num_elements):
            return random_online_instance(
                num_sets,
                num_elements,
                SET_SIZE_RANGE,
                rng,
                weight_range=WEIGHT_RANGE,
                name=f"{num_sets}x{num_elements}",
            )

        points.append((f"n={num_elements}", factory))
    return points


def _run_configuration(points, workers, engine, instances_per_point, trials):
    # Start every configuration cold: the per-process OPT and compile caches
    # are part of what is being measured, and without this reset the second
    # and third configurations would inherit the first one's solves (fork
    # workers copy the parent's caches), overstating their speedups.
    default_opt_cache().clear()
    clear_compile_cache()
    start = time.perf_counter()
    sweep = run_sweep(
        "E16 sweep",
        points,
        list(ALGORITHMS),
        instances_per_point=instances_per_point,
        trials_per_instance=trials,
        seed=SEED,
        engine=engine,
        workers=workers,
        # Engine/worker timings must stay store-free even under an exported
        # OSP_STORE; the persistent store has its own benchmark (E17).
        store=False,
    )
    return sweep, time.perf_counter() - start


def run_comparison(num_sets, element_counts, instances_per_point, trials, workers):
    """Time the three configurations and assert their rows are bit-identical."""
    points = _points(num_sets, element_counts)
    reference, reference_seconds = _run_configuration(
        points, 1, "reference", instances_per_point, trials
    )
    serial, serial_seconds = _run_configuration(
        points, 1, "auto", instances_per_point, trials
    )
    parallel, parallel_seconds = _run_configuration(
        points, workers, "auto", instances_per_point, trials
    )

    # The speedup is only meaningful between equal computations.
    assert serial.rows == reference.rows, "engine choice changed sweep rows"
    assert parallel.rows == reference.rows, "worker count changed sweep rows"

    rows = [
        {
            "configuration": "serial reference (workers=1, engine=reference)",
            "seconds": round(reference_seconds, 3),
            "speedup": 1.0,
        },
        {
            "configuration": "serial optimized (workers=1, engine=auto)",
            "seconds": round(serial_seconds, 3),
            "speedup": round(reference_seconds / serial_seconds, 2),
        },
        {
            "configuration": f"parallel (workers={workers}, engine=auto)",
            "seconds": round(parallel_seconds, 3),
            "speedup": round(reference_seconds / parallel_seconds, 2),
        },
    ]
    return rows, reference_seconds / parallel_seconds


def test_e16_sweep_parallel_speedup(run_once, experiment_report):
    def experiment():
        return run_comparison(
            NUM_SETS,
            ELEMENT_COUNTS,
            INSTANCES_PER_POINT,
            TRIALS_PER_INSTANCE,
            PARALLEL_WORKERS,
        )

    rows, speedup = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E16: end-to-end sweep orchestration "
            f"({NUM_SETS} sets x {ELEMENT_COUNTS} elements, "
            f"{INSTANCES_PER_POINT} instances/point, "
            f"{TRIALS_PER_INSTANCE} trials/instance, "
            f"{len(ALGORITHMS)} algorithms, bit-identical rows)"
        ),
    )
    text += (
        f"\n\nheadline: parallel vs serial reference -> {speedup:.1f}x "
        f"(floor: {MIN_SPEEDUP}x)"
    )
    experiment_report("E16_sweep_parallel", text)

    # The headline acceptance bar: >= 2.5x end to end at 4 workers.
    assert speedup >= MIN_SPEEDUP


#: Fault-free supervision overhead budget: the resilient pool may cost at
#: most 5% over ``map_ordered`` (plus a small absolute grace for timer noise
#: on shared CI runners).
RESILIENT_OVERHEAD_FACTOR = 1.05
RESILIENT_OVERHEAD_GRACE_SECONDS = 0.25


def _resilient_overhead_probe(points, workers=2, repeats=3):
    """Best-of-N timing: supervised vs. plain pool on a fault-free sweep.

    The supervised pool must be a free upgrade when nothing fails — same
    rows, and wall clock within :data:`RESILIENT_OVERHEAD_FACTOR` of
    ``map_ordered`` (its event loop ticks instead of blocking on ``pool.map``,
    which is where any overhead would come from).  Best-of-N damps scheduler
    noise; an absolute grace keeps the check meaningful on tiny baselines.
    """
    from repro.experiments import RetryPolicy

    policy = RetryPolicy()
    plain_best = resilient_best = float("inf")
    plain_rows = resilient_rows = None
    for _ in range(repeats):
        plain, plain_seconds = _run_configuration(points, workers, "auto", 2, 20)
        plain_best = min(plain_best, plain_seconds)
        plain_rows = plain.rows
    for _ in range(repeats):
        default_opt_cache().clear()
        clear_compile_cache()
        start = time.perf_counter()
        resilient = run_sweep(
            "E16 sweep",
            _points(40, (100, 60)),
            list(ALGORITHMS),
            instances_per_point=2,
            trials_per_instance=20,
            seed=SEED,
            engine="auto",
            workers=workers,
            store=False,
            policy=policy,
        )
        resilient_best = min(resilient_best, time.perf_counter() - start)
        resilient_rows = resilient.rows
    assert resilient_rows == plain_rows, "supervision changed sweep rows"
    budget = plain_best * RESILIENT_OVERHEAD_FACTOR + RESILIENT_OVERHEAD_GRACE_SECONDS
    print(
        f"resilient overhead probe (workers={workers}, best of {repeats}): "
        f"plain {plain_best:.2f}s, supervised {resilient_best:.2f}s, "
        f"budget {budget:.2f}s"
    )
    assert resilient_best <= budget, (
        f"fault-free supervision overhead too high: {resilient_best:.2f}s vs "
        f"budget {budget:.2f}s ({RESILIENT_OVERHEAD_FACTOR:.0%} of plain "
        f"+ {RESILIENT_OVERHEAD_GRACE_SECONDS}s grace)"
    )


def _smoke(workers_list=(1, 2, 4)):
    """CI smoke: a small sweep, bit-identity asserted across worker counts."""
    points = _points(40, (100, 60))
    baseline, baseline_seconds = _run_configuration(points, 1, "reference", 2, 20)
    print(f"serial reference: {baseline_seconds:.2f}s, {len(baseline.rows)} rows")
    for workers in workers_list:
        sweep, seconds = _run_configuration(points, workers, "auto", 2, 20)
        assert sweep.rows == baseline.rows, (
            f"rows diverged at workers={workers} (engine=auto)"
        )
        print(f"workers={workers} engine=auto: {seconds:.2f}s, rows bit-identical")
    _resilient_overhead_probe(points)
    print(
        "smoke OK: parallel sweep is bit-identical to the serial reference, "
        "supervised pool within its fault-free overhead budget"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="End-to-end sweep benchmark: parallel orchestrator vs serial reference.",
        epilog=(
            "examples:\n"
            "  python benchmarks/bench_sweep_parallel.py --smoke\n"
            "      fast correctness smoke (CI): bit-identity at workers 1/2/4\n"
            "  python benchmarks/bench_sweep_parallel.py\n"
            "      full timed comparison on the standard 200-set sweep\n"
            "  OSP_BENCH_WORKERS=8 python benchmarks/bench_sweep_parallel.py\n"
            "      time the parallel configuration at 8 workers"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small correctness smoke instead of the timed benchmark",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        return _smoke()

    workers = workers_from_env(default=PARALLEL_WORKERS)
    rows, speedup = run_comparison(
        NUM_SETS, ELEMENT_COUNTS, INSTANCES_PER_POINT, TRIALS_PER_INSTANCE, workers
    )
    print(
        format_table(
            rows, title=f"E16: end-to-end sweep orchestration (workers={workers})"
        )
    )
    if workers != PARALLEL_WORKERS:
        # The 2.5x floor is defined for the 4-worker headline configuration;
        # an OSP_BENCH_WORKERS override is exploratory, so report only.
        print(f"\nspeedup at workers={workers}: {speedup:.1f}x (floor not enforced; "
              f"the {MIN_SPEEDUP}x floor applies at workers={PARALLEL_WORKERS})")
        return 0
    print(f"\nheadline speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x)")
    return 0 if speedup >= MIN_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
