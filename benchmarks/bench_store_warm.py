"""E17 — persistent solution store: warm re-invocation vs. cold first run.

Not a paper table: this experiment characterizes the reproduction itself.
PR 2 gave each worker process an in-memory OPT cache; those caches die with
the process, so *every* benchmark invocation re-paid the offline solves and
simulations from scratch.  The persistent :mod:`repro.experiments.store`
fixes that: a cold sweep writes every completed ``(point, instance)`` work
unit (and every OPT solve) to a file-backed, content-addressed SQLite store,
and a warm re-invocation answers them from disk.

Three guarantees are asserted *before* any timing is reported:

* **store off == store on (cold)** — writing the store does not change rows;
* **cold == warm** — reading the store back returns bit-identical rows;
* **× workers ∈ {1, 4}** — the two knobs compose: every configuration in
  {store off, cold, warm} × {workers 1, 4} yields the same rows.

Headline claim checked here: a warm second invocation of the standard
200-set sweep is **≥ 3x faster** than the cold first one.  (In practice the
warm run only regenerates instances, hashes them and deserializes results,
so the measured margin is far larger; 3x is the conservative floor.)

The in-memory OPT/compile caches are cleared between configurations, so each
timed run models a *fresh process* — the cross-invocation scenario the store
exists for — rather than inheriting the previous configuration's solves.

Run directly for the CI smoke mode::

    python benchmarks/bench_store_warm.py --smoke

which shrinks the sweep, asserts the full bit-identity matrix and that the
warm run is answered from the store, and skips the wall-clock floor (shared
CI runners are noisy).
"""

import argparse
import os
import tempfile
import time

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyWeightAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
    UnweightedPriorityAlgorithm,
)
from repro.engine import clear_compile_cache
from repro.experiments import (
    default_opt_cache,
    format_table,
    run_sweep,
    store_for_path,
    workers_from_env,
)
from repro.workloads import random_online_instance

#: The standard sweep (same shape as E16): 200-set instances at three
#: contention levels.
NUM_SETS = 200
ELEMENT_COUNTS = (500, 400, 300)
SET_SIZE_RANGE = (2, 5)
WEIGHT_RANGE = (1.0, 6.0)
INSTANCES_PER_POINT = 2
TRIALS_PER_INSTANCE = 300
SEED = 2025

#: The acceptance floor: warm invocation at least this much faster than cold.
MIN_WARM_SPEEDUP = 3.0

WORKER_COUNTS = (1, 4)

ALGORITHMS = (
    RandPrAlgorithm(),
    UnweightedPriorityAlgorithm(),
    UniformRandomAlgorithm(),
    GreedyWeightAlgorithm(),
    FirstListedAlgorithm(),
)


def _points(num_sets, element_counts):
    points = []
    for num_elements in element_counts:
        def factory(rng, num_elements=num_elements):
            return random_online_instance(
                num_sets,
                num_elements,
                SET_SIZE_RANGE,
                rng,
                weight_range=WEIGHT_RANGE,
                name=f"{num_sets}x{num_elements}",
            )

        points.append((f"n={num_elements}", factory))
    return points


def _fresh_process_caches():
    """Reset the in-memory tiers so a run models a fresh invocation."""
    cache = default_opt_cache()
    cache.clear()
    cache.store = None
    clear_compile_cache()


def _run_configuration(points, workers, store, instances_per_point, trials):
    _fresh_process_caches()
    start = time.perf_counter()
    sweep = run_sweep(
        "E17 sweep",
        points,
        list(ALGORITHMS),
        instances_per_point=instances_per_point,
        trials_per_instance=trials,
        seed=SEED,
        engine="auto",
        workers=workers,
        store=store,
    )
    return sweep, time.perf_counter() - start


def run_comparison(
    num_sets, element_counts, instances_per_point, trials, store_path,
    worker_counts=WORKER_COUNTS,
):
    """Time off/cold/warm at each worker count; assert all rows identical.

    The store-off configurations pass ``store=False`` (not ``None``) so the
    baseline stays genuinely store-free even when the suite runs under an
    exported ``OSP_STORE``.
    """
    points = _points(num_sets, element_counts)
    baseline, _ = _run_configuration(
        points, 1, False, instances_per_point, trials
    )

    rows = []
    speedups = {}
    for workers in worker_counts:
        off, off_seconds = _run_configuration(
            points, workers, False, instances_per_point, trials
        )
        assert off.rows == baseline.rows, f"workers={workers} changed rows"

        path = f"{store_path}.w{workers}"
        cold, cold_seconds = _run_configuration(
            points, workers, path, instances_per_point, trials
        )
        assert cold.rows == baseline.rows, (
            f"cold store changed rows at workers={workers}"
        )
        warm, warm_seconds = _run_configuration(
            points, workers, path, instances_per_point, trials
        )
        assert warm.rows == baseline.rows, (
            f"warm store changed rows at workers={workers}"
        )

        speedups[workers] = cold_seconds / warm_seconds
        rows.extend(
            [
                {
                    "configuration": f"store off   (workers={workers})",
                    "seconds": round(off_seconds, 3),
                    "vs cold": "-",
                },
                {
                    "configuration": f"store cold  (workers={workers})",
                    "seconds": round(cold_seconds, 3),
                    "vs cold": 1.0,
                },
                {
                    "configuration": f"store warm  (workers={workers})",
                    "seconds": round(warm_seconds, 3),
                    "vs cold": round(speedups[workers], 2),
                },
            ]
        )
    return rows, speedups


def test_e17_store_warm_speedup(run_once, experiment_report, tmp_path):
    def experiment():
        return run_comparison(
            NUM_SETS,
            ELEMENT_COUNTS,
            INSTANCES_PER_POINT,
            TRIALS_PER_INSTANCE,
            str(tmp_path / "store.sqlite"),
        )

    rows, speedups = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E17: persistent store warm-start "
            f"({NUM_SETS} sets x {ELEMENT_COUNTS} elements, "
            f"{INSTANCES_PER_POINT} instances/point, "
            f"{TRIALS_PER_INSTANCE} trials/instance, "
            f"{len(ALGORITHMS)} algorithms; all rows bit-identical across "
            f"store off/cold/warm x workers {WORKER_COUNTS})"
        ),
    )
    text += (
        f"\n\nheadline: warm vs cold at workers=1 -> {speedups[1]:.1f}x "
        f"(floor: {MIN_WARM_SPEEDUP}x); at workers=4 -> {speedups[4]:.1f}x"
    )
    experiment_report(
        "E17_store_warm",
        text,
        rows=rows,
        columns=["configuration", "seconds", "vs cold"],
        title="E17: persistent store warm-start",
    )

    # The headline acceptance bar: a warm re-invocation is >= 3x faster.
    assert speedups[1] >= MIN_WARM_SPEEDUP


def _smoke():
    """CI smoke: small sweep; bit-identity matrix + warm runs hit the store."""
    points = _points(40, (100, 60))
    with tempfile.TemporaryDirectory() as directory:
        baseline, _ = _run_configuration(points, 1, False, 2, 20)
        print(f"store off: {len(baseline.rows)} rows (baseline)")
        for workers in (1, 2, 4):
            path = os.path.join(directory, f"store.w{workers}.sqlite")
            cold, cold_seconds = _run_configuration(points, workers, path, 2, 20)
            assert cold.rows == baseline.rows, f"cold rows diverged (workers={workers})"
            warm, warm_seconds = _run_configuration(points, workers, path, 2, 20)
            assert warm.rows == baseline.rows, f"warm rows diverged (workers={workers})"
            stats = store_for_path(path).stats()
            assert stats["unit_entries"] == len(points) * 2, "units not persisted"
            print(
                f"workers={workers}: cold {cold_seconds:.2f}s, "
                f"warm {warm_seconds:.2f}s, rows bit-identical, "
                f"{stats['unit_entries']} units persisted"
            )
    print("smoke OK: store on/off x cold/warm x workers is bit-identical")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Persistent-store benchmark: warm re-invocation vs cold run.",
        epilog=(
            "examples:\n"
            "  python benchmarks/bench_store_warm.py --smoke\n"
            "      fast correctness smoke (CI): bit-identity across\n"
            "      store off/cold/warm x workers 1/2/4\n"
            "  python benchmarks/bench_store_warm.py\n"
            "      full timed comparison on the standard 200-set sweep\n"
            "  OSP_BENCH_WORKERS=8 python benchmarks/bench_store_warm.py\n"
            "      also time the parallel configurations at 8 workers"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small correctness smoke instead of the timed benchmark",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        return _smoke()

    workers = workers_from_env(default=WORKER_COUNTS[-1])
    counts = (1, workers) if workers != 1 else (1,)
    with tempfile.TemporaryDirectory() as directory:
        rows, speedups = run_comparison(
            NUM_SETS,
            ELEMENT_COUNTS,
            INSTANCES_PER_POINT,
            TRIALS_PER_INSTANCE,
            os.path.join(directory, "store.sqlite"),
            worker_counts=counts,
        )
    print(format_table(rows, title="E17: persistent store warm-start"))
    print(
        f"\nheadline warm speedup at workers=1: {speedups[1]:.1f}x "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )
    return 0 if speedups[1] >= MIN_WARM_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
