"""E1 — Theorem 1 / Corollary 6: randPr's ratio vs. the closed-form bounds.

Paper claim: randPr completes expected weight at least
``opt / (kmax * sqrt(mean(σ·σ$)/mean(σ$)))``, and in particular at least
``opt / (kmax * sqrt(σmax))``.

The experiment sweeps the contention level of random unit-capacity instances
(by shrinking the element universe while keeping the set count fixed, σ grows)
and reports, per point: the measured ratio of randPr and of the baselines,
the Theorem 1 bound and the Corollary 6 bound.  The expected shape: randPr's
measured ratio stays below both bounds at every point and grows much more
slowly than the baselines' as contention rises.
"""

import os
import random

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyWeightAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
)
from repro.experiments import format_table, run_sweep, summarize_rows, workers_from_env
from repro.experiments.competitive_ratio import validate_engine
from repro.workloads import random_online_instance

NUM_SETS = 36
SET_SIZE_RANGE = (2, 4)
ELEMENT_COUNTS = (90, 60, 40, 24)
WEIGHT_RANGE = (1.0, 6.0)

# Simulation engine for the sweep: the batch engine ("auto"/"batch") replays
# the reference simulator trial for trial, so the table is identical either
# way — only the wall-clock differs.  OSP_BENCH_WORKERS likewise fans the
# sweep's (point, instance) work units over worker processes without
# changing a single row (the orchestrator merges in sweep order).
ENGINE = validate_engine(os.environ.get("OSP_BENCH_ENGINE", "auto"))
WORKERS = workers_from_env()


def _points():
    points = []
    for num_elements in ELEMENT_COUNTS:
        def factory(rng, num_elements=num_elements):
            return random_online_instance(
                NUM_SETS,
                num_elements,
                SET_SIZE_RANGE,
                rng,
                weight_range=WEIGHT_RANGE,
                name=f"n={num_elements}",
            )

        points.append((f"n={num_elements}", factory))
    return points


def test_e1_theorem1_corollary6(run_once, experiment_report):
    def experiment():
        return run_sweep(
            "E1: randPr vs Theorem 1 / Corollary 6 bounds (weighted, unit capacity)",
            _points(),
            [
                RandPrAlgorithm(),
                GreedyWeightAlgorithm(),
                FirstListedAlgorithm(),
                UniformRandomAlgorithm(),
            ],
            instances_per_point=3,
            trials_per_instance=30,
            seed=101,
            engine=ENGINE,
            workers=WORKERS,
        )

    sweep = run_once(experiment)
    rows = [row.as_dict() for row in sweep.rows]
    summary = summarize_rows(sweep.rows_for("randPr"))
    text = format_table(
        rows,
        columns=[
            "parameter",
            "algorithm",
            "mean_opt",
            "mean_benefit",
            "mean_ratio",
            "thm1_bound",
            "cor6_bound",
            "k_max",
            "sigma_max",
        ],
        title=sweep.name,
    )
    text += (
        f"\n\nrandPr within Corollary 6 bound at every point: "
        f"{bool(summary['all_within_cor6'])}"
        f"\nworst randPr ratio {summary['max_ratio']:.3f} vs worst bound "
        f"{summary['max_bound']:.3f}"
    )
    experiment_report(
        "E1_theorem1_corollary6",
        text,
        rows=rows,
        columns=[
            "parameter",
            "algorithm",
            "mean_opt",
            "mean_benefit",
            "mean_ratio",
            "thm1_bound",
            "cor6_bound",
            "k_max",
            "sigma_max",
        ],
        title=sweep.name,
    )

    # The headline check: randPr respects the paper's bound on every point.
    assert summary["all_within_cor6"] == 1.0
