"""E6 — Theorem 6: uniform element loads.

Paper claim: if every element has the same load σ, randPr's ratio is at most
``k_mean * sqrt(σ)`` (k_mean the average set size).

The experiment sweeps σ on element-regular instances and reports the measured
randPr ratio against ``k_mean * sqrt(σ)``.  Expected shape: measured ratio is
below the bound at every σ and grows sublinearly in σ (roughly like sqrt(σ)).
"""

import math
import random

from repro.algorithms import RandPrAlgorithm, UniformRandomAlgorithm
from repro.core import compute_statistics
from repro.core.bounds import theorem6_upper_bound
from repro.experiments import estimate_opt, format_table, measure_ratio
from repro.workloads import uniform_load_instance

SIGMA_VALUES = (2, 3, 4, 6)
NUM_SETS = 20
NUM_ELEMENTS = 32
TRIALS = 40


def test_e6_uniform_load(run_once, experiment_report):
    def experiment():
        rows = []
        for sigma in SIGMA_VALUES:
            instance = uniform_load_instance(
                NUM_SETS, NUM_ELEMENTS, sigma, random.Random(sigma)
            )
            stats = compute_statistics(instance.system)
            opt = estimate_opt(instance.system, method="auto")
            for algorithm in (RandPrAlgorithm(), UniformRandomAlgorithm()):
                measurement = measure_ratio(
                    instance, algorithm, trials=TRIALS, seed=sigma, opt=opt
                )
                rows.append(
                    {
                        "sigma": sigma,
                        "algorithm": algorithm.name,
                        "k_mean": round(stats.k_mean, 2),
                        "measured_ratio": round(measurement.ratio, 3),
                        "thm6_bound": round(theorem6_upper_bound(stats), 3),
                        "sqrt_sigma": round(math.sqrt(sigma), 3),
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E6: uniform element load — measured ratio vs k_mean*sqrt(sigma)",
    )
    experiment_report(
        "E6_theorem6_uniform_load",
        text,
        rows=rows,
        title="E6: uniform element load — measured ratio vs k_mean*sqrt(sigma)",
    )

    randpr_rows = [row for row in rows if row["algorithm"] == "randPr"]
    random_rows = [row for row in rows if row["algorithm"] == "uniform-random"]
    for row in randpr_rows:
        assert row["measured_ratio"] <= row["thm6_bound"] + 0.35
    # Shape: the bound grows like sqrt(sigma) across the sweep.
    bounds = [row["thm6_bound"] for row in randpr_rows]
    assert bounds == sorted(bounds)
    # At the heaviest load, consistent priorities clearly beat memoryless drops.
    assert randpr_rows[-1]["measured_ratio"] <= random_rows[-1]["measured_ratio"]
