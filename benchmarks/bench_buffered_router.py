"""E14 — extension: the effect of buffers (open problem 2, Section 5).

The OSP model drops every unserved packet on the spot; the paper asks how
buffers change the picture (cf. Kesselman et al., IPDPS 2009).  The
experiment pushes the same gap-separated adversarial burst trace through a
packet-level buffered link, sweeping the buffer size, under the hash-priority
(frame-aware) and FIFO policies.

Expected shape: with zero buffer the link behaves like the OSP model (about
one frame per burst wave); frames delivered grow monotonically with buffer
size; the frame-aware priority rule dominates FIFO at moderate buffers
because it spends the drain time on packets of frames that can still finish.
"""

from repro.experiments import format_table
from repro.network import (
    FIFO_POLICY,
    PRIORITY_POLICY,
    AdversarialBurstGenerator,
    BufferedLink,
)

BUFFER_SIZES = (0, 1, 2, 4, 8, 16)
BURST_SIZE = 4
PACKETS_PER_FRAME = 3
GAP_SLOTS = 6
NUM_WAVES = 12


def test_e14_buffered_router(run_once, experiment_report):
    trace = AdversarialBurstGenerator(
        burst_size=BURST_SIZE,
        packets_per_frame=PACKETS_PER_FRAME,
        gap_slots=GAP_SLOTS,
    ).generate(NUM_WAVES)

    def experiment():
        rows = []
        for buffer_size in BUFFER_SIZES:
            row = {"buffer_size": buffer_size, "offered_frames": trace.num_frames}
            for policy in (PRIORITY_POLICY, FIFO_POLICY):
                outcome = BufferedLink(
                    buffer_size=buffer_size, capacity=1, policy=policy
                ).run(trace)
                row[f"{policy}_delivered"] = outcome.metrics.completed_frames
                row[f"{policy}_dropped_pkts"] = outcome.dropped_packets
            rows.append(row)
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E14: buffered bottleneck link on gap-separated adversarial bursts "
        f"(waves of {BURST_SIZE} frames x {PACKETS_PER_FRAME} packets)",
    )
    experiment_report("E14_buffered_router", text)

    priority_delivered = [row[f"{PRIORITY_POLICY}_delivered"] for row in rows]
    fifo_delivered = [row[f"{FIFO_POLICY}_delivered"] for row in rows]
    # Monotone in buffer size for the frame-aware policy.
    assert priority_delivered == sorted(priority_delivered)
    # The frame-aware policy is never worse than FIFO, and strictly better
    # somewhere in the sweep.
    assert all(p >= f for p, f in zip(priority_delivered, fifo_delivered))
    assert any(p > f for p, f in zip(priority_delivered, fifo_delivered))
    # Zero buffer reproduces the OSP regime: at most one frame per wave.
    assert rows[0][f"{PRIORITY_POLICY}_delivered"] <= NUM_WAVES
