"""E15 — extension: general online packing with integer demands (open problem 1).

The paper's first open problem asks about packing programs whose matrix
entries are arbitrary non-negative integers.  The experiment runs the
generalized randPr (static R_w priorities + greedy admission within each
resource's capacity) and two deterministic baselines on

* random integer-demand instances, and
* a bandwidth-reservation workload (flows demanding bandwidth along link
  paths — the integer-demand analogue of the paper's multi-hop scenario),

and reports mean benefit and the ratio against the exact offline optimum.
Expected shape: the generalized randPr remains competitive (small constant
ratios on these workloads) and inherits the OSP behaviour exactly when all
demands are 1, which the embedding check at the bottom verifies.
"""

import random

from repro.algorithms.general import (
    GeneralDensityAlgorithm,
    GeneralGreedyWeightAlgorithm,
    GeneralRandPrAlgorithm,
)
from repro.core.general_packing import simulate_general, solve_general_exact
from repro.experiments import format_table
from repro.workloads.general import (
    bandwidth_reservation_instance,
    random_general_packing_instance,
)

NUM_INSTANCES = 3
TRIALS = 20


def _mean_benefit(instance, algorithm_factory, trials, seed):
    total = 0.0
    algorithm = algorithm_factory()
    runs = 1 if algorithm.is_deterministic else trials
    for trial in range(runs):
        result = simulate_general(
            instance, algorithm_factory(), rng=random.Random(seed + trial)
        )
        total += result.benefit
    return total / runs


def test_e15_general_packing(run_once, experiment_report):
    families = {
        "random-demands": lambda seed: random_general_packing_instance(
            22, 14, (2, 3), (1, 3), (2, 5), random.Random(seed), weight_range=(1.0, 5.0)
        ),
        "bandwidth-reservation": lambda seed: bandwidth_reservation_instance(
            16, 10, 3, 5, random.Random(seed)
        ),
    }
    algorithms = {
        "general-randPr": GeneralRandPrAlgorithm,
        "general-greedy-weight": GeneralGreedyWeightAlgorithm,
        "general-density": GeneralDensityAlgorithm,
    }

    def experiment():
        rows = []
        for family, build in families.items():
            totals = {name: 0.0 for name in algorithms}
            opt_total = 0.0
            for index in range(NUM_INSTANCES):
                instance = build(300 + index)
                _, opt = solve_general_exact(instance)
                opt_total += opt
                for name, factory in algorithms.items():
                    totals[name] += _mean_benefit(instance, factory, TRIALS, index)
            for name in algorithms:
                mean_benefit = totals[name] / NUM_INSTANCES
                mean_opt = opt_total / NUM_INSTANCES
                rows.append(
                    {
                        "family": family,
                        "algorithm": name,
                        "mean_benefit": round(mean_benefit, 2),
                        "mean_exact_opt": round(mean_opt, 2),
                        "mean_ratio": round(mean_opt / max(mean_benefit, 1e-9), 3),
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E15: general packing (integer demands) — generalized randPr vs baselines",
    )
    experiment_report("E15_general_packing", text)

    for row in rows:
        # All algorithms stay within a small constant of the exact optimum on
        # these moderately contended workloads.
        assert row["mean_ratio"] < 12.0
    randpr_rows = {row["family"]: row for row in rows if row["algorithm"] == "general-randPr"}
    for family, row in randpr_rows.items():
        assert row["mean_benefit"] > 0.0, family
