"""E19 — trace-scale streaming router engine: throughput and bounded memory.

Not a paper table: this experiment characterizes the reproduction itself.
PRs 1–5 gave the abstract OSP reduction a vectorized batch engine; the
router layer — the paper's motivating system — still ran per-packet Python
loops.  :mod:`repro.engine.streaming` closes that gap: a
:class:`~repro.network.traffic.Trace` compiles directly into a
:class:`~repro.engine.streaming.CompiledTrace` and Monte-Carlo trials replay
in chunked time windows, holding only the ``(trials, active_frames)``
priority rows of frames whose packets are currently in flight.

Three assertions are enforced (all three in ``--smoke``/CI):

* **bit-identity probe** — before any timing is trusted, streaming results
  at window sizes {1, 7, whole-trace} are compared set-for-set against the
  reference per-packet loop on a downscaled trace (the differential suite
  covers this wall exhaustively; the probe keeps the benchmark honest on
  its own).
* **throughput floor** — the reference loop's packet-trial rate is measured
  on a small trace and extrapolated; the streaming engine must sustain
  >= 5x that rate at 1000 randPr trials on a ~100k-packet adversarial-burst
  trace (measured ~13x on a quiet machine).
* **memory boundedness** — two probes.  The *model*:
  ``CompiledTrace.peak_active_frames`` (the exact pool high-water, equal to
  the engine's measured occupancy) must be identical for a 1x and a 3x
  trace — the pool tracks the admission spread, not the length.  The *RSS*:
  each length runs in its own subprocess; the peak-RSS (``VmHWM``) delta of
  the run (measured after the trace itself is freed) must stay flat as the
  trace triples — peak memory is set by the window size and trial count,
  never the trace length.

The trace uses zero-padded frame identifiers (``id_pad``), keeping the
identifier order aligned with arrival order; see the draw-order caveat in
``docs/INTERNALS-streaming.md`` for why that matters to the pool bound.

Run directly for the CI smoke mode::

    python benchmarks/bench_router_scale.py --smoke
"""

import argparse
import gc
import json
import subprocess
import sys
import time

from repro.algorithms import GreedyWeightAlgorithm, RandPrAlgorithm
from repro.core.simulation import simulate_many
from repro.engine.streaming import (
    DEFAULT_WINDOW_SLOTS,
    compile_trace,
    simulate_trace_batch,
)
from repro.experiments import format_table
from repro.network.traffic import AdversarialBurstGenerator

BURST_SIZE = 8
PACKETS_PER_FRAME = 4
GAP_SLOTS = 1
ID_PAD = 8
SEED = 42

#: ~100k packets: the acceptance-floor configuration.
FULL_WAVES = 3125
TRIALS = 1000

#: Downscaled configurations: reference-rate measurement + bit-identity.
SMALL_WAVES = 40
SMALL_TRIALS = 4

#: Streaming must beat the extrapolated reference packet-trial rate by this.
MIN_SPEEDUP = 5.0

#: Memory probe: 1x and 3x traces at a fixed trial count, own process each.
MEMORY_WAVES = (1000, 3000)
MEMORY_TRIALS = 200
#: The 3x trace's peak-RSS delta may exceed the 1x delta by at most this
#: factor plus slack — growth beyond that means state scaling with length.
MEMORY_GROWTH_LIMIT = 1.35
MEMORY_SLACK_KB = 16 * 1024


def _generator():
    return AdversarialBurstGenerator(
        burst_size=BURST_SIZE,
        packets_per_frame=PACKETS_PER_FRAME,
        gap_slots=GAP_SLOTS,
        id_pad=ID_PAD,
    )


def _bit_identity_probe():
    """Streaming == reference on a downscaled trace, several window sizes."""
    trace = _generator().generate(num_waves=SMALL_WAVES)
    instance = trace.to_instance()
    for algorithm in (RandPrAlgorithm(), GreedyWeightAlgorithm()):
        reference = simulate_many(
            instance, algorithm, trials=SMALL_TRIALS, seed=SEED
        )
        for window in (1, 7, None):
            batch = simulate_trace_batch(
                trace, algorithm, trials=SMALL_TRIALS, seed=SEED,
                window_slots=window,
            )
            for trial, result in enumerate(reference):
                assert batch.completed_sets(trial) == result.completed_sets, (
                    f"{algorithm.name} diverged at window {window}, trial {trial}"
                )
                assert float(batch.benefits[trial]) == result.benefit


def _throughput_row():
    """Measure the floor comparison; returns the E19 headline row.

    The reference rate comes from a small trace (the loop's per-packet cost
    is length-independent, so the extrapolation is fair); the streaming rate
    is the full ~100k-packet, 1000-trial run including trace compilation.
    """
    generator = _generator()
    small = generator.generate(num_waves=SMALL_WAVES)
    instance = small.to_instance()
    start = time.perf_counter()
    simulate_many(instance, RandPrAlgorithm(), trials=SMALL_TRIALS, seed=SEED)
    reference_seconds = time.perf_counter() - start
    reference_rate = small.num_packets * SMALL_TRIALS / reference_seconds

    trace = generator.generate(num_waves=FULL_WAVES)
    stats = {}
    start = time.perf_counter()
    compiled = compile_trace(trace)
    simulate_trace_batch(compiled, "randPr", trials=TRIALS, seed=SEED, stats=stats)
    streaming_seconds = time.perf_counter() - start
    streaming_rate = trace.num_packets * TRIALS / streaming_seconds

    return {
        "packets": trace.num_packets,
        "frames": trace.num_frames,
        "trials": TRIALS,
        "streaming_seconds": round(streaming_seconds, 2),
        "streaming_rate": int(streaming_rate),
        "reference_rate": int(reference_rate),
        "speedup": round(streaming_rate / reference_rate, 1),
        "peak_pooled_rows": stats["peak_pooled_rows"],
    }


def _model_rows():
    """The deterministic pool model at 1x vs 3x trace length (must be flat)."""
    rows = []
    for waves in MEMORY_WAVES:
        trace = _generator().generate(num_waves=waves)
        compiled = compile_trace(trace)
        rows.append(
            {
                "waves": waves,
                "packets": trace.num_packets,
                "frames": trace.num_frames,
                "peak_active_frames": compiled.peak_active_frames(
                    DEFAULT_WINDOW_SLOTS
                ),
            }
        )
    return rows


def _peak_rss_kb() -> int:
    """This process's peak resident set, in kilobytes.

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike ``ru_maxrss``
    (which Linux carries across ``fork``+``exec``, so a subprocess spawned
    by a fat parent starts with the *parent's* high-water mark), ``VmHWM``
    is tied to the process's own address space and resets on exec.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _memory_child(waves: int, trials: int) -> int:
    """Subprocess body: run one streaming batch, print the peak-RSS delta.

    Peak RSS is a per-process high-water mark, so every trace length needs
    its own process.  The trace object is freed before the baseline reading
    — the delta then isolates what the *engine run* adds on top of the
    compiled arrays.
    """
    trace = _generator().generate(num_waves=waves)
    compiled = compile_trace(trace)
    packets, frames = trace.num_packets, trace.num_frames
    del trace
    gc.collect()
    base_kb = _peak_rss_kb()
    simulate_trace_batch(compiled, "randPr", trials=trials, seed=SEED)
    peak_kb = _peak_rss_kb()
    print(
        json.dumps(
            {
                "waves": waves,
                "packets": packets,
                "frames": frames,
                "trials": trials,
                "base_kb": base_kb,
                "delta_kb": peak_kb - base_kb,
            }
        )
    )
    return 0


def _memory_rows():
    """Run the RSS probe for every configured length, each in a fresh process."""
    rows = []
    for waves in MEMORY_WAVES:
        output = subprocess.run(
            [
                sys.executable,
                __file__,
                "--memory-child",
                str(waves),
                str(MEMORY_TRIALS),
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        rows.append(json.loads(output.stdout.strip().splitlines()[-1]))
    return rows


def _assert_memory_bounded(model_rows, memory_rows):
    assert model_rows[0]["peak_active_frames"] == model_rows[-1][
        "peak_active_frames"
    ], (
        "pool model grew with trace length: "
        f"{[row['peak_active_frames'] for row in model_rows]}"
    )
    small, large = memory_rows[0], memory_rows[-1]
    limit = small["delta_kb"] * MEMORY_GROWTH_LIMIT + MEMORY_SLACK_KB
    assert large["delta_kb"] <= limit, (
        f"peak-RSS delta grew with trace length: {small['delta_kb']}KB at "
        f"{small['packets']} packets -> {large['delta_kb']}KB at "
        f"{large['packets']} packets (limit {int(limit)}KB)"
    )


def test_e19_router_scale_throughput(run_once, experiment_report):
    def experiment():
        _bit_identity_probe()
        return [_throughput_row()]

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=(
            f"E19: streaming router engine, ~{rows[0]['packets']} packets x "
            f"{TRIALS} randPr trials vs extrapolated reference loop"
        ),
    )
    text += (
        f"\n\nheadline: {rows[0]['speedup']}x the reference packet-trial rate "
        f"(floor: {MIN_SPEEDUP}x)"
    )
    experiment_report("E19_router_scale", text, rows=rows)
    assert rows[0]["speedup"] >= MIN_SPEEDUP


def test_e19b_router_scale_memory(run_once, experiment_report):
    def experiment():
        return _model_rows(), _memory_rows()

    model_rows, memory_rows = run_once(experiment)
    text = format_table(
        model_rows,
        title="E19b: exact pool model vs trace length (default window)",
    )
    text += "\n\n" + format_table(
        [
            {key: row[key] for key in ("waves", "packets", "trials", "delta_kb")}
            for row in memory_rows
        ],
        title="E19b: per-process peak-RSS delta of the streaming run",
    )
    experiment_report("E19b_router_scale_memory", text)
    _assert_memory_bounded(model_rows, memory_rows)


def _smoke():
    """CI smoke: bit-identity, the full throughput floor, both memory probes."""
    _bit_identity_probe()
    print(f"bit-identity probe OK ({SMALL_WAVES}-wave trace, windows 1/7/whole)")

    # Two attempts: a load spike on a shared CI runner can depress one whole
    # measurement; a *persistent* regression fails both.
    for attempt in (1, 2):
        row = _throughput_row()
        print(
            f"throughput: {row['packets']} packets x {row['trials']} trials in "
            f"{row['streaming_seconds']}s -> {row['streaming_rate']} "
            f"packet-trials/s vs reference {row['reference_rate']} "
            f"-> {row['speedup']}x"
        )
        if row["speedup"] >= MIN_SPEEDUP:
            break
        print(f"throughput floor missed on attempt {attempt}, remeasuring")
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"streaming throughput {row['speedup']}x below the {MIN_SPEEDUP}x floor"
    )

    model_rows = _model_rows()
    memory_rows = _memory_rows()
    for model, memory in zip(model_rows, memory_rows):
        print(
            f"memory: {memory['packets']} packets -> pool model "
            f"{model['peak_active_frames']} rows, RSS delta "
            f"{memory['delta_kb']}KB"
        )
    _assert_memory_bounded(model_rows, memory_rows)
    print(
        f"smoke OK: {row['speedup']}x throughput (floor {MIN_SPEEDUP}x), "
        f"pool model flat at {model_rows[0]['peak_active_frames']} rows, "
        f"RSS delta flat across a 3x trace"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the throughput floor, memory probes and bit-identity (CI mode)",
    )
    parser.add_argument(
        "--memory-child",
        nargs=2,
        type=int,
        metavar=("WAVES", "TRIALS"),
        help=argparse.SUPPRESS,  # internal: subprocess body of the RSS probe
    )
    args = parser.parse_args(argv)
    if args.memory_child:
        return _memory_child(*args.memory_child)
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    return _smoke()


if __name__ == "__main__":
    sys.exit(main())
