"""E21 — multi-host fabric throughput: two workers vs. one on the standard sweep.

Not a paper table: this experiment characterizes the reproduction itself.
PR 10 added the sweep fabric (``repro.experiments.fabric``): a shared unit
manifest, worker processes that claim units through advisory leases into
per-worker shard stores, and a reducer that merges the shards back into one
canonical store.  This benchmark measures what the fabric buys — and first
proves what it must *not* change:

* **bit-identity probe** — both configurations' reduced rows are compared
  against the single-host golden reference (``run_sweep(workers=1)``)
  before any timing is reported, so the speedup is a comparison between
  equal computations;
* **one worker** — a single fabric worker process drains the whole
  manifest into its shard;
* **two workers** — two concurrent worker processes share one
  coordination store and split the manifest between them.

Headline claim checked here: >= 1.8x manifest-drain wall-clock with two
concurrent workers vs. one on the standard 200-set sweep.  Two measures are
reported per configuration:

* **drain seconds** — the longest ``work seconds`` any worker reports: the
  time from the first claim to the last unit landing, i.e. the makespan the
  fabric's scheduling actually controls.  The floor is checked on this.
* **wall seconds** — the parent's end-to-end timing including Python
  interpreter startup (~0.7s per worker process).  Reported for
  transparency; at benchmark scale startup is a fixed cost that both
  configurations pay concurrently and real multi-minute sweeps amortize to
  nothing, so it is excluded from the floor.

The timed manifest is the standard sweep with the Monte-Carlo budget
raised to 3000 trials/instance (10x the sweep default) and 6 instances per
point (18 units) — heavy enough that unit compute dominates coordination,
granular enough that two workers can split the manifest evenly.  The floor
is enforced only on multi-core hosts (``os.cpu_count() >= 2``) — on a
single-core host two workers time-slice one CPU and the fabric's value is
fault isolation, not throughput.

Run directly for the CI smoke mode::

    python benchmarks/bench_fabric.py --smoke

which plans the small smoke sweep, runs two concurrent workers, checks the
reduced rows bit-for-bit against the single-host reference, re-reduces to
confirm the canonical store is byte-stable, and skips the wall-clock floor
(shared CI runners are noisy).
"""

import argparse
import dataclasses
import os
import subprocess
import sys
import tempfile
import time

from repro.engine import clear_compile_cache
from repro.experiments import format_table
from repro.experiments.fabric import (
    FABRIC_SPECS,
    plan_manifest,
    reduce_shards,
    single_host_result,
    write_manifest,
)
from repro.experiments.opt_cache import default_opt_cache

#: The acceptance floor: two concurrent workers vs. one, multi-core hosts.
MIN_SPEEDUP = 1.8

#: Monte-Carlo budget of the timed run: 10x the standard sweep's 300
#: trials/instance, so per-unit compute dwarfs coordination costs.
BENCH_TRIALS = 3000

#: Instances per point of the timed run: 18 units over three points, fine
#: enough that dynamic claiming splits the manifest evenly across workers.
BENCH_INSTANCES_PER_POINT = 6


def _drain_seconds(stdout):
    """The ``work seconds: N`` line a fabric worker prints after draining."""
    for line in stdout.splitlines():
        if line.startswith("work seconds:"):
            return float(line.split(":", 1)[1])
    raise RuntimeError(f"no 'work seconds:' line in worker output:\n{stdout}")


def _run_workers(manifest_path, base_dir, count):
    """Run ``count`` concurrent fabric workers to completion.

    Returns ``(shards, drain_seconds, wall_seconds)`` where drain is the
    makespan the workers report themselves (first claim to last unit) and
    wall is the parent's timing including interpreter startup.  Each
    configuration gets its own coordination store so one run's published
    results can never warm another's (which would turn computed units into
    cheap copies and corrupt the timing).
    """
    coordination = os.path.join(base_dir, "coord.sqlite")
    shards = [os.path.join(base_dir, f"shard-{i}.sqlite") for i in range(count)]
    start = time.perf_counter()
    processes = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.fabric", "work",
                manifest_path, "--store", shard, "--coord", coordination,
                "--workers", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for shard in shards
    ]
    drain = 0.0
    for process in processes:
        stdout, stderr = process.communicate(timeout=1800)
        if process.returncode != 0:
            raise RuntimeError(
                f"fabric worker exited {process.returncode}:\n{stderr}{stdout}"
            )
        drain = max(drain, _drain_seconds(stdout))
    return shards, drain, time.perf_counter() - start


def run_comparison(spec_name="standard"):
    """Time one- and two-worker fabrics; assert both reduce to golden rows."""
    spec = dataclasses.replace(
        FABRIC_SPECS[spec_name],
        trials_per_instance=BENCH_TRIALS,
        instances_per_point=BENCH_INSTANCES_PER_POINT,
    )
    manifest = plan_manifest(spec)
    default_opt_cache().clear()
    clear_compile_cache()
    golden = single_host_result(manifest)
    with tempfile.TemporaryDirectory(prefix="osp-fabric-bench-") as base:
        manifest_path = os.path.join(base, f"{spec_name}.json")
        write_manifest(manifest, manifest_path)
        drains, walls = {}, {}
        for count in (1, 2):
            config_dir = os.path.join(base, f"workers-{count}")
            os.makedirs(config_dir)
            shards, drain, wall = _run_workers(manifest_path, config_dir, count)
            result, _, missing = reduce_shards(
                manifest, shards, os.path.join(config_dir, "canonical.sqlite")
            )
            # The bit-identity probe comes before any timing is believed.
            assert missing == [], f"workers={count} left units behind: {missing}"
            assert result.rows == golden.rows, (
                f"workers={count} fabric rows diverged from single-host rows"
            )
            drains[count], walls[count] = drain, wall
    speedup = drains[1] / drains[2]
    rows = [
        {
            "configuration": "one fabric worker (whole manifest)",
            "drain_seconds": round(drains[1], 3),
            "wall_seconds": round(walls[1], 3),
            "speedup": 1.0,
        },
        {
            "configuration": "two concurrent fabric workers (shared leases)",
            "drain_seconds": round(drains[2], 3),
            "wall_seconds": round(walls[2], 3),
            "speedup": round(speedup, 2),
        },
    ]
    return rows, speedup


def test_e21_fabric_speedup(run_once, experiment_report):
    def experiment():
        return run_comparison("standard")

    rows, speedup = run_once(experiment)
    spec = FABRIC_SPECS["standard"]
    text = format_table(
        rows,
        title=(
            f"E21: multi-host sweep fabric ({spec.num_sets} sets x "
            f"{spec.element_counts} elements, {BENCH_INSTANCES_PER_POINT} "
            f"instances/point, {BENCH_TRIALS} trials/instance, "
            f"{len(spec.algorithms)} algorithms, rows bit-identical to "
            "single-host)"
        ),
    )
    text += (
        f"\n\nheadline: two workers vs one, manifest drain -> {speedup:.1f}x "
        f"(floor: {MIN_SPEEDUP}x on multi-core hosts)"
    )
    experiment_report("E21_fabric", text, rows=rows)

    if os.cpu_count() >= 2:
        assert speedup >= MIN_SPEEDUP
    else:
        print(f"single-core host: {MIN_SPEEDUP}x floor not enforced")


def _smoke():
    """CI smoke: concurrency + bit-identity + reducer idempotence, no floors."""
    manifest = plan_manifest(FABRIC_SPECS["smoke"])
    assert plan_manifest(FABRIC_SPECS["smoke"]) == manifest, (
        "manifest planning is not deterministic"
    )
    default_opt_cache().clear()
    clear_compile_cache()
    golden = single_host_result(manifest)
    with tempfile.TemporaryDirectory(prefix="osp-fabric-smoke-") as base:
        manifest_path = os.path.join(base, "smoke.json")
        write_manifest(manifest, manifest_path)
        shards, drain, wall = _run_workers(manifest_path, base, 2)
        print(
            f"two concurrent workers: {drain:.2f}s drain "
            f"({wall:.2f}s wall), {len(shards)} shards"
        )
        canonical = os.path.join(base, "canonical.sqlite")
        result, merge_report, missing = reduce_shards(manifest, shards, canonical)
        assert missing == [], f"units missing from every shard: {missing}"
        assert result.rows == golden.rows, (
            "reduced fabric rows diverged from the single-host reference"
        )
        print(f"reduce: {merge_report['examined']} rows examined, rows bit-identical")
        with open(canonical, "rb") as handle:
            before = handle.read()
        again, _, _ = reduce_shards(manifest, shards, canonical)
        with open(canonical, "rb") as handle:
            assert handle.read() == before, "re-reducing changed the canonical store"
        assert again.rows == result.rows
    print(
        "smoke OK: two-worker fabric rows are bit-identical to single-host, "
        "reducer is idempotent and byte-stable"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Multi-host fabric benchmark: two concurrent workers vs one.",
        epilog=(
            "examples:\n"
            "  python benchmarks/bench_fabric.py --smoke\n"
            "      fast correctness smoke (CI): bit-identity + idempotent reduce\n"
            "  python benchmarks/bench_fabric.py\n"
            "      full timed comparison on the standard 200-set sweep"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small correctness smoke instead of the timed benchmark",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        return _smoke()

    rows, speedup = run_comparison("standard")
    print(format_table(rows, title="E21: multi-host sweep fabric (standard sweep)"))
    if os.cpu_count() < 2:
        print(
            f"\ndrain speedup: {speedup:.1f}x (floor not enforced on a "
            f"single-core host; the {MIN_SPEEDUP}x floor applies with >= 2 CPUs)"
        )
        return 0
    print(f"\nheadline drain speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x)")
    return 0 if speedup >= MIN_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
