"""E16 — robustness to arrival order: randPr vs. stateful deterministic policies.

randPr's decisions depend only on the static priorities, so permuting the
arrival order cannot change which sets it completes (a property the paper's
analysis relies on implicitly: the bound holds for every arrival order).
Stateful deterministic policies, in contrast, can swing wildly with the
order.  The experiment measures, over many random permutations of the same
instance, the spread (min / mean / max benefit) of each policy.

Expected shape: randPr's spread is exactly zero once its priorities are
fixed (hash variant), and small in expectation over fresh randomness, while
greedy policies show a visible gap between their best-case and worst-case
orders.
"""

import random

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyCommittedAlgorithm,
    GreedyProgressAlgorithm,
    HashedRandPrAlgorithm,
)
from repro.core import simulate
from repro.experiments import format_table
from repro.workloads import random_weighted_instance

NUM_ORDERS = 20


def test_e16_arrival_order_robustness(run_once, experiment_report):
    base_instance = random_weighted_instance(
        30, 40, (2, 4), random.Random(77), weight_range=(1.0, 6.0)
    )
    policies = {
        "randPr (fixed hash)": lambda: HashedRandPrAlgorithm(salt="order-bench"),
        "greedy-progress": GreedyProgressAlgorithm,
        "greedy-committed": GreedyCommittedAlgorithm,
        "first-listed": FirstListedAlgorithm,
    }

    def experiment():
        rows = []
        for name, factory in policies.items():
            benefits = []
            for order_index in range(NUM_ORDERS):
                permuted = base_instance.shuffled(random.Random(order_index))
                result = simulate(permuted, factory(), rng=random.Random(0))
                benefits.append(result.benefit)
            rows.append(
                {
                    "policy": name,
                    "min_benefit": round(min(benefits), 2),
                    "mean_benefit": round(sum(benefits) / len(benefits), 2),
                    "max_benefit": round(max(benefits), 2),
                    "spread": round(max(benefits) - min(benefits), 2),
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title=f"E16: sensitivity to arrival order ({NUM_ORDERS} random permutations "
        "of one instance)",
    )
    experiment_report("E16_arrival_order", text)

    by_policy = {row["policy"]: row for row in rows}
    # randPr with fixed priorities is completely order-insensitive.
    assert by_policy["randPr (fixed hash)"]["spread"] == 0.0
    # At least one stateful deterministic policy shows order sensitivity.
    assert any(
        row["spread"] > 0.0 for name, row in by_policy.items() if name != "randPr (fixed hash)"
    )
