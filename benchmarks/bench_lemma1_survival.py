"""E7 — Lemma 1: the survival probability of a set under randPr.

Paper claim (the engine of every upper bound): for every set S,
``Pr[S ∈ alg] = w(S) / w(N[S])`` on unit-capacity instances.

The experiment Monte-Carlo-estimates the survival probability of every set on
a weighted instance and compares it with the closed form, reporting the
largest absolute deviation.  It also checks the induced identity
``E[w(alg)] = Σ_S w(S)^2 / w(N[S])``.
"""

import random

from repro.algorithms import RandPrAlgorithm
from repro.core import OnlineInstance, simulate
from repro.experiments import format_table
from repro.workloads import random_weighted_instance

TRIALS = 3000


def test_e7_lemma1_survival(run_once, experiment_report):
    instance = random_weighted_instance(
        12, 18, (2, 3), random.Random(3), weight_range=(1.0, 6.0)
    )
    system = instance.system

    def experiment():
        counts = {set_id: 0 for set_id in system.set_ids}
        total_benefit = 0.0
        for trial in range(TRIALS):
            result = simulate(instance, RandPrAlgorithm(), rng=random.Random(trial))
            total_benefit += result.benefit
            for set_id in result.completed_sets:
                counts[set_id] += 1
        return counts, total_benefit / TRIALS

    counts, mean_benefit = run_once(experiment)

    rows = []
    worst_gap = 0.0
    for set_id in system.set_ids:
        empirical = counts[set_id] / TRIALS
        predicted = system.weight(set_id) / system.neighbourhood_weight(set_id)
        worst_gap = max(worst_gap, abs(empirical - predicted))
        rows.append(
            {
                "set": str(set_id),
                "weight": round(system.weight(set_id), 2),
                "w(N[S])": round(system.neighbourhood_weight(set_id), 2),
                "predicted_Pr": round(predicted, 4),
                "empirical_Pr": round(empirical, 4),
                "abs_error": round(abs(empirical - predicted), 4),
            }
        )
    predicted_benefit = sum(
        system.weight(s) ** 2 / system.neighbourhood_weight(s) for s in system.set_ids
    )
    text = format_table(rows, title="E7: Lemma 1 — Pr[S in alg] = w(S)/w(N[S])")
    text += (
        f"\n\npredicted E[w(alg)] = {predicted_benefit:.3f}, "
        f"measured = {mean_benefit:.3f}, trials = {TRIALS}, "
        f"max per-set |error| = {worst_gap:.4f}"
    )
    experiment_report("E7_lemma1_survival", text)

    assert worst_gap < 0.05
    assert abs(mean_benefit - predicted_benefit) / predicted_benefit < 0.08
