"""E5 — Theorem 5 and Corollary 7: uniform set sizes.

Paper claims:
* Theorem 5: if all sets have size k, ``E[|alg|] >= |opt| * mean(σ)^2 / (k * mean(σ^2))``,
  i.e. the ratio is at most ``k * mean(σ^2) / mean(σ)^2``.
* Corollary 7: if additionally every element has the same load, the ratio is
  at most ``k`` — independent of σ.

The experiment sweeps k on (a) uniform-size instances with ragged loads and
(b) fully uniform instances, reporting the measured randPr ratio against the
matching bound.  Expected shape: every measured ratio respects its bound, and
on the fully uniform family the ratio stays ≈ k even as σ grows.
"""

import random

from repro.algorithms import RandPrAlgorithm
from repro.core import compute_statistics
from repro.core.bounds import corollary7_upper_bound, theorem5_upper_bound
from repro.experiments import estimate_opt, format_table, measure_ratio
from repro.workloads import uniform_both_instance, uniform_set_size_instance

K_VALUES = (2, 3, 4)
SIGMA_FOR_CORO7 = (2, 4)
TRIALS = 40


def test_e5_uniform_set_size(run_once, experiment_report):
    def experiment():
        rows = []
        # Part (a): uniform k, ragged loads -> Theorem 5.
        for k in K_VALUES:
            instance = uniform_set_size_instance(24, 36, k, random.Random(k))
            stats = compute_statistics(instance.system)
            opt = estimate_opt(instance.system, method="auto")
            measurement = measure_ratio(
                instance, RandPrAlgorithm(), trials=TRIALS, seed=k, opt=opt
            )
            rows.append(
                {
                    "family": "uniform-k",
                    "k": k,
                    "sigma_max": stats.sigma_max,
                    "measured_ratio": round(measurement.ratio, 3),
                    "bound": round(theorem5_upper_bound(stats), 3),
                    "bound_name": "Thm5: k*E[s^2]/E[s]^2",
                }
            )
        # Part (b): uniform k and uniform load -> Corollary 7 (bound = k).
        for k in K_VALUES:
            for sigma in SIGMA_FOR_CORO7:
                # num_sets * k is always divisible by sigma with this choice.
                num_sets = sigma * 6
                instance = uniform_both_instance(
                    num_sets, k, sigma, random.Random(10 * k + sigma)
                )
                stats = compute_statistics(instance.system)
                opt = estimate_opt(instance.system, method="auto")
                measurement = measure_ratio(
                    instance, RandPrAlgorithm(), trials=TRIALS, seed=k, opt=opt
                )
                rows.append(
                    {
                        "family": "uniform-k+load",
                        "k": k,
                        "sigma_max": sigma,
                        "measured_ratio": round(measurement.ratio, 3),
                        "bound": round(corollary7_upper_bound(stats), 3),
                        "bound_name": "Cor7: k",
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E5: uniform set size (Theorem 5) and uniform size+load (Corollary 7)",
    )
    experiment_report(
        "E5_theorem5_uniform_k",
        text,
        rows=rows,
        title="E5: uniform set size (Theorem 5) and uniform size+load (Corollary 7)",
    )

    for row in rows:
        assert row["measured_ratio"] <= row["bound"] + 0.35
    # Corollary 7 shape: the bound (and the measured ratio) does not grow with
    # sigma for fixed k on the fully uniform family.
    uniform_rows = [r for r in rows if r["family"] == "uniform-k+load" and r["k"] == 3]
    assert all(r["bound"] == uniform_rows[0]["bound"] for r in uniform_rows)
