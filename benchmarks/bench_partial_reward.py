"""E13 — extension: partial-completion rewards (open problem 3, Section 5).

The paper asks what changes if a set is gained even when a few elements are
missing.  The experiment runs randPr and two hedging-style algorithms on
contention-heavy instances and evaluates every run under three reward models:
strict (the paper's), threshold-θ for θ in {0.5, 0.75}, and proportional with
exponent 2.

Expected shape: under the strict model randPr dominates (hedging only
destroys complete sets); as the reward model is relaxed the gap narrows and
hedging-style spreading becomes competitive, which is exactly why the open
problem is interesting.
"""

import random

from repro.algorithms import HedgingAlgorithm, ProportionalShareAlgorithm, RandPrAlgorithm
from repro.core import simulate
from repro.core.partial import evaluate_partial_rewards
from repro.experiments import format_table
from repro.workloads import random_online_instance

NUM_INSTANCES = 3
TRIALS = 25
THETAS = (0.5, 0.75, 1.0)


def test_e13_partial_rewards(run_once, experiment_report):
    algorithms = [
        RandPrAlgorithm(),
        HedgingAlgorithm(epsilon=0.25),
        ProportionalShareAlgorithm(),
    ]

    def experiment():
        totals = {
            algorithm.name: {theta: 0.0 for theta in THETAS} | {"proportional": 0.0}
            for algorithm in algorithms
        }
        runs = 0
        for index in range(NUM_INSTANCES):
            instance = random_online_instance(
                24, 20, (3, 5), random.Random(90 + index), name=f"dense{index}"
            )
            for trial in range(TRIALS):
                for algorithm in algorithms:
                    result = simulate(
                        instance, algorithm,
                        rng=random.Random(1000 * index + trial),
                        record_steps=True,
                    )
                    summary = evaluate_partial_rewards(
                        instance.system, result, thetas=THETAS, gamma=2.0
                    )
                    for theta in THETAS:
                        totals[algorithm.name][theta] += summary.threshold_benefits[theta]
                    totals[algorithm.name]["proportional"] += summary.proportional_benefit
                runs += 1
        rows = []
        for name, sums in totals.items():
            rows.append(
                {
                    "algorithm": name,
                    "strict (theta=1.0)": round(sums[1.0] / runs, 2),
                    "theta=0.75": round(sums[0.75] / runs, 2),
                    "theta=0.5": round(sums[0.5] / runs, 2),
                    "proportional^2": round(sums["proportional"] / runs, 2),
                }
            )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E13: partial-completion rewards — mean benefit per reward model",
    )
    experiment_report("E13_partial_reward", text)

    by_name = {row["algorithm"]: row for row in rows}
    # Under the strict OSP model, randPr is the best of the three.
    assert by_name["randPr"]["strict (theta=1.0)"] >= by_name["hedging"]["strict (theta=1.0)"] - 1e-9
    assert by_name["randPr"]["strict (theta=1.0)"] >= by_name["proportional-share"]["strict (theta=1.0)"] - 1e-9
    # Relaxing the reward narrows the gap: hedging's share of randPr's value is
    # larger at theta=0.5 than under the strict model.
    randpr = by_name["randPr"]
    hedging = by_name["hedging"]
    strict_gap = hedging["strict (theta=1.0)"] / max(randpr["strict (theta=1.0)"], 1e-9)
    relaxed_gap = hedging["theta=0.5"] / max(randpr["theta=0.5"], 1e-9)
    assert relaxed_gap >= strict_gap - 0.05
