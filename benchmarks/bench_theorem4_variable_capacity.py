"""E4 — Theorem 4: variable element capacities and the adjusted load.

Paper claim: with per-element capacities b(u), randPr is
``16e * kmax * sqrt(mean(ν·σ$)/mean(σ$))``-competitive where ν = σ/b.

The experiment fixes the set system shape and sweeps the per-slot capacity,
reporting randPr's measured ratio next to the Theorem 4 bound and the mean
adjusted load.  Expected shape: the measured ratio falls as capacities grow
(the adjusted load falls), and always stays far below the (loose) bound.
"""

import random

from repro.algorithms import FirstListedAlgorithm, RandPrAlgorithm
from repro.core import compute_statistics
from repro.core.bounds import theorem4_upper_bound
from repro.experiments import estimate_opt, format_table, measure_ratio
from repro.workloads import random_variable_capacity_instance

CAPACITY_LEVELS = ((1, 1), (1, 2), (2, 2), (1, 4), (3, 3))
NUM_SETS = 30
NUM_ELEMENTS = 40
SET_SIZE_RANGE = (2, 4)
INSTANCES_PER_LEVEL = 3
TRIALS = 30


def test_e4_variable_capacity(run_once, experiment_report):
    def experiment():
        rows = []
        for capacity_range in CAPACITY_LEVELS:
            ratios = {"randPr": [], "first-listed": []}
            bounds = []
            adjusted = []
            for instance_index in range(INSTANCES_PER_LEVEL):
                rng = random.Random(hash((capacity_range, instance_index)) & 0xFFFF)
                instance = random_variable_capacity_instance(
                    NUM_SETS,
                    NUM_ELEMENTS,
                    SET_SIZE_RANGE,
                    capacity_range,
                    rng,
                    weight_range=(1.0, 5.0),
                    name=f"b{capacity_range}",
                )
                stats = compute_statistics(instance.system)
                bounds.append(theorem4_upper_bound(stats))
                adjusted.append(stats.adjusted_load_mean)
                opt = estimate_opt(instance.system, method="auto")
                for algorithm in (RandPrAlgorithm(), FirstListedAlgorithm()):
                    measurement = measure_ratio(
                        instance, algorithm, trials=TRIALS, seed=7, opt=opt
                    )
                    ratios[algorithm.name].append(measurement.ratio)
            for name, values in ratios.items():
                rows.append(
                    {
                        "capacity_range": str(capacity_range),
                        "algorithm": name,
                        "mean_adjusted_load": round(sum(adjusted) / len(adjusted), 3),
                        "mean_ratio": round(sum(values) / len(values), 3),
                        "thm4_bound": round(sum(bounds) / len(bounds), 1),
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E4: variable capacities — measured ratio vs Theorem 4 bound "
        "(ratio falls as adjusted load falls)",
    )
    experiment_report(
        "E4_theorem4_variable_capacity",
        text,
        rows=rows,
        title="E4: variable capacities — measured ratio vs Theorem 4 bound "
        "(ratio falls as adjusted load falls)",
    )

    randpr_rows = [row for row in rows if row["algorithm"] == "randPr"]
    for row in randpr_rows:
        assert row["mean_ratio"] <= row["thm4_bound"] + 1e-6
    # Shape: the most generous capacity level is easier than the unit one.
    assert randpr_rows[-1]["mean_ratio"] <= randpr_rows[0]["mean_ratio"] + 0.5
