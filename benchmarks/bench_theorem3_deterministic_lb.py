"""E3 — Theorem 3: the adaptive adversary against deterministic algorithms.

Paper claim: for every deterministic online algorithm there is an unweighted,
unit-capacity instance with maximum load σ and set size k on which the
algorithm completes at most one set while the optimum completes σ^(k-1), so
the deterministic competitive ratio is at least σ^(k-1).

The experiment plays the adversary against every deterministic baseline in
the library over a (σ, k) grid and reports the forced ratio next to the
paper's bound.  Expected shape: measured ratio ≥ σ^(k-1) in every cell, with
exponential growth in k.
"""

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyCommittedAlgorithm,
    GreedyProgressAlgorithm,
    GreedyWeightAlgorithm,
    LargestSetFirstAlgorithm,
    SmallestSetFirstAlgorithm,
    StaticOrderAlgorithm,
)
from repro.core.bounds import theorem3_lower_bound
from repro.experiments import format_table
from repro.lowerbounds import run_deterministic_adversary

PARAMETER_GRID = ((2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2), (4, 3))
VICTIMS = (
    GreedyWeightAlgorithm,
    GreedyProgressAlgorithm,
    GreedyCommittedAlgorithm,
    FirstListedAlgorithm,
    StaticOrderAlgorithm,
    LargestSetFirstAlgorithm,
    SmallestSetFirstAlgorithm,
)


def test_e3_deterministic_lower_bound(run_once, experiment_report):
    def experiment():
        rows = []
        for sigma, k in PARAMETER_GRID:
            for factory in VICTIMS:
                algorithm = factory()
                outcome = run_deterministic_adversary(algorithm, sigma=sigma, k=k)
                rows.append(
                    {
                        "sigma": sigma,
                        "k": k,
                        "algorithm": algorithm.name,
                        "alg_completed": outcome.algorithm_benefit,
                        "adversary_opt": outcome.opt_benefit,
                        "forced_ratio": round(outcome.ratio, 2)
                        if outcome.algorithm_benefit
                        else float("inf"),
                        "paper_bound": theorem3_lower_bound(sigma, k),
                    }
                )
        return rows

    rows = run_once(experiment)
    text = format_table(
        rows,
        title="E3: adaptive adversary vs deterministic algorithms "
        "(forced_ratio must be >= paper_bound = sigma^(k-1))",
    )
    experiment_report(
        "E3_theorem3_deterministic_lb",
        text,
        rows=rows,
        title="E3: adaptive adversary vs deterministic algorithms "
        "(forced_ratio must be >= paper_bound = sigma^(k-1))",
    )

    for row in rows:
        assert row["alg_completed"] <= 1
        bound = row["paper_bound"]
        ratio = row["forced_ratio"]
        assert ratio == float("inf") or ratio >= bound - 1e-9
