"""Two-sample KS tests and CI-overlap checks, numpy + stdlib only.

These are the primitives behind the fast engine's statistical-equivalence
suite (``tests/test_engine_fast_equivalence.py``), kept as a library so any
future approximate backend can reuse the same certificate:

* :func:`ks_two_sample` — the two-sample Kolmogorov–Smirnov test: the
  maximum gap between the two empirical CDFs, with the classic asymptotic
  p-value (the Kolmogorov distribution with the Stephens small-sample
  correction, the same approximation scipy's ``ks_2samp(mode="asymp")``
  uses).  Low p ⇒ the samples likely come from different distributions.
* :func:`mean_confidence_interval` / :func:`intervals_overlap` — a normal
  (CLT) confidence interval on the sample mean, and the overlap predicate
  two equivalent backends' intervals must satisfy.

Everything here is deterministic given its inputs — the *suite* gets its
determinism by fixing seeds and pre-registering thresholds, not from the
helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence

import numpy as np

__all__ = [
    "KSResult",
    "ks_statistic",
    "ks_pvalue",
    "ks_two_sample",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "intervals_overlap",
]


@dataclass(frozen=True)
class KSResult:
    """A two-sample KS test outcome: the statistic and its p-value.

    >>> result = KSResult(statistic=0.5, pvalue=0.03)
    >>> result.rejects(0.05)
    True
    >>> result.rejects(0.01)
    False
    """

    statistic: float
    pvalue: float

    def rejects(self, pvalue_floor: float) -> bool:
        """Whether the test rejects distributional equality at this floor."""
        return self.pvalue < pvalue_floor


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """The two-sample KS statistic: the largest empirical-CDF gap.

    >>> ks_statistic([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0])
    0.0
    >>> ks_statistic([0.0, 0.0], [1.0, 1.0])    # disjoint supports
    1.0
    >>> round(ks_statistic([1.0, 2.0, 3.0, 4.0], [3.0, 4.0, 5.0, 6.0]), 3)
    0.5
    """
    a = np.sort(np.asarray(first, dtype=np.float64))
    b = np.sort(np.asarray(second, dtype=np.float64))
    if not len(a) or not len(b):
        raise ValueError("both samples must be non-empty")
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / len(a)
    cdf_b = np.searchsorted(b, pooled, side="right") / len(b)
    return float(np.abs(cdf_a - cdf_b).max())


def ks_pvalue(statistic: float, first_size: int, second_size: int) -> float:
    """The asymptotic two-sample KS p-value for ``statistic``.

    The survival function of the Kolmogorov distribution,
    ``Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)``, evaluated at the
    Stephens-corrected ``λ = (√n_e + 0.12 + 0.11/√n_e)·D`` with effective
    size ``n_e = n·m/(n+m)``.  Accurate for the thousands-of-trials samples
    the equivalence suite draws; the alternating series is summed to
    convergence.

    >>> ks_pvalue(0.0, 1000, 1000)          # identical CDFs: never rejected
    1.0
    >>> ks_pvalue(1.0, 1000, 1000) < 1e-12  # disjoint supports: rejected
    True
    >>> 0.05 < ks_pvalue(0.04, 1000, 1000) < 1.0   # small gap: plausible
    True
    """
    if first_size < 1 or second_size < 1:
        raise ValueError("sample sizes must be positive")
    effective = math.sqrt(first_size * second_size / (first_size + second_size))
    lam = (effective + 0.12 + 0.11 / effective) * float(statistic)
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 201):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-16:
            break
    return min(1.0, max(0.0, 2.0 * total))


def ks_two_sample(first: Sequence[float], second: Sequence[float]) -> KSResult:
    """The two-sample KS test of ``first`` vs ``second``.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> same = ks_two_sample(rng.normal(size=2000), rng.normal(size=2000))
    >>> same.rejects(0.01)
    False
    >>> shifted = ks_two_sample(rng.normal(size=2000),
    ...                         rng.normal(loc=0.5, size=2000))
    >>> shifted.rejects(0.01)
    True
    """
    statistic = ks_statistic(first, second)
    return KSResult(
        statistic=statistic,
        pvalue=ks_pvalue(statistic, len(first), len(second)),
    )


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean.

    >>> interval = ConfidenceInterval(mean=2.0, low=1.5, high=2.5,
    ...                               confidence=0.99)
    >>> interval.contains(2.4), interval.contains(3.0)
    (True, False)
    """

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.99
) -> ConfidenceInterval:
    """A normal-approximation CI for the mean of ``values``.

    The CLT interval ``mean ± z·s/√n`` with the sample standard deviation
    (``ddof=1``) and the two-sided normal quantile from the standard
    library's :class:`statistics.NormalDist` — appropriate for the
    thousands-of-trials benefit samples the equivalence suite compares
    (no scipy ``t`` needed at those sizes).

    >>> interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0],
    ...                                     confidence=0.95)
    >>> round(interval.mean, 3)
    2.5
    >>> interval.low < 2.5 < interval.high
    True
    >>> wider = mean_confidence_interval([1.0, 2.0, 3.0, 4.0],
    ...                                  confidence=0.999)
    >>> wider.low < interval.low and wider.high > interval.high
    True
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    sample = np.asarray(values, dtype=np.float64)
    if len(sample) < 2:
        raise ValueError("need at least two values for a confidence interval")
    mean = float(sample.mean())
    spread = float(sample.std(ddof=1)) / math.sqrt(len(sample))
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    return ConfidenceInterval(
        mean=mean, low=mean - z * spread, high=mean + z * spread,
        confidence=confidence,
    )


def intervals_overlap(
    first: ConfidenceInterval, second: ConfidenceInterval
) -> bool:
    """Whether two confidence intervals intersect.

    Two backends estimating the *same* mean produce overlapping intervals
    with probability at least ``2·confidence − 1``; at the suite's 0.999
    confidence a non-overlap is therefore evidence of a real mean shift,
    not sampling noise.

    >>> a = ConfidenceInterval(2.0, 1.5, 2.5, 0.99)
    >>> b = ConfidenceInterval(2.4, 2.1, 2.7, 0.99)
    >>> intervals_overlap(a, b)
    True
    >>> c = ConfidenceInterval(3.1, 2.8, 3.4, 0.99)
    >>> intervals_overlap(a, c)
    False
    """
    return first.low <= second.high and second.low <= first.high
