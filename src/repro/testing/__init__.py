"""Reusable statistical test helpers for validating approximate backends.

The exact engines are validated by bit-identity (the differential suites);
a *statistical* backend like ``engine="fast"`` needs a different kind of
certificate: distribution-level agreement with pre-registered tolerances.
:mod:`repro.testing.stats` provides the two checks the equivalence suite is
built from — a two-sample Kolmogorov–Smirnov test on per-trial benefit
distributions and confidence-interval overlap on means — implemented on
numpy and the standard library only (no scipy dependency).

>>> from repro.testing import ks_two_sample
>>> ks_two_sample([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]).statistic
0.0
"""

from repro.testing.stats import (
    ConfidenceInterval,
    KSResult,
    intervals_overlap,
    ks_pvalue,
    ks_statistic,
    ks_two_sample,
    mean_confidence_interval,
)

__all__ = [
    "ConfidenceInterval",
    "KSResult",
    "intervals_overlap",
    "ks_pvalue",
    "ks_statistic",
    "ks_two_sample",
    "mean_confidence_interval",
]
