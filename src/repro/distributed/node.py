"""A bounded-capacity server node making purely local OSP decisions.

In the paper's general scenario a set is a compound task whose parts are
served at different locations; each location is a bounded-capacity server
that must decide, using only locally available information, which parts to
serve.  A :class:`ServerNode` sees only the elements routed to it.  Its
decisions are driven by the shared hash-derived priorities, so every node
ranks a given set identically without any message exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.instance import ElementArrival
from repro.core.priorities import hash_priority
from repro.core.set_system import ElementId, SetId
from repro.distributed.hashing import UniversalHashFamily

__all__ = ["ServerNode", "NodeDecision"]


@dataclass(frozen=True)
class NodeDecision:
    """One local decision taken by a server node."""

    node_id: str
    element_id: ElementId
    assigned: FrozenSet[SetId]


@dataclass
class ServerNode:
    """A single bounded-capacity server executing the hash-priority rule.

    Parameters
    ----------
    node_id:
        Identifier of the server (e.g. the switch name or the hop index).
    salt:
        The system-wide hash seed shared by all servers.
    hash_family:
        Optional shared universal hash family; when given, it replaces the
        SHA-256-based default (both are deterministic in the salt).
    weights:
        Set weights as known to this server.  Servers that do not know a
        set's weight treat it as 1, exactly like the unweighted protocol.
    """

    node_id: str
    salt: str
    hash_family: Optional[UniversalHashFamily] = None
    weights: Dict[SetId, float] = field(default_factory=dict)
    decisions: List[NodeDecision] = field(default_factory=list)

    def priority_of(self, set_id: SetId) -> float:
        """The shared hash-derived priority of a set (identical on all nodes)."""
        weight = max(self.weights.get(set_id, 1.0), 1e-12)
        if self.hash_family is not None:
            uniform = self.hash_family.unit_interval(f"{self.salt}:{set_id!r}")
            if uniform <= 0.0:
                uniform = 1e-18
            return uniform ** (1.0 / weight)
        return hash_priority(set_id, weight, salt=self.salt)

    def handle(self, arrival: ElementArrival) -> NodeDecision:
        """Serve an element that arrived at this node and record the decision."""
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (-self.priority_of(set_id), repr(set_id)),
        )
        decision = NodeDecision(
            node_id=self.node_id,
            element_id=arrival.element_id,
            assigned=frozenset(ranked[: arrival.capacity]),
        )
        self.decisions.append(decision)
        return decision

    @property
    def num_handled(self) -> int:
        """How many elements this node has served so far."""
        return len(self.decisions)

    def reset(self) -> None:
        """Forget all recorded decisions (weights and salt are retained)."""
        self.decisions = []

    def assignments(self) -> Dict[ElementId, Tuple[SetId, ...]]:
        """All local assignments as a mapping element -> chosen sets."""
        return {
            decision.element_id: tuple(sorted(decision.assigned, key=repr))
            for decision in self.decisions
        }
