"""Distributed execution of online set packing across server nodes.

The coordinator does *not* participate in decisions — it only models the
physical placement of elements onto servers, routes each arrival to its
server, and afterwards aggregates the purely local decisions to determine
which sets (compound tasks) completed.  The central claim of the paper's
distributed remark — that hash-derived priorities make the distributed
outcome identical to the centralized randPr run with the same hash — is a
property the tests verify via :func:`repro.core.simulation.simulate` on
:class:`~repro.algorithms.hashed.HashedRandPrAlgorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional

from repro.core.instance import OnlineInstance
from repro.core.set_system import ElementId, SetId
from repro.distributed.hashing import UniversalHashFamily
from repro.distributed.node import NodeDecision, ServerNode
from repro.exceptions import OspError
from repro.experiments.parallel import stable_seed

__all__ = ["DistributedOutcome", "DistributedCoordinator", "round_robin_placement"]

PlacementFunction = Callable[[ElementId], str]


def round_robin_placement(node_ids: List[str]) -> PlacementFunction:
    """A placement that spreads elements over nodes by a stable hash of their id.

    The hash is :func:`~repro.experiments.parallel.stable_seed`, not the
    built-in ``hash()``: string hashing is randomized per interpreter run
    (``PYTHONHASHSEED``), so a ``hash()``-based placement would scatter the
    same element onto different nodes in different processes — fatal for a
    placement that several cooperating processes must agree on.  The
    ``stable_seed`` routing is identical on every platform, interpreter and
    hash seed (``tests/test_hashed_and_distributed.py`` checks this across
    ``PYTHONHASHSEED`` values in subprocesses).
    """
    if not node_ids:
        raise OspError("round-robin placement needs at least one node")
    ordered = list(node_ids)

    def place(element_id: ElementId) -> str:
        return ordered[stable_seed("placement", repr(element_id)) % len(ordered)]

    return place


@dataclass
class DistributedOutcome:
    """The aggregated result of a distributed run."""

    completed_sets: FrozenSet[SetId]
    benefit: float
    decisions: List[NodeDecision]
    per_node_counts: Dict[str, int]

    @property
    def num_completed(self) -> int:
        """The number of compound tasks (sets) completed across all servers."""
        return len(self.completed_sets)


class DistributedCoordinator:
    """Runs an online instance across a fleet of :class:`ServerNode` objects.

    Parameters
    ----------
    node_ids:
        The servers participating in the system.
    salt:
        The shared hash seed distributed to every server out of band.
    placement:
        Maps each element to the server where it is physically served.
        Defaults to hash-based spreading; the multi-hop scenario uses the
        hop coordinate instead.
    hash_family:
        Optional shared universal hash family distributed to the nodes.
    """

    def __init__(
        self,
        node_ids: List[str],
        salt: str,
        placement: Optional[PlacementFunction] = None,
        hash_family: Optional[UniversalHashFamily] = None,
    ) -> None:
        if not node_ids:
            raise OspError("a distributed deployment needs at least one server node")
        if len(node_ids) != len(set(node_ids)):
            raise OspError("server node identifiers must be unique")
        self._salt = salt
        self._hash_family = hash_family
        self._placement = placement or round_robin_placement(list(node_ids))
        self._nodes: Dict[str, ServerNode] = {
            node_id: ServerNode(node_id=node_id, salt=salt, hash_family=hash_family)
            for node_id in node_ids
        }

    @property
    def nodes(self) -> Mapping[str, ServerNode]:
        """The server nodes, keyed by identifier."""
        return self._nodes

    def run(self, instance: OnlineInstance) -> DistributedOutcome:
        """Execute the instance: route every arrival to its server and aggregate.

        Set weights are broadcast to every node up front (they are part of the
        up-front public information in the OSP model).
        """
        system = instance.system
        weights = {set_id: system.weight(set_id) for set_id in system.set_ids}
        for node in self._nodes.values():
            node.reset()
            node.weights = dict(weights)

        decisions: List[NodeDecision] = []
        assigned_counts: Dict[SetId, int] = {set_id: 0 for set_id in system.set_ids}
        alive: Dict[SetId, bool] = {set_id: True for set_id in system.set_ids}

        for arrival in instance.arrivals():
            node_id = self._placement(arrival.element_id)
            if node_id not in self._nodes:
                raise OspError(
                    f"placement routed element {arrival.element_id!r} to unknown node "
                    f"{node_id!r}"
                )
            decision = self._nodes[node_id].handle(arrival)
            decisions.append(decision)
            for set_id in arrival.parents:
                if set_id in decision.assigned:
                    assigned_counts[set_id] += 1
                else:
                    alive[set_id] = False

        completed = frozenset(
            set_id
            for set_id in system.set_ids
            if alive[set_id] and assigned_counts[set_id] == system.size(set_id)
        )
        benefit = sum(system.weight(set_id) for set_id in completed)
        per_node = {node_id: node.num_handled for node_id, node in self._nodes.items()}
        return DistributedOutcome(
            completed_sets=completed,
            benefit=benefit,
            decisions=decisions,
            per_node_counts=per_node,
        )
