"""Distributed execution substrate: shared hashing, server nodes, coordinator."""

from repro.distributed.coordinator import (
    DistributedCoordinator,
    DistributedOutcome,
    round_robin_placement,
)
from repro.distributed.hashing import PolynomialHashFamily, UniversalHashFamily, fold_key
from repro.distributed.node import NodeDecision, ServerNode

__all__ = [
    "DistributedCoordinator",
    "DistributedOutcome",
    "round_robin_placement",
    "PolynomialHashFamily",
    "UniversalHashFamily",
    "fold_key",
    "NodeDecision",
    "ServerNode",
]
