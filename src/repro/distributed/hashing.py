"""Hashing substrate for the distributed implementation of randPr.

The paper notes that the random priorities can be replaced by a system-wide
hash function applied to set identifiers, and that ``k_max * σ_max``-wise
independence suffices.  This module provides:

* :class:`UniversalHashFamily` — the classic Carter–Wegman family
  ``h(x) = ((a*x + b) mod p) mod m`` over a Mersenne prime, with string keys
  folded into integers first.
* :class:`PolynomialHashFamily` — degree-``d`` polynomial hashing over a
  prime field, giving ``(d+1)``-wise independence; used to probe how much
  independence the distributed algorithm actually needs.
* :func:`fold_key` — stable conversion of arbitrary identifiers to integers.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Union

__all__ = ["fold_key", "UniversalHashFamily", "PolynomialHashFamily"]

#: A Mersenne prime comfortably larger than any 61-bit folded key.
MERSENNE_PRIME_61 = (1 << 61) - 1


def fold_key(key: Union[int, str, bytes, object]) -> int:
    """Map an arbitrary identifier to a non-negative integer below 2^61.

    Integers below the prime are passed through (so arithmetic-friendly keys
    stay recognisable); everything else is folded through SHA-256.  The
    mapping is stable across processes and Python versions, which is what a
    distributed deployment needs.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int) and 0 <= key < MERSENNE_PRIME_61:
        return key
    if isinstance(key, bytes):
        data = key
    else:
        data = repr(key).encode("utf-8")
    digest = hashlib.sha256(data).digest()
    return int.from_bytes(digest[:8], "big") % MERSENNE_PRIME_61


class UniversalHashFamily:
    """A 2-universal hash family ``h(x) = ((a*x + b) mod p) mod range``.

    Instances are constructed from a seed so that every server that shares
    the seed computes the same function.
    """

    def __init__(self, seed: int, output_range: int = 1 << 61) -> None:
        if output_range < 2:
            raise ValueError(f"output range must be at least 2, got {output_range}")
        rng = random.Random(seed)
        self._prime = MERSENNE_PRIME_61
        self._a = rng.randrange(1, self._prime)
        self._b = rng.randrange(0, self._prime)
        self._range = output_range
        self._seed = seed

    @property
    def seed(self) -> int:
        """The seed this hash function was derived from."""
        return self._seed

    def hash(self, key: Union[int, str, bytes, object]) -> int:
        """The hash of ``key`` in ``[0, output_range)``."""
        x = fold_key(key)
        return ((self._a * x + self._b) % self._prime) % self._range

    def unit_interval(self, key: Union[int, str, bytes, object]) -> float:
        """The hash of ``key`` mapped to ``[0, 1)``."""
        return self.hash(key) / self._range

    def __call__(self, key: Union[int, str, bytes, object]) -> int:
        return self.hash(key)

    def __repr__(self) -> str:
        return f"UniversalHashFamily(seed={self._seed}, range={self._range})"


class PolynomialHashFamily:
    """Degree-``d`` polynomial hashing: ``(d+1)``-wise independent.

    ``h(x) = (c_d x^d + ... + c_1 x + c_0) mod p mod range`` with coefficients
    drawn from the seed.  With ``degree = k_max * σ_max - 1`` this realises
    exactly the independence level the paper's remark asks for.
    """

    def __init__(self, seed: int, degree: int, output_range: int = 1 << 61) -> None:
        if degree < 1:
            raise ValueError(f"degree must be at least 1, got {degree}")
        if output_range < 2:
            raise ValueError(f"output range must be at least 2, got {output_range}")
        rng = random.Random(seed)
        self._prime = MERSENNE_PRIME_61
        self._coefficients: List[int] = [
            rng.randrange(0, self._prime) for _ in range(degree + 1)
        ]
        # Leading coefficient must be non-zero for full degree.
        if self._coefficients[-1] == 0:
            self._coefficients[-1] = 1
        self._range = output_range
        self._seed = seed
        self._degree = degree

    @property
    def degree(self) -> int:
        """The polynomial degree (independence level minus one)."""
        return self._degree

    @property
    def independence(self) -> int:
        """The wise-independence level of the family (degree + 1)."""
        return self._degree + 1

    def hash(self, key: Union[int, str, bytes, object]) -> int:
        """The hash of ``key`` in ``[0, output_range)``."""
        x = fold_key(key)
        value = 0
        # Horner evaluation modulo the prime.
        for coefficient in reversed(self._coefficients):
            value = (value * x + coefficient) % self._prime
        return value % self._range

    def unit_interval(self, key: Union[int, str, bytes, object]) -> float:
        """The hash of ``key`` mapped to ``[0, 1)``."""
        return self.hash(key) / self._range

    def __call__(self, key: Union[int, str, bytes, object]) -> int:
        return self.hash(key)

    def __repr__(self) -> str:
        return (
            f"PolynomialHashFamily(seed={self._seed}, degree={self._degree}, "
            f"range={self._range})"
        )
