"""General online packing: the paper's first open problem (Section 5).

Standard OSP is the special case of the packing integer program (1) in which
every matrix entry is 0 or 1.  The paper asks about "arbitrary packing
problems, where the entries in the matrix are arbitrary non-negative
integers": set ``S`` *demands* ``d(u, S)`` units of element (resource) ``u``,
and element ``u`` can supply at most ``b(u)`` units; a set pays its weight
only if it received its full demand at every resource.

The online model mirrors OSP: resources arrive one at a time, each announcing
its capacity and the demands of the sets that need it, and the algorithm must
immediately decide which of those sets to serve (the served demands must fit
within the capacity).  This module provides the instance representation, the
algorithm protocol, the simulation engine and an exact offline solver; the
algorithms themselves (generalized randPr and a greedy baseline) live in
:mod:`repro.algorithms.general`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.set_system import SetId, SetInfo
from repro.exceptions import (
    AlgorithmProtocolError,
    InvalidInstanceError,
    InvalidSetSystemError,
)

__all__ = [
    "GeneralArrival",
    "GeneralPackingInstance",
    "GeneralPackingBuilder",
    "GeneralOnlineAlgorithm",
    "GeneralSimulationResult",
    "simulate_general",
    "solve_general_exact",
    "osp_instance_to_general",
]

ElementId = str


@dataclass(frozen=True)
class GeneralArrival:
    """A resource arrival: its capacity and the per-set demands on it."""

    element_id: ElementId
    capacity: int
    demands: Mapping[SetId, int]

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise InvalidSetSystemError(
                f"resource {self.element_id!r} has negative capacity {self.capacity}"
            )
        for set_id, demand in self.demands.items():
            if not isinstance(demand, int) or isinstance(demand, bool) or demand < 1:
                raise InvalidSetSystemError(
                    f"demand of set {set_id!r} on resource {self.element_id!r} must be "
                    f"a positive integer, got {demand!r}"
                )

    @property
    def parents(self) -> Tuple[SetId, ...]:
        """The sets demanding this resource, in a deterministic order."""
        return tuple(sorted(self.demands, key=repr))

    def demand_of(self, set_id: SetId) -> int:
        """The demand of ``set_id`` on this resource (0 if it does not appear)."""
        return int(self.demands.get(set_id, 0))


class GeneralPackingInstance:
    """A general online packing instance: weighted sets and resource arrivals."""

    def __init__(
        self,
        weights: Mapping[SetId, float],
        arrivals: Iterable[GeneralArrival],
        name: str = "",
    ) -> None:
        self._weights: Dict[SetId, float] = {}
        for set_id, weight in weights.items():
            if weight < 0:
                raise InvalidSetSystemError(
                    f"set {set_id!r} has negative weight {weight}"
                )
            self._weights[set_id] = float(weight)
        self._arrivals: List[GeneralArrival] = list(arrivals)
        self._name = name
        seen = set()
        for arrival in self._arrivals:
            if arrival.element_id in seen:
                raise InvalidInstanceError(
                    f"resource {arrival.element_id!r} arrives twice"
                )
            seen.add(arrival.element_id)
            for set_id in arrival.demands:
                if set_id not in self._weights:
                    # Sets referenced only by arrivals default to weight 1.
                    self._weights[set_id] = 1.0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The human-readable name of the instance."""
        return self._name

    @property
    def set_ids(self) -> Tuple[SetId, ...]:
        """All set identifiers in a deterministic order."""
        return tuple(sorted(self._weights, key=repr))

    @property
    def num_sets(self) -> int:
        """The number of sets."""
        return len(self._weights)

    @property
    def num_resources(self) -> int:
        """The number of resource arrivals."""
        return len(self._arrivals)

    def weight(self, set_id: SetId) -> float:
        """The weight of a set."""
        try:
            return self._weights[set_id]
        except KeyError:
            raise InvalidSetSystemError(f"unknown set {set_id!r}") from None

    def total_weight(self, set_ids: Optional[Iterable[SetId]] = None) -> float:
        """The total weight of a collection (default: all sets)."""
        if set_ids is None:
            return sum(self._weights.values())
        return sum(self.weight(set_id) for set_id in set_ids)

    def resources_of(self, set_id: SetId) -> Tuple[ElementId, ...]:
        """The resources on which ``set_id`` has positive demand."""
        return tuple(
            arrival.element_id
            for arrival in self._arrivals
            if arrival.demand_of(set_id) > 0
        )

    def demand_profile(self, set_id: SetId) -> Dict[ElementId, int]:
        """The full demand vector of a set over the arriving resources."""
        return {
            arrival.element_id: arrival.demand_of(set_id)
            for arrival in self._arrivals
            if arrival.demand_of(set_id) > 0
        }

    def set_infos(self) -> Dict[SetId, SetInfo]:
        """Up-front information: weight and number of demanded resources."""
        return {
            set_id: SetInfo(
                set_id=set_id,
                weight=self.weight(set_id),
                size=len(self.resources_of(set_id)),
            )
            for set_id in self.set_ids
        }

    def arrivals(self) -> Iterator[GeneralArrival]:
        """The resource arrivals in order."""
        return iter(self._arrivals)

    def is_feasible(self, chosen: Iterable[SetId]) -> bool:
        """Whether serving every set in ``chosen`` fits all resource capacities."""
        chosen = list(chosen)
        if len(chosen) != len(set(chosen)):
            return False
        for arrival in self._arrivals:
            demand = sum(arrival.demand_of(set_id) for set_id in chosen)
            if demand > arrival.capacity:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"GeneralPackingInstance(sets={self.num_sets}, "
            f"resources={self.num_resources})"
        )


class GeneralPackingBuilder:
    """Incrementally build a general packing instance in arrival order."""

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._weights: Dict[SetId, float] = {}
        self._arrivals: List[GeneralArrival] = []
        self._counter = 0

    def declare_set(self, set_id: SetId, weight: float = 1.0) -> SetId:
        """Declare a set with its weight."""
        self._weights[set_id] = float(weight)
        return set_id

    def add_resource(
        self,
        demands: Mapping[SetId, int],
        capacity: int,
        element_id: Optional[ElementId] = None,
    ) -> ElementId:
        """Append an arriving resource with its per-set demands and capacity."""
        if element_id is None:
            element_id = f"r{self._counter}"
            self._counter += 1
        arrival = GeneralArrival(
            element_id=element_id, capacity=capacity, demands=dict(demands)
        )
        self._arrivals.append(arrival)
        for set_id in demands:
            self._weights.setdefault(set_id, 1.0)
        return element_id

    def build(self) -> GeneralPackingInstance:
        """Finalize the instance."""
        return GeneralPackingInstance(self._weights, self._arrivals, name=self._name)


class GeneralOnlineAlgorithm(ABC):
    """Protocol for online algorithms in the general packing model."""

    name: str = "general-online-algorithm"
    is_deterministic: bool = False

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        """Reset state for a new instance (default: nothing to do)."""

    @abstractmethod
    def decide(self, arrival: GeneralArrival) -> FrozenSet[SetId]:
        """Choose the sets to serve at this resource.

        The total demand of the returned sets must not exceed the resource
        capacity, and every returned set must have positive demand here.
        """


@dataclass
class GeneralSimulationResult:
    """The outcome of one general packing simulation."""

    algorithm_name: str
    completed_sets: FrozenSet[SetId]
    benefit: float
    num_resources: int
    served_units: int = 0

    @property
    def num_completed(self) -> int:
        """The number of fully served sets."""
        return len(self.completed_sets)


def _validate_general_decision(
    arrival: GeneralArrival, decision: FrozenSet[SetId]
) -> Optional[str]:
    total = 0
    for set_id in decision:
        demand = arrival.demand_of(set_id)
        if demand <= 0:
            return (
                f"set {set_id!r} was served at resource {arrival.element_id!r} "
                "where it has no demand"
            )
        total += demand
    if total > arrival.capacity:
        return (
            f"served demand {total} exceeds capacity {arrival.capacity} at resource "
            f"{arrival.element_id!r}"
        )
    return None


def simulate_general(
    instance: GeneralPackingInstance,
    algorithm: GeneralOnlineAlgorithm,
    rng: Optional[random.Random] = None,
) -> GeneralSimulationResult:
    """Run a general packing algorithm on an instance."""
    rng = rng if rng is not None else random.Random()
    algorithm.start(instance.set_infos(), rng)

    alive: Dict[SetId, bool] = {set_id: True for set_id in instance.set_ids}
    remaining: Dict[SetId, int] = {
        set_id: len(instance.resources_of(set_id)) for set_id in instance.set_ids
    }
    served_units = 0

    for arrival in instance.arrivals():
        decision = frozenset(algorithm.decide(arrival))
        error = _validate_general_decision(arrival, decision)
        if error is not None:
            raise AlgorithmProtocolError(
                f"algorithm {algorithm.name!r}: {error}"
            )
        for set_id in arrival.parents:
            if set_id in decision:
                remaining[set_id] -= 1
                served_units += arrival.demand_of(set_id)
            else:
                alive[set_id] = False

    completed = frozenset(
        set_id
        for set_id in instance.set_ids
        if alive[set_id] and remaining[set_id] == 0
    )
    benefit = sum(instance.weight(set_id) for set_id in completed)
    return GeneralSimulationResult(
        algorithm_name=algorithm.name,
        completed_sets=completed,
        benefit=benefit,
        num_resources=instance.num_resources,
        served_units=served_units,
    )


def solve_general_exact(
    instance: GeneralPackingInstance, max_nodes: int = 500_000
) -> Tuple[FrozenSet[SetId], float]:
    """Exact offline optimum of a general packing instance (branch and bound).

    Returns the chosen sets and their total weight.  Intended for the small
    instances used to measure competitive ratios; ``max_nodes`` caps the
    search (the incumbent is returned if the cap is hit).
    """
    set_ids = sorted(
        instance.set_ids, key=lambda set_id: (-instance.weight(set_id), repr(set_id))
    )
    weights = [instance.weight(set_id) for set_id in set_ids]
    arrivals = list(instance.arrivals())
    demands = [
        {index: arrival.demand_of(set_id) for index, arrival in enumerate(arrivals)
         if arrival.demand_of(set_id) > 0}
        for set_id in set_ids
    ]
    capacities = [arrival.capacity for arrival in arrivals]

    suffix = [0.0] * (len(weights) + 1)
    for index in range(len(weights) - 1, -1, -1):
        suffix[index] = suffix[index + 1] + weights[index]

    usage = [0] * len(arrivals)
    chosen: List[int] = []
    best: Tuple[float, Tuple[int, ...]] = (0.0, ())
    nodes = 0

    def fits(index: int) -> bool:
        for resource, demand in demands[index].items():
            if usage[resource] + demand > capacities[resource]:
                return False
        return True

    def descend(index: int, weight_so_far: float) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > max_nodes:
            return
        if weight_so_far > best[0]:
            best = (weight_so_far, tuple(chosen))
        if index >= len(set_ids) or weight_so_far + suffix[index] <= best[0]:
            return
        if fits(index):
            for resource, demand in demands[index].items():
                usage[resource] += demand
            chosen.append(index)
            descend(index + 1, weight_so_far + weights[index])
            chosen.pop()
            for resource, demand in demands[index].items():
                usage[resource] -= demand
        descend(index + 1, weight_so_far)

    descend(0, 0.0)
    chosen_sets = frozenset(set_ids[index] for index in best[1])
    return chosen_sets, best[0]


def osp_instance_to_general(instance) -> GeneralPackingInstance:
    """Embed an ordinary OSP :class:`~repro.core.instance.OnlineInstance`.

    Every membership becomes a demand of exactly 1 and capacities carry over,
    so OSP is literally the 0/1 special case of the general model — the tests
    verify that simulating either representation gives the same benefit.
    """
    builder = GeneralPackingBuilder(name=instance.name or "osp-as-general")
    system = instance.system
    for set_id in system.set_ids:
        builder.declare_set(set_id, system.weight(set_id))
    for arrival in instance.arrivals():
        builder.add_resource(
            {set_id: 1 for set_id in arrival.parents},
            capacity=arrival.capacity,
            element_id=str(arrival.element_id),
        )
    return builder.build()
