"""Instance statistics used by the paper's competitive-ratio bounds.

The paper expresses its bounds in terms of the following quantities (all
defined over a weighted set system with element capacities):

* ``k_max`` — the maximum set size, and ``k_mean`` — the average set size.
* ``sigma(u)`` — the load of element ``u`` (number of sets containing it),
  with maximum ``sigma_max`` and average ``sigma_mean``.
* ``sigma$(u)`` — the weighted load ``w(C(u))``.
* ``nu(u) = sigma(u) / b(u)`` — the adjusted load (Definition 1).
* Mixed averages such as ``mean(sigma * sigma$)`` and ``mean(sigma^2)``
  (the paper's overline notation averages the per-element product).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.set_system import ElementId, SetSystem


@dataclass(frozen=True)
class InstanceStatistics:
    """All the per-instance aggregates that appear in the paper's bounds."""

    num_sets: int
    num_elements: int
    total_weight: float
    k_max: int
    k_mean: float
    sigma_max: int
    sigma_mean: float
    sigma_second_moment: float
    weighted_load_mean: float
    weighted_load_max: float
    sigma_weighted_product_mean: float
    adjusted_load_max: float
    adjusted_load_mean: float
    adjusted_weighted_product_mean: float
    capacity_max: int
    capacity_min: int
    is_unweighted: bool
    is_unit_capacity: bool
    uniform_set_size: bool
    uniform_load: bool

    def as_dict(self) -> Dict[str, float]:
        """The statistics as a plain dictionary (for reports)."""
        return {
            "num_sets": self.num_sets,
            "num_elements": self.num_elements,
            "total_weight": self.total_weight,
            "k_max": self.k_max,
            "k_mean": self.k_mean,
            "sigma_max": self.sigma_max,
            "sigma_mean": self.sigma_mean,
            "sigma_second_moment": self.sigma_second_moment,
            "weighted_load_mean": self.weighted_load_mean,
            "weighted_load_max": self.weighted_load_max,
            "sigma_weighted_product_mean": self.sigma_weighted_product_mean,
            "adjusted_load_max": self.adjusted_load_max,
            "adjusted_load_mean": self.adjusted_load_mean,
            "adjusted_weighted_product_mean": self.adjusted_weighted_product_mean,
            "capacity_max": self.capacity_max,
            "capacity_min": self.capacity_min,
        }


def compute_statistics(system: SetSystem) -> InstanceStatistics:
    """Compute every aggregate used by the paper's bounds for ``system``.

    Raises no error on empty systems: all averages default to zero so that
    callers can still render reports for degenerate inputs.
    """
    set_sizes = [system.size(set_id) for set_id in system.set_ids]
    loads = {element: system.load(element) for element in system.element_ids}
    weighted_loads = {
        element: system.weighted_load(element) for element in system.element_ids
    }
    adjusted_loads = {
        element: system.adjusted_load(element) for element in system.element_ids
    }
    capacities = [system.capacity(element) for element in system.element_ids]

    num_sets = system.num_sets
    num_elements = system.num_elements

    k_max = max(set_sizes) if set_sizes else 0
    k_mean = (sum(set_sizes) / num_sets) if num_sets else 0.0

    sigma_values = list(loads.values())
    sigma_max = max(sigma_values) if sigma_values else 0
    sigma_mean = (sum(sigma_values) / num_elements) if num_elements else 0.0
    sigma_second_moment = (
        sum(value * value for value in sigma_values) / num_elements
        if num_elements
        else 0.0
    )

    weighted_values = list(weighted_loads.values())
    weighted_load_mean = (
        sum(weighted_values) / num_elements if num_elements else 0.0
    )
    weighted_load_max = max(weighted_values) if weighted_values else 0.0

    sigma_weighted_product_mean = (
        sum(loads[element] * weighted_loads[element] for element in loads) / num_elements
        if num_elements
        else 0.0
    )

    adjusted_values = list(adjusted_loads.values())
    adjusted_load_max = max(adjusted_values) if adjusted_values else 0.0
    adjusted_load_mean = (
        sum(adjusted_values) / num_elements if num_elements else 0.0
    )
    adjusted_weighted_product_mean = (
        sum(adjusted_loads[element] * weighted_loads[element] for element in loads)
        / num_elements
        if num_elements
        else 0.0
    )

    return InstanceStatistics(
        num_sets=num_sets,
        num_elements=num_elements,
        total_weight=system.total_weight(),
        k_max=k_max,
        k_mean=k_mean,
        sigma_max=sigma_max,
        sigma_mean=sigma_mean,
        sigma_second_moment=sigma_second_moment,
        weighted_load_mean=weighted_load_mean,
        weighted_load_max=weighted_load_max,
        sigma_weighted_product_mean=sigma_weighted_product_mean,
        adjusted_load_max=adjusted_load_max,
        adjusted_load_mean=adjusted_load_mean,
        adjusted_weighted_product_mean=adjusted_weighted_product_mean,
        capacity_max=max(capacities) if capacities else 0,
        capacity_min=min(capacities) if capacities else 0,
        is_unweighted=system.is_unweighted(),
        is_unit_capacity=system.is_unit_capacity(),
        uniform_set_size=len(set(set_sizes)) <= 1,
        uniform_load=len(set(sigma_values)) <= 1,
    )


def statistics_from_benefits(benefits: Sequence[float]) -> Tuple[float, float]:
    """The mean and sample standard deviation of per-trial benefits.

    This is the single aggregation routine behind every "mean benefit ±
    std" number in the package (``measure_ratio``, ``BatchResult``,
    ``expected_benefit``): one numpy reduction instead of a hand-rolled
    Python variance loop, and — because both simulation engines and both
    the serial and parallel orchestration paths funnel through the same
    function on the same per-trial floats — one set of float results.
    The standard deviation uses ``ddof=1`` (sample std), matching the
    historical definition; zero or one sample yields ``(mean, 0.0)``.
    """
    values = np.asarray(benefits, dtype=np.float64)
    if values.size == 0:
        return 0.0, 0.0
    mean = float(values.mean())
    if values.size == 1:
        return mean, 0.0
    return mean, float(values.std(ddof=1))


def load_histogram(system: SetSystem) -> Dict[int, int]:
    """Histogram of element loads: load value -> number of elements."""
    histogram: Dict[int, int] = {}
    for element in system.element_ids:
        load = system.load(element)
        histogram[load] = histogram.get(load, 0) + 1
    return histogram


def set_size_histogram(system: SetSystem) -> Dict[int, int]:
    """Histogram of set sizes: size value -> number of sets."""
    histogram: Dict[int, int] = {}
    for set_id in system.set_ids:
        size = system.size(set_id)
        histogram[size] = histogram.get(size, 0) + 1
    return histogram


def identity_nk_sigma(system: SetSystem) -> Dict[str, float]:
    """Check the identity ``m * k_mean == n * sigma_mean``.

    Both sides count the total number of (element, set) incidences; the paper
    uses this identity in the proofs of Theorems 5 and 6.  Returns both sides
    and their absolute difference so tests can assert near-equality.
    """
    stats = compute_statistics(system)
    lhs = stats.num_sets * stats.k_mean
    rhs = stats.num_elements * stats.sigma_mean
    return {"m_times_k_mean": lhs, "n_times_sigma_mean": rhs, "difference": abs(lhs - rhs)}


def weighted_incidence_identity(system: SetSystem) -> Dict[str, float]:
    """Check Eq. (4): ``n * mean(sigma$) = sum_S |S| w(S) <= k_max * w(C)``."""
    stats = compute_statistics(system)
    lhs = stats.num_elements * stats.weighted_load_mean
    middle = sum(system.size(set_id) * system.weight(set_id) for set_id in system.set_ids)
    upper = stats.k_max * stats.total_weight
    return {
        "n_times_weighted_load_mean": lhs,
        "sum_size_times_weight": middle,
        "k_max_times_total_weight": upper,
        "difference": abs(lhs - middle),
        "slack": upper - middle,
    }


def effective_competitive_denominator(stats: InstanceStatistics) -> float:
    """The quantity ``sqrt(mean(sigma*sigma$)/mean(sigma$))`` of Theorem 1.

    Returns 1.0 for degenerate (empty or zero-weight) instances so that the
    resulting bound stays finite.
    """
    if stats.weighted_load_mean <= 0:
        return 1.0
    return math.sqrt(stats.sigma_weighted_product_mean / stats.weighted_load_mean)
