"""The online algorithm protocol for online set packing.

An online algorithm for OSP observes, up front, the identifier, weight and
size of every set, and then processes elements one at a time.  On the arrival
of element ``u`` (with its capacity ``b(u)`` and parent sets ``C(u)``) it must
immediately return a subset ``A ⊆ C(u)`` with ``|A| ≤ b(u)`` — the sets the
element is assigned to.  A set is *completed* when every one of its elements
was assigned to it.

Algorithms are driven either by the simulation engine
(:mod:`repro.core.simulation`) on a fixed :class:`~repro.core.instance.OnlineInstance`
or adaptively by an adversary (:mod:`repro.lowerbounds.deterministic_adversary`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import FrozenSet, Mapping, Optional, Sequence

from repro.core.instance import ElementArrival
from repro.core.set_system import SetId, SetInfo

__all__ = ["OnlineAlgorithm", "StatelessPriorityAlgorithm"]


class OnlineAlgorithm(ABC):
    """Abstract base class for online set packing algorithms.

    Subclasses implement :meth:`start` (optional) and :meth:`decide`.
    The simulation engine guarantees the call sequence
    ``start(set_infos, rng)`` followed by one ``decide(arrival)`` per element,
    in arrival order.
    """

    #: Human-readable name used in reports; subclasses may override.
    name: str = "online-algorithm"

    #: Whether the algorithm uses randomness.  Deterministic algorithms can
    #: be played against the adaptive adversary of Theorem 3.
    is_deterministic: bool = False

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        """Reset internal state for a new instance.

        ``set_infos`` is the up-front public information (weight and size of
        every set).  ``rng`` is the only source of randomness the algorithm
        may use; deterministic algorithms simply ignore it.
        """

    @abstractmethod
    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        """Return the sets (at most ``arrival.capacity``) to assign ``u`` to."""

    def describe(self) -> str:
        """A one-line description for experiment reports."""
        kind = "deterministic" if self.is_deterministic else "randomized"
        return f"{self.name} ({kind})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StatelessPriorityAlgorithm(OnlineAlgorithm):
    """Base class for algorithms that rank parent sets by a static priority.

    Subclasses provide :meth:`priority`; on each arrival the element is
    assigned to the ``b(u)`` parent sets with the highest priority.  Ties are
    broken by set identifier representation, which keeps deterministic
    subclasses fully deterministic.
    """

    def __init__(self) -> None:
        self._set_infos: Mapping[SetId, SetInfo] = {}

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._set_infos = dict(set_infos)

    @property
    def set_infos(self) -> Mapping[SetId, SetInfo]:
        """The up-front set information supplied at :meth:`start`."""
        return self._set_infos

    def priority(self, set_id: SetId) -> float:
        """The (static) priority of a set; higher wins.  Default: 0."""
        return 0.0

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (-self.priority(set_id), repr(set_id)),
        )
        return frozenset(ranked[: arrival.capacity])


def validate_decision(
    arrival: ElementArrival, decision: Sequence[SetId]
) -> Optional[str]:
    """Return an error message if ``decision`` violates the OSP protocol.

    Returns ``None`` when the decision is valid: a duplicate-free subset of
    the arrival's parent sets with size at most the element capacity.
    """
    chosen = list(decision)
    if len(chosen) != len(set(chosen)):
        return "decision contains duplicate set identifiers"
    if len(chosen) > arrival.capacity:
        return (
            f"decision assigns element {arrival.element_id!r} to {len(chosen)} sets "
            f"but its capacity is {arrival.capacity}"
        )
    parent_set = set(arrival.parents)
    for set_id in chosen:
        if set_id not in parent_set:
            return (
                f"decision assigns element {arrival.element_id!r} to set {set_id!r} "
                "which does not contain it"
            )
    return None
