"""The simulation engine: run an online algorithm on an online instance.

The engine feeds arrivals to the algorithm in order, validates every decision
against the OSP protocol, tracks which sets remain *active* (assigned every
element seen so far) and reports the completed sets and their total weight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm, validate_decision
from repro.core.instance import ElementArrival, OnlineInstance
from repro.core.set_system import ElementId, SetId
from repro.exceptions import AlgorithmProtocolError

__all__ = ["StepRecord", "SimulationResult", "simulate", "simulate_many", "expected_benefit"]


@dataclass(frozen=True)
class StepRecord:
    """What happened at one arrival step."""

    step: int
    element_id: ElementId
    capacity: int
    parents: Tuple[SetId, ...]
    assigned: FrozenSet[SetId]

    @property
    def dropped(self) -> FrozenSet[SetId]:
        """Parent sets the element was *not* assigned to (they die here)."""
        return frozenset(self.parents) - self.assigned


@dataclass
class SimulationResult:
    """The outcome of running one algorithm on one instance."""

    algorithm_name: str
    instance_name: str
    completed_sets: FrozenSet[SetId]
    benefit: float
    num_steps: int
    steps: List[StepRecord] = field(default_factory=list)

    @property
    def num_completed(self) -> int:
        """The number of completed sets."""
        return len(self.completed_sets)

    def completion_ratio(self, total_sets: int) -> float:
        """Fraction of all sets that were completed."""
        if total_sets <= 0:
            return 0.0
        return self.num_completed / total_sets

    def __repr__(self) -> str:
        return (
            f"SimulationResult(algorithm={self.algorithm_name!r}, "
            f"completed={self.num_completed}, benefit={self.benefit:.3f})"
        )


def simulate(
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    rng: Optional[random.Random] = None,
    record_steps: bool = False,
    set_infos: Optional[Dict] = None,
) -> SimulationResult:
    """Run ``algorithm`` on ``instance`` and return the result.

    Every decision is validated; a protocol violation raises
    :class:`~repro.exceptions.AlgorithmProtocolError` (the simulation does not
    silently repair bad decisions, so algorithm bugs surface in tests).

    Pass ``record_steps=True`` to retain the full per-step trace (useful for
    debugging and for the example scripts, but memory-heavy on large runs).

    ``set_infos`` lets a caller that simulates the same instance repeatedly
    (e.g. :func:`simulate_many`) build the up-front set information once; it
    must equal ``instance.set_infos()``.
    """
    rng = rng if rng is not None else random.Random()
    system = instance.system
    algorithm.start(set_infos if set_infos is not None else instance.set_infos(), rng)

    # A set is active while every element of it seen so far was assigned to
    # it.  Sets with no elements are trivially completed.
    active: Dict[SetId, bool] = {set_id: True for set_id in system.set_ids}
    remaining: Dict[SetId, int] = {
        set_id: system.size(set_id) for set_id in system.set_ids
    }

    steps: List[StepRecord] = []
    for step, arrival in enumerate(instance.arrivals()):
        decision = frozenset(algorithm.decide(arrival))
        error = validate_decision(arrival, tuple(decision))
        if error is not None:
            raise AlgorithmProtocolError(
                f"algorithm {algorithm.name!r} at step {step}: {error}"
            )
        for set_id in arrival.parents:
            if set_id in decision:
                remaining[set_id] -= 1
            else:
                active[set_id] = False
        if record_steps:
            steps.append(
                StepRecord(
                    step=step,
                    element_id=arrival.element_id,
                    capacity=arrival.capacity,
                    parents=arrival.parents,
                    assigned=decision,
                )
            )

    # Materialize in the deterministic set_ids order and sum the benefit in
    # that same order: float addition is order-sensitive at the ulp level,
    # and a fixed summation order keeps the benefit reproducible across
    # processes and bit-identical to the batch engine's.
    completed_in_order = [
        set_id
        for set_id in system.set_ids
        if active[set_id] and remaining[set_id] == 0
    ]
    completed = frozenset(completed_in_order)
    benefit = sum(system.weight(set_id) for set_id in completed_in_order)
    return SimulationResult(
        algorithm_name=algorithm.name,
        instance_name=instance.name,
        completed_sets=completed,
        benefit=benefit,
        num_steps=instance.num_steps,
        steps=steps,
    )


def simulate_many(
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    trials: int,
    seed: int = 0,
) -> List[SimulationResult]:
    """Run ``trials`` independent simulations with seeds ``seed, seed+1, ...``.

    For deterministic algorithms one trial suffices; the helper still runs the
    requested number so that callers can treat all algorithms uniformly.

    Trial-invariant work is hoisted out of the loop: the up-front set
    information is built once and shared (``algorithm.start`` still runs per
    trial — that reset is what isolates trials from each other, which
    ``tests/test_engine_determinism.py`` verifies).
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    set_infos = instance.set_infos()
    results = []
    for trial in range(trials):
        rng = random.Random(seed + trial)
        # Each trial gets a shallow copy: building the SetInfo objects is the
        # expensive part being hoisted, and a copy keeps the historical
        # guarantee that an algorithm mutating its mapping cannot corrupt
        # later trials.
        results.append(simulate(instance, algorithm, rng, set_infos=dict(set_infos)))
    return results


def expected_benefit(results: Sequence[SimulationResult]) -> float:
    """The empirical mean benefit over a sequence of simulation results.

    Delegates to :func:`repro.core.statistics.statistics_from_benefits` so the
    arithmetic (hence the exact float) matches every other aggregation in the
    package, including the batch engine's ``BatchResult.mean_benefit``.
    """
    from repro.core.statistics import statistics_from_benefits

    mean, _ = statistics_from_benefits([result.benefit for result in results])
    return mean
