"""Core data structures and machinery for online set packing."""

from repro.core.algorithm import OnlineAlgorithm, StatelessPriorityAlgorithm
from repro.core.analysis import (
    RandPrPrediction,
    expected_benefit_closed_form,
    predict_randpr,
    survival_probabilities,
    survival_probability,
)
from repro.core.bounds import (
    BoundReport,
    best_upper_bound,
    bound_report,
    corollary6_upper_bound,
    corollary7_upper_bound,
    theorem1_upper_bound,
    theorem2_lower_bound,
    theorem3_lower_bound,
    theorem4_upper_bound,
    theorem5_upper_bound,
    theorem6_upper_bound,
    trivial_upper_bound,
)
from repro.core.instance import (
    ElementArrival,
    InstanceBuilder,
    OnlineInstance,
    instance_from_bursts,
)
from repro.core.set_system import SetId, ElementId, SetInfo, SetSystem, build_from_element_lists
from repro.core.simulation import (
    SimulationResult,
    StepRecord,
    expected_benefit,
    simulate,
    simulate_many,
)
from repro.core.statistics import (
    InstanceStatistics,
    compute_statistics,
    statistics_from_benefits,
)

# Imported last: the engine modules import repro.core submodules directly,
# so this re-export must come after the core names are bound.
from repro.engine.batch import BatchResult, batch_from_results, simulate_batch
from repro.engine.compile import CompiledInstance, compile_instance

__all__ = [
    "OnlineAlgorithm",
    "StatelessPriorityAlgorithm",
    "RandPrPrediction",
    "expected_benefit_closed_form",
    "predict_randpr",
    "survival_probabilities",
    "survival_probability",
    "BoundReport",
    "best_upper_bound",
    "bound_report",
    "corollary6_upper_bound",
    "corollary7_upper_bound",
    "theorem1_upper_bound",
    "theorem2_lower_bound",
    "theorem3_lower_bound",
    "theorem4_upper_bound",
    "theorem5_upper_bound",
    "theorem6_upper_bound",
    "trivial_upper_bound",
    "ElementArrival",
    "InstanceBuilder",
    "OnlineInstance",
    "instance_from_bursts",
    "SetId",
    "ElementId",
    "SetInfo",
    "SetSystem",
    "build_from_element_lists",
    "SimulationResult",
    "StepRecord",
    "expected_benefit",
    "simulate",
    "simulate_many",
    "InstanceStatistics",
    "compute_statistics",
    "statistics_from_benefits",
    "BatchResult",
    "batch_from_results",
    "simulate_batch",
    "CompiledInstance",
    "compile_instance",
]
