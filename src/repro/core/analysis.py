"""Closed-form analysis of randPr on unit-capacity instances.

Lemma 1 gives the exact survival probability of every set under randPr:
``Pr[S ∈ alg] = w(S) / w(N[S])``.  Because the completion events are
functions of the same priority draw, their expectations (though not their
joint distribution) are available in closed form, which lets the library
compute — without any simulation —

* the exact expected benefit ``E[w(alg)] = Σ_S w(S)² / w(N[S])``,
* per-set survival probabilities,
* the guaranteed benefit lower bounds of Lemma 4 (``w(opt)²/(kmax·w(C))``)
  and Lemma 5 (``w(C)²/(n·mean(σ·σ$))``), and the Theorem 1 guarantee that
  follows from them,
* an exact pairwise-covariance computation for pairs of sets, from which a
  variance upper bound for the benefit follows.

These closed forms are used by the tests to validate the simulator (the
Monte-Carlo estimates must converge to them) and by users who want analytic
predictions for a concrete workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.set_system import SetId, SetSystem
from repro.core.statistics import compute_statistics

__all__ = [
    "survival_probability",
    "survival_probabilities",
    "expected_benefit_closed_form",
    "lemma4_lower_bound",
    "lemma5_lower_bound",
    "theorem1_guarantee",
    "pair_survival_probability",
    "benefit_variance_upper_bound",
    "RandPrPrediction",
    "predict_randpr",
]


def survival_probability(system: SetSystem, set_id: SetId) -> float:
    """``Pr[S ∈ alg]`` for randPr on a unit-capacity instance (Lemma 1).

    Sets of weight zero never win a contested element, so their survival
    probability is zero unless they are isolated (then they complete
    trivially and the probability is one).
    """
    weight = system.weight(set_id)
    neighbourhood_weight = system.neighbourhood_weight(set_id)
    if len(system.open_neighbourhood(set_id)) == 0:
        return 1.0
    if neighbourhood_weight <= 0:
        return 0.0
    return weight / neighbourhood_weight


def survival_probabilities(system: SetSystem) -> Dict[SetId, float]:
    """Survival probabilities of every set (Lemma 1)."""
    return {set_id: survival_probability(system, set_id) for set_id in system.set_ids}


def expected_benefit_closed_form(system: SetSystem) -> float:
    """``E[w(alg)] = Σ_S w(S) · Pr[S ∈ alg]`` for randPr."""
    return sum(
        system.weight(set_id) * survival_probability(system, set_id)
        for set_id in system.set_ids
    )


def lemma4_lower_bound(system: SetSystem, opt_weight: Optional[float] = None) -> float:
    """Lemma 4: ``E[w(alg)] ≥ w(opt)² / (kmax · w(C))``.

    ``opt_weight`` defaults to the total weight of the heaviest feasible
    packing being unknown; in that case the bound is reported with
    ``w(opt) = w(C)`` (the loosest possible optimum), which keeps the bound
    valid but weak.  Pass the true optimum for the tight value.
    """
    stats = compute_statistics(system)
    if stats.num_sets == 0 or stats.k_max == 0:
        return 0.0
    if opt_weight is None:
        opt_weight = stats.total_weight
    return opt_weight ** 2 / (stats.k_max * stats.total_weight)


def lemma5_lower_bound(system: SetSystem) -> float:
    """Lemma 5: ``E[w(alg)] ≥ w(C)² / (n · mean(σ·σ$))``.

    The paper's derivation assumes every set contains at least one element
    (empty sets contribute to ``w(N[S])`` but not to the element-side sum);
    with empty sets present the returned value may exceed the true expected
    benefit and should not be used as a guarantee.
    """
    stats = compute_statistics(system)
    denominator = stats.num_elements * stats.sigma_weighted_product_mean
    if denominator <= 0:
        return stats.total_weight
    return stats.total_weight ** 2 / denominator


def theorem1_guarantee(system: SetSystem, opt_weight: float) -> float:
    """The Theorem 1 benefit guarantee ``w(opt) / (kmax·sqrt(mean(σ·σ$)/mean(σ$)))``."""
    stats = compute_statistics(system)
    if stats.num_sets == 0 or stats.k_max == 0:
        return 0.0
    if stats.weighted_load_mean <= 0:
        return opt_weight
    denominator = stats.k_max * math.sqrt(
        stats.sigma_weighted_product_mean / stats.weighted_load_mean
    )
    return opt_weight / max(denominator, 1.0)


def pair_survival_probability(system: SetSystem, first: SetId, second: SetId) -> float:
    """``Pr[S ∈ alg and T ∈ alg]`` for randPr, for a *disjoint* pair.

    For disjoint sets the two completion events are positively correlated
    through shared neighbours; an exact closed form requires integrating over
    the joint order statistics, so this returns the exact value for the two
    tractable cases and a safe upper bound otherwise:

    * if the closed neighbourhoods are disjoint, the events are independent
      and the probability is the product of the marginals;
    * if the sets intersect, the probability is 0 (they compete for a shared
      element under unit capacity);
    * otherwise the minimum of the marginals is returned (a valid upper
      bound used by :func:`benefit_variance_upper_bound`).
    """
    if first == second:
        return survival_probability(system, first)
    if not system.are_disjoint(first, second):
        return 0.0
    first_neighbourhood = system.closed_neighbourhood(first)
    second_neighbourhood = system.closed_neighbourhood(second)
    p_first = survival_probability(system, first)
    p_second = survival_probability(system, second)
    if not (first_neighbourhood & second_neighbourhood):
        return p_first * p_second
    return min(p_first, p_second)


def benefit_variance_upper_bound(system: SetSystem) -> float:
    """An upper bound on ``Var[w(alg)]`` for randPr.

    Uses ``Var[X] = E[X²] − E[X]²`` with the pairwise upper bounds of
    :func:`pair_survival_probability`; exact when all interactions are either
    direct intersections or full independence.
    """
    expected = expected_benefit_closed_form(system)
    second_moment = 0.0
    set_ids = list(system.set_ids)
    for first in set_ids:
        for second in set_ids:
            joint = pair_survival_probability(system, first, second)
            second_moment += system.weight(first) * system.weight(second) * joint
    return max(second_moment - expected ** 2, 0.0)


@dataclass(frozen=True)
class RandPrPrediction:
    """Everything the closed forms predict about randPr on one instance."""

    expected_benefit: float
    survival: Dict[SetId, float]
    lemma4_bound: float
    lemma5_bound: float
    variance_upper_bound: float

    @property
    def standard_deviation_upper_bound(self) -> float:
        """The square root of the variance upper bound."""
        return math.sqrt(self.variance_upper_bound)


def predict_randpr(system: SetSystem, opt_weight: Optional[float] = None) -> RandPrPrediction:
    """Assemble the full closed-form prediction for randPr on ``system``."""
    return RandPrPrediction(
        expected_benefit=expected_benefit_closed_form(system),
        survival=survival_probabilities(system),
        lemma4_bound=lemma4_lower_bound(system, opt_weight),
        lemma5_bound=lemma5_lower_bound(system),
        variance_upper_bound=benefit_variance_upper_bound(system),
    )
