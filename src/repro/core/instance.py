"""Online instances: a set system plus an element arrival order.

An :class:`OnlineInstance` is what an online set packing algorithm is run
against.  It pairs a :class:`~repro.core.set_system.SetSystem` with an
arrival order over its elements.  Iterating the instance yields
:class:`ElementArrival` records — exactly the information the paper allows
the algorithm to observe at each step: the element identifier, its capacity
``b(u)``, and the names of the sets containing it, ``C(u)``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.set_system import ElementId, SetId, SetInfo, SetSystem
from repro.exceptions import InvalidInstanceError


@dataclass(frozen=True)
class ElementArrival:
    """The information revealed to the algorithm when an element arrives."""

    element_id: ElementId
    capacity: int
    parents: Tuple[SetId, ...]

    @property
    def load(self) -> int:
        """The load ``sigma(u)`` of the arriving element."""
        return len(self.parents)


class OnlineInstance:
    """A set system together with an arrival order over its elements.

    Parameters
    ----------
    system:
        The underlying weighted set system.
    arrival_order:
        A permutation of the system's element identifiers.  If omitted, the
        deterministic order of ``system.element_ids`` is used.
    name:
        Optional human-readable name (used by the experiment harness).
    """

    def __init__(
        self,
        system: SetSystem,
        arrival_order: Optional[Sequence[ElementId]] = None,
        name: str = "",
    ) -> None:
        self._system = system
        self._name = name
        if arrival_order is None:
            arrival_order = system.element_ids
        order = tuple(arrival_order)
        if sorted(order, key=repr) != sorted(system.element_ids, key=repr):
            raise InvalidInstanceError(
                "arrival order must be a permutation of the system's elements"
            )
        self._order: Tuple[ElementId, ...] = order
        # Arrival records are immutable and depend only on the (immutable)
        # system and order, so they are built once and shared by every
        # simulation trial instead of being reconstructed per iteration.
        self._arrival_cache: Optional[Tuple[ElementArrival, ...]] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def system(self) -> SetSystem:
        """The underlying set system."""
        return self._system

    @property
    def name(self) -> str:
        """The human-readable name of this instance."""
        return self._name

    @property
    def arrival_order(self) -> Tuple[ElementId, ...]:
        """The element identifiers in arrival order."""
        return self._order

    @property
    def num_steps(self) -> int:
        """The number of arrival steps (one per element)."""
        return len(self._order)

    def set_infos(self) -> Dict[SetId, SetInfo]:
        """The public up-front information about every set."""
        return self._system.set_infos()

    def arrivals(self) -> Iterator[ElementArrival]:
        """Yield the arrivals in order, as the algorithm would observe them."""
        if self._arrival_cache is None:
            self._arrival_cache = tuple(
                ElementArrival(
                    element_id=element,
                    capacity=self._system.capacity(element),
                    parents=self._system.parents(element),
                )
                for element in self._order
            )
        return iter(self._arrival_cache)

    def __iter__(self) -> Iterator[ElementArrival]:
        return self.arrivals()

    def __len__(self) -> int:
        return self.num_steps

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"OnlineInstance({label.strip()} sets={self._system.num_sets}, "
            f"elements={self._system.num_elements})"
        )

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def shuffled(self, rng: random.Random, name: str = "") -> "OnlineInstance":
        """A copy of this instance with a uniformly random arrival order."""
        order = list(self._order)
        rng.shuffle(order)
        return OnlineInstance(self._system, order, name=name or self._name)

    def with_order(self, order: Sequence[ElementId], name: str = "") -> "OnlineInstance":
        """A copy of this instance with the given arrival order."""
        return OnlineInstance(self._system, order, name=name or self._name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the instance (system and order) to a JSON string.

        Identifiers are converted to strings; round-tripping therefore
        yields string identifiers, which is sufficient for experiment
        reproducibility.
        """
        system = self._system
        payload = {
            "name": self._name,
            "sets": {str(set_id): [str(element) for element in sorted(members, key=repr)]
                     for set_id, members in system.iter_sets()},
            "weights": {str(set_id): system.weight(set_id) for set_id in system.set_ids},
            "capacities": {str(element): system.capacity(element)
                           for element in system.element_ids},
            "arrival_order": [str(element) for element in self._order],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "OnlineInstance":
        """Reconstruct an instance from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(f"invalid instance JSON: {exc}") from exc
        for key in ("sets", "weights", "capacities", "arrival_order"):
            if key not in payload:
                raise InvalidInstanceError(f"instance JSON missing key {key!r}")
        system = SetSystem(
            payload["sets"],
            weights=payload["weights"],
            capacities=payload["capacities"],
        )
        return cls(system, payload["arrival_order"], name=payload.get("name", ""))


class InstanceBuilder:
    """Incrementally build an online instance in arrival order.

    This is the natural constructor for adversarial constructions and for
    network-trace conversions: elements are appended one at a time, each with
    the sets it belongs to, and the arrival order is the append order.
    """

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._element_parents: Dict[ElementId, List[SetId]] = {}
        self._order: List[ElementId] = []
        self._capacities: Dict[ElementId, int] = {}
        self._weights: Dict[SetId, float] = {}
        self._declared_sets: Dict[SetId, None] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def declare_set(self, set_id: SetId, weight: float = 1.0) -> SetId:
        """Declare a set (with its weight) before any of its elements arrive."""
        self._declared_sets.setdefault(set_id, None)
        self._weights[set_id] = float(weight)
        return set_id

    def add_element(
        self,
        parents: Iterable[SetId],
        capacity: int = 1,
        element_id: Optional[ElementId] = None,
    ) -> ElementId:
        """Append an arriving element contained in ``parents``.

        Returns the element identifier (auto-generated as ``e<k>`` when not
        supplied).  Sets referenced here are implicitly declared with weight
        1 unless previously declared.
        """
        if element_id is None:
            element_id = f"e{self._counter}"
            self._counter += 1
        if element_id in self._element_parents:
            raise InvalidInstanceError(f"element {element_id!r} added twice")
        parent_list = list(parents)
        if len(parent_list) != len(set(parent_list)):
            raise InvalidInstanceError(
                f"element {element_id!r} lists a duplicate parent set"
            )
        for set_id in parent_list:
            self._declared_sets.setdefault(set_id, None)
            self._weights.setdefault(set_id, 1.0)
        self._element_parents[element_id] = parent_list
        self._capacities[element_id] = capacity
        self._order.append(element_id)
        return element_id

    @property
    def num_elements(self) -> int:
        """The number of elements appended so far."""
        return len(self._order)

    @property
    def num_sets(self) -> int:
        """The number of sets declared or referenced so far."""
        return len(self._declared_sets)

    def current_size(self, set_id: SetId) -> int:
        """The number of elements appended so far that belong to ``set_id``."""
        return sum(1 for parents in self._element_parents.values() if set_id in parents)

    def build(self) -> OnlineInstance:
        """Finalize the instance."""
        sets: Dict[SetId, List[ElementId]] = {set_id: [] for set_id in self._declared_sets}
        for element, parent_list in self._element_parents.items():
            for set_id in parent_list:
                sets[set_id].append(element)
        system = SetSystem(sets, weights=self._weights, capacities=self._capacities)
        return OnlineInstance(system, self._order, name=self._name)


def instance_from_bursts(
    bursts: Sequence[Mapping[SetId, int]],
    weights: Optional[Mapping[SetId, float]] = None,
    capacities: Optional[Sequence[int]] = None,
    name: str = "",
) -> OnlineInstance:
    """Build an instance from per-time-step bursts of packets.

    This is the direct encoding of the paper's router scenario: time step
    ``t`` becomes one element whose parent sets are the frames that have a
    packet arriving at time ``t``.  ``bursts[t]`` maps frame identifiers to
    the number of packets of that frame arriving in the burst; a frame that
    sends more than one packet in the same time step still contributes a
    single membership (the set abstraction collapses simultaneous packets of
    the same frame, as in the paper's reduction).

    ``capacities[t]`` is the number of packets the link can serve at time
    ``t`` (default: 1 everywhere).
    """
    builder = InstanceBuilder(name=name)
    if weights:
        for set_id, weight in weights.items():
            builder.declare_set(set_id, weight)
    for step, burst in enumerate(bursts):
        frames = [frame for frame, count in burst.items() if count > 0]
        if not frames:
            continue
        capacity = 1 if capacities is None else capacities[step]
        builder.add_element(frames, capacity=capacity, element_id=f"t{step}")
    return builder.build()
