"""Weighted set systems: the basic combinatorial object of online set packing.

A *weighted set system* consists of a universe ``U`` of elements, a family
``C = {S_1, ..., S_m}`` of subsets of ``U``, a non-negative weight ``w(S)``
for every set, and a positive integer capacity ``b(u)`` for every element.

In the networking interpretation of the paper, a set is a multi-packet data
frame, an element is a time step at the bottleneck link, and an element's
capacity is the number of packets the link can serve in that time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import InvalidSetSystemError

SetId = Union[int, str]
ElementId = Union[int, str]


@dataclass(frozen=True)
class SetInfo:
    """The public, up-front information about a set.

    In the online model the algorithm initially knows, for every set, only
    its identifier, its weight and its size (but not its members).
    """

    set_id: SetId
    weight: float
    size: int

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise InvalidSetSystemError(
                f"set {self.set_id!r} has negative weight {self.weight}"
            )
        if self.size < 0:
            raise InvalidSetSystemError(
                f"set {self.set_id!r} has negative size {self.size}"
            )


class SetSystem:
    """An immutable weighted set system with element capacities.

    Parameters
    ----------
    sets:
        Mapping from set identifier to an iterable of the element identifiers
        that the set contains.
    weights:
        Optional mapping from set identifier to a non-negative weight.  Sets
        missing from the mapping (or the whole mapping, if ``None``) default
        to weight ``1.0`` (the unweighted case).
    capacities:
        Optional mapping from element identifier to a positive integer
        capacity ``b(u)``.  Elements missing from the mapping default to
        capacity ``1`` (the unit-capacity case).
    """

    def __init__(
        self,
        sets: Mapping[SetId, Iterable[ElementId]],
        weights: Optional[Mapping[SetId, float]] = None,
        capacities: Optional[Mapping[ElementId, int]] = None,
    ) -> None:
        weights = dict(weights) if weights is not None else {}
        capacities = dict(capacities) if capacities is not None else {}

        self._members: Dict[SetId, FrozenSet[ElementId]] = {}
        self._weights: Dict[SetId, float] = {}
        elements: Dict[ElementId, None] = {}

        for set_id, members in sets.items():
            frozen = frozenset(members)
            self._members[set_id] = frozen
            weight = float(weights.get(set_id, 1.0))
            if weight < 0:
                raise InvalidSetSystemError(
                    f"set {set_id!r} has negative weight {weight}"
                )
            self._weights[set_id] = weight
            for element in frozen:
                elements.setdefault(element, None)

        unknown_weighted = set(weights) - set(self._members)
        if unknown_weighted:
            raise InvalidSetSystemError(
                f"weights given for unknown sets: {sorted(map(repr, unknown_weighted))}"
            )

        self._capacities: Dict[ElementId, int] = {}
        for element in elements:
            capacity = capacities.get(element, 1)
            if not isinstance(capacity, int) or isinstance(capacity, bool):
                raise InvalidSetSystemError(
                    f"element {element!r} has non-integer capacity {capacity!r}"
                )
            if capacity < 1:
                raise InvalidSetSystemError(
                    f"element {element!r} has non-positive capacity {capacity}"
                )
            self._capacities[element] = capacity

        unknown_capacity = set(capacities) - set(self._capacities)
        if unknown_capacity:
            raise InvalidSetSystemError(
                "capacities given for unknown elements: "
                f"{sorted(map(repr, unknown_capacity))}"
            )

        # Inverted index: element -> the sets containing it (C(u)).
        parents: Dict[ElementId, list] = {element: [] for element in self._capacities}
        for set_id, members in self._members.items():
            for element in members:
                parents[element].append(set_id)
        self._parents: Dict[ElementId, Tuple[SetId, ...]] = {
            element: tuple(sorted(ids, key=repr)) for element, ids in parents.items()
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def set_ids(self) -> Tuple[SetId, ...]:
        """All set identifiers, in a deterministic order."""
        return tuple(sorted(self._members, key=repr))

    @property
    def element_ids(self) -> Tuple[ElementId, ...]:
        """All element identifiers, in a deterministic order."""
        return tuple(sorted(self._capacities, key=repr))

    @property
    def num_sets(self) -> int:
        """The number of sets ``m``."""
        return len(self._members)

    @property
    def num_elements(self) -> int:
        """The number of elements ``n``."""
        return len(self._capacities)

    def members(self, set_id: SetId) -> FrozenSet[ElementId]:
        """The elements of set ``set_id``."""
        try:
            return self._members[set_id]
        except KeyError:
            raise InvalidSetSystemError(f"unknown set {set_id!r}") from None

    def weight(self, set_id: SetId) -> float:
        """The weight ``w(S)`` of set ``set_id``."""
        try:
            return self._weights[set_id]
        except KeyError:
            raise InvalidSetSystemError(f"unknown set {set_id!r}") from None

    def size(self, set_id: SetId) -> int:
        """The size ``|S|`` of set ``set_id``."""
        return len(self.members(set_id))

    def capacity(self, element: ElementId) -> int:
        """The capacity ``b(u)`` of element ``element``."""
        try:
            return self._capacities[element]
        except KeyError:
            raise InvalidSetSystemError(f"unknown element {element!r}") from None

    def parents(self, element: ElementId) -> Tuple[SetId, ...]:
        """The sets containing ``element``, i.e. ``C(u)``."""
        try:
            return self._parents[element]
        except KeyError:
            raise InvalidSetSystemError(f"unknown element {element!r}") from None

    def contains(self, set_id: SetId, element: ElementId) -> bool:
        """Whether ``element`` belongs to set ``set_id``."""
        return element in self.members(set_id)

    def set_info(self, set_id: SetId) -> SetInfo:
        """The up-front public information of a set (id, weight, size)."""
        return SetInfo(set_id=set_id, weight=self.weight(set_id), size=self.size(set_id))

    def set_infos(self) -> Dict[SetId, SetInfo]:
        """Public information for every set, keyed by set identifier."""
        return {set_id: self.set_info(set_id) for set_id in self.set_ids}

    def iter_sets(self) -> Iterator[Tuple[SetId, FrozenSet[ElementId]]]:
        """Iterate over ``(set_id, members)`` pairs in deterministic order."""
        for set_id in self.set_ids:
            yield set_id, self._members[set_id]

    # ------------------------------------------------------------------
    # Loads and neighbourhoods
    # ------------------------------------------------------------------
    def load(self, element: ElementId) -> int:
        """The load ``sigma(u) = |C(u)|`` of an element."""
        return len(self.parents(element))

    def weighted_load(self, element: ElementId) -> float:
        """The weighted load ``sigma$(u) = w(C(u))`` of an element."""
        return sum(self._weights[set_id] for set_id in self.parents(element))

    def adjusted_load(self, element: ElementId) -> float:
        """The adjusted load ``nu(u) = sigma(u) / b(u)`` (Definition 1)."""
        return self.load(element) / self.capacity(element)

    def closed_neighbourhood(self, set_id: SetId) -> FrozenSet[SetId]:
        """``N[S]``: all sets intersecting ``S``, including ``S`` itself."""
        members = self.members(set_id)
        neighbours = {set_id}
        for element in members:
            neighbours.update(self._parents[element])
        return frozenset(neighbours)

    def open_neighbourhood(self, set_id: SetId) -> FrozenSet[SetId]:
        """``N(S)``: all sets intersecting ``S``, excluding ``S`` itself."""
        return self.closed_neighbourhood(set_id) - {set_id}

    def neighbourhood_weight(self, set_id: SetId) -> float:
        """``w(N[S])``: the total weight of the closed neighbourhood of ``S``."""
        return sum(self._weights[other] for other in self.closed_neighbourhood(set_id))

    def intersect(self, first: SetId, second: SetId) -> FrozenSet[ElementId]:
        """The elements shared by two sets."""
        return self.members(first) & self.members(second)

    def are_disjoint(self, first: SetId, second: SetId) -> bool:
        """Whether two sets share no element."""
        return not self.intersect(first, second)

    # ------------------------------------------------------------------
    # Aggregates and predicates
    # ------------------------------------------------------------------
    def total_weight(self, set_ids: Optional[Iterable[SetId]] = None) -> float:
        """The total weight ``w(C')`` of a collection (default: all sets)."""
        if set_ids is None:
            return sum(self._weights.values())
        return sum(self.weight(set_id) for set_id in set_ids)

    def is_unweighted(self) -> bool:
        """Whether every set has weight exactly 1."""
        return all(weight == 1.0 for weight in self._weights.values())

    def is_unit_capacity(self) -> bool:
        """Whether every element has capacity exactly 1."""
        return all(capacity == 1 for capacity in self._capacities.values())

    def is_feasible_packing(self, set_ids: Iterable[SetId]) -> bool:
        """Whether a collection of sets respects every element capacity.

        A collection ``A`` is a feasible packing when, for every element
        ``u``, at most ``b(u)`` of the sets in ``A`` contain ``u``.
        """
        chosen = list(set_ids)
        if len(chosen) != len(set(chosen)):
            return False
        usage: Dict[ElementId, int] = {}
        for set_id in chosen:
            for element in self.members(set_id):
                usage[element] = usage.get(element, 0) + 1
                if usage[element] > self._capacities[element]:
                    return False
        return True

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------
    def restricted_to_sets(self, set_ids: Iterable[SetId]) -> "SetSystem":
        """A new set system containing only the given sets.

        Elements that belong to none of the surviving sets are dropped.
        """
        keep = set(set_ids)
        unknown = keep - set(self._members)
        if unknown:
            raise InvalidSetSystemError(
                f"cannot restrict to unknown sets: {sorted(map(repr, unknown))}"
            )
        sets = {set_id: self._members[set_id] for set_id in keep}
        weights = {set_id: self._weights[set_id] for set_id in keep}
        surviving_elements = set()
        for members in sets.values():
            surviving_elements.update(members)
        capacities = {
            element: self._capacities[element] for element in surviving_elements
        }
        return SetSystem(sets, weights=weights, capacities=capacities)

    def reweighted(self, weights: Mapping[SetId, float]) -> "SetSystem":
        """A copy of this system with the given weights overriding existing ones."""
        merged = dict(self._weights)
        merged.update(weights)
        return SetSystem(dict(self._members), weights=merged, capacities=dict(self._capacities))

    def to_dict(self) -> Dict[str, object]:
        """A plain-dictionary description, convenient for serialization."""
        return {
            "sets": {repr(set_id): sorted(map(repr, members))
                     for set_id, members in self._members.items()},
            "weights": {repr(set_id): weight for set_id, weight in self._weights.items()},
            "capacities": {repr(element): capacity
                           for element, capacity in self._capacities.items()},
        }

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, set_id: SetId) -> bool:
        return set_id in self._members

    def __len__(self) -> int:
        return self.num_sets

    def __repr__(self) -> str:
        return (
            f"SetSystem(num_sets={self.num_sets}, num_elements={self.num_elements}, "
            f"unweighted={self.is_unweighted()}, unit_capacity={self.is_unit_capacity()})"
        )


def build_from_element_lists(
    element_parents: Mapping[ElementId, Sequence[SetId]],
    weights: Optional[Mapping[SetId, float]] = None,
    capacities: Optional[Mapping[ElementId, int]] = None,
) -> SetSystem:
    """Build a :class:`SetSystem` from the element-centric view.

    ``element_parents`` maps each element to the list of sets that contain
    it — the form in which OSP inputs naturally arrive (each arriving packet
    announces its frame).  Sets that appear in no element list are not
    representable in this form; add them through the set-centric constructor
    if empty sets are required.
    """
    sets: Dict[SetId, list] = {}
    for element, parent_ids in element_parents.items():
        for set_id in parent_ids:
            sets.setdefault(set_id, []).append(element)
    if weights is not None:
        for set_id in weights:
            sets.setdefault(set_id, [])
    return SetSystem(sets, weights=weights, capacities=capacities)
