"""Closed-form competitive-ratio bounds from the paper.

Every bound is a function of the instance statistics of
:mod:`repro.core.statistics`.  The benchmark harness compares measured
competitive ratios against these values; the property-based tests check the
algebraic relations between them (e.g. the Theorem 1 bound never exceeds the
Corollary 6 bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Union

from repro.core.set_system import SetSystem
from repro.core.statistics import (
    InstanceStatistics,
    compute_statistics,
    effective_competitive_denominator,
)

__all__ = [
    "theorem1_upper_bound",
    "corollary6_upper_bound",
    "theorem4_upper_bound",
    "theorem5_upper_bound",
    "corollary7_upper_bound",
    "theorem6_upper_bound",
    "theorem2_lower_bound",
    "theorem3_lower_bound",
    "trivial_upper_bound",
    "best_upper_bound",
    "BoundReport",
    "bound_report",
]

StatsLike = Union[SetSystem, InstanceStatistics]


def _stats(value: StatsLike) -> InstanceStatistics:
    if isinstance(value, InstanceStatistics):
        return value
    return compute_statistics(value)


def theorem1_upper_bound(value: StatsLike) -> float:
    """Theorem 1: ratio of randPr is at most ``k_max * sqrt(mean(σ·σ$)/mean(σ$))``.

    Stated for unit-capacity instances; the benchmarks apply it only there.
    """
    stats = _stats(value)
    if stats.num_sets == 0:
        return 1.0
    return max(1.0, stats.k_max * effective_competitive_denominator(stats))


def corollary6_upper_bound(value: StatsLike) -> float:
    """Corollary 6: ratio of randPr is at most ``k_max * sqrt(σ_max)``."""
    stats = _stats(value)
    if stats.num_sets == 0:
        return 1.0
    return max(1.0, stats.k_max * math.sqrt(max(stats.sigma_max, 1)))


def trivial_upper_bound(value: StatsLike) -> float:
    """The easy ``k_max * σ_max`` bound noted right after Lemma 1 (unweighted)."""
    stats = _stats(value)
    if stats.num_sets == 0:
        return 1.0
    return max(1.0, stats.k_max * max(stats.sigma_max, 1))


def theorem4_upper_bound(value: StatsLike) -> float:
    """Theorem 4 (variable capacity): ``16e * k_max * sqrt(mean(ν·σ$)/mean(σ$))``."""
    stats = _stats(value)
    if stats.num_sets == 0:
        return 1.0
    if stats.weighted_load_mean <= 0:
        return 1.0
    inner = stats.adjusted_weighted_product_mean / stats.weighted_load_mean
    return max(1.0, 16.0 * math.e * stats.k_max * math.sqrt(max(inner, 0.0)))


def theorem5_upper_bound(value: StatsLike) -> float:
    """Theorem 5 (uniform set size ``k``): ratio at most ``k * mean(σ²)/mean(σ)²``.

    The paper states it as ``E[|alg|] ≥ |opt| * mean(σ)² / (k * mean(σ²))``;
    the returned value is the corresponding upper bound on the ratio.
    Calling this on a non-uniform-size instance raises ``ValueError``.
    """
    stats = _stats(value)
    if not stats.uniform_set_size:
        raise ValueError("Theorem 5 applies only to instances with a uniform set size")
    if stats.num_sets == 0 or stats.sigma_mean <= 0:
        return 1.0
    k = stats.k_max
    return max(1.0, k * stats.sigma_second_moment / (stats.sigma_mean ** 2))


def corollary7_upper_bound(value: StatsLike) -> float:
    """Corollary 7 (uniform size and uniform load): ratio at most ``k``."""
    stats = _stats(value)
    if not stats.uniform_set_size or not stats.uniform_load:
        raise ValueError(
            "Corollary 7 applies only to instances with uniform set size and uniform load"
        )
    return max(1.0, float(stats.k_max))


def theorem6_upper_bound(value: StatsLike) -> float:
    """Theorem 6 (uniform load σ): ratio at most ``k_mean * sqrt(σ)``."""
    stats = _stats(value)
    if not stats.uniform_load:
        raise ValueError("Theorem 6 applies only to instances with a uniform element load")
    if stats.num_sets == 0:
        return 1.0
    return max(1.0, stats.k_mean * math.sqrt(max(stats.sigma_mean, 1.0)))


def theorem2_lower_bound(k_max: float, sigma_max: float) -> float:
    """Theorem 2: no randomized algorithm beats
    ``Ω(k_max * (loglog k_max / log k_max)^2 * sqrt(σ_max))``.

    Returns the expression with constant 1 (the paper hides constants in the
    Ω); meaningful only for ``k_max ≥ 4`` where ``loglog`` is positive.
    """
    if k_max < 4:
        return 1.0
    log_k = math.log(k_max)
    loglog_k = math.log(log_k)
    if loglog_k <= 0:
        return 1.0
    return max(1.0, k_max * (loglog_k / log_k) ** 2 * math.sqrt(max(sigma_max, 1.0)))


def theorem3_lower_bound(sigma_max: int, k_max: int) -> float:
    """Theorem 3: deterministic algorithms have ratio at least ``σ_max^(k_max-1)``."""
    if sigma_max < 1 or k_max < 1:
        return 1.0
    return float(sigma_max) ** (k_max - 1)


def best_upper_bound(value: StatsLike) -> float:
    """The tightest applicable upper bound among Theorems 1/5/6 and Corollaries 6/7.

    Special-case bounds are included only when their preconditions hold; the
    variable-capacity bound of Theorem 4 replaces Theorem 1 when the instance
    is not unit-capacity.
    """
    stats = _stats(value)
    candidates = [corollary6_upper_bound(stats), trivial_upper_bound(stats)]
    if stats.is_unit_capacity:
        candidates.append(theorem1_upper_bound(stats))
    else:
        candidates.append(theorem4_upper_bound(stats))
    if stats.uniform_set_size and stats.is_unweighted and stats.is_unit_capacity:
        candidates.append(theorem5_upper_bound(stats))
    if stats.uniform_load and stats.is_unweighted and stats.is_unit_capacity:
        candidates.append(theorem6_upper_bound(stats))
    if (
        stats.uniform_set_size
        and stats.uniform_load
        and stats.is_unweighted
        and stats.is_unit_capacity
    ):
        candidates.append(corollary7_upper_bound(stats))
    return min(candidates)


@dataclass(frozen=True)
class BoundReport:
    """All bounds applicable to one instance, for experiment reports."""

    theorem1: float
    corollary6: float
    trivial: float
    theorem4: float
    theorem5: float
    corollary7: float
    theorem6: float
    best: float

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain dictionary (NaN marks inapplicable bounds)."""
        return {
            "theorem1": self.theorem1,
            "corollary6": self.corollary6,
            "trivial": self.trivial,
            "theorem4": self.theorem4,
            "theorem5": self.theorem5,
            "corollary7": self.corollary7,
            "theorem6": self.theorem6,
            "best": self.best,
        }


def bound_report(value: StatsLike) -> BoundReport:
    """Compute every bound for an instance; inapplicable ones become NaN."""
    stats = _stats(value)

    def _try(func) -> float:
        try:
            return func(stats)
        except ValueError:
            return math.nan

    return BoundReport(
        theorem1=theorem1_upper_bound(stats),
        corollary6=corollary6_upper_bound(stats),
        trivial=trivial_upper_bound(stats),
        theorem4=theorem4_upper_bound(stats),
        theorem5=_try(theorem5_upper_bound),
        corollary7=_try(corollary7_upper_bound),
        theorem6=_try(theorem6_upper_bound),
        best=best_upper_bound(stats),
    )
