"""The priority distribution R_w used by Algorithm randPr.

The paper (Section 3.1) defines, for any ``w > 0``, the distribution ``R_w``
over ``[0, 1]`` with cumulative distribution function ``Pr[X < x] = x^w``.
For a natural number ``w``, this is the distribution of the maximum of ``w``
independent uniform random variables on the unit interval; ``R_1`` is the
uniform distribution itself.

Sampling uses the inverse-CDF transform: if ``U`` is uniform on ``[0, 1]``
then ``U^(1/w)`` is distributed according to ``R_w``.

The module also provides the *hash-based* deterministic variant discussed in
the paper's distributed-implementation remark: a system-wide hash of the set
identifier replaces the uniform draw, so every server computes the same
priority for the same set without communication.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Union

from repro.core.set_system import SetId
from repro.exceptions import OspError

__all__ = [
    "sample_priority",
    "priority_cdf",
    "priority_pdf",
    "priority_mean",
    "win_probability",
    "hash_unit_interval",
    "hash_priority",
]

_HASH_RESOLUTION_BITS = 64
_HASH_DENOMINATOR = float(1 << _HASH_RESOLUTION_BITS)


def _validate_weight(weight: float) -> float:
    weight = float(weight)
    if not weight > 0:
        raise OspError(f"R_w requires a strictly positive weight, got {weight}")
    if math.isinf(weight) or math.isnan(weight):
        raise OspError(f"R_w requires a finite weight, got {weight}")
    return weight


def sample_priority(weight: float, rng: random.Random) -> float:
    """Draw a priority from ``R_weight`` using the supplied RNG.

    For weight ``w``, the returned value has CDF ``x^w`` on ``[0, 1]``.
    """
    weight = _validate_weight(weight)
    # Avoid u == 0.0, whose (1/w)-th power is 0 for every weight and would
    # make ties between zero-weight-ish sets more likely than the continuous
    # model allows.
    uniform = rng.random()
    while uniform == 0.0:
        uniform = rng.random()
    return uniform ** (1.0 / weight)


def priority_cdf(weight: float, x: float) -> float:
    """``Pr[X < x]`` for ``X ~ R_weight``, clamped to ``[0, 1]``."""
    weight = _validate_weight(weight)
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    return x ** weight


def priority_pdf(weight: float, x: float) -> float:
    """The density ``w * x^(w-1)`` of ``R_weight`` at ``x`` in ``(0, 1)``."""
    weight = _validate_weight(weight)
    if x <= 0.0 or x > 1.0:
        return 0.0
    return weight * x ** (weight - 1.0)


def priority_mean(weight: float) -> float:
    """The expectation ``w / (w + 1)`` of ``R_weight``."""
    weight = _validate_weight(weight)
    return weight / (weight + 1.0)


def win_probability(weight: float, competing_weight: float) -> float:
    """``Pr[X > Y]`` for independent ``X ~ R_weight`` and ``Y ~ R_competing``.

    This is the closed form behind Lemma 1: a set of weight ``w`` beats an
    aggregate competitor of weight ``w'`` with probability ``w / (w + w')``.
    ``competing_weight`` may be zero (no competition), in which case the
    probability is 1.
    """
    weight = _validate_weight(weight)
    competing_weight = float(competing_weight)
    if competing_weight < 0:
        raise OspError(f"competing weight must be non-negative, got {competing_weight}")
    return weight / (weight + competing_weight)


def hash_unit_interval(key: Union[SetId, str, bytes], salt: str = "") -> float:
    """Map an identifier deterministically to a point of ``[0, 1)``.

    Uses SHA-256 of the (salted) identifier truncated to 64 bits; the salt
    plays the role of the system-wide hash function's seed, so different
    salts give (practically) independent priority assignments.
    """
    if isinstance(key, bytes):
        data = key
    else:
        data = repr(key).encode("utf-8")
    digest = hashlib.sha256(salt.encode("utf-8") + b"\x00" + data).digest()
    value = int.from_bytes(digest[:8], "big")
    return value / _HASH_DENOMINATOR


def hash_priority(key: Union[SetId, str, bytes], weight: float, salt: str = "") -> float:
    """A deterministic priority for ``key`` distributed like ``R_weight``.

    Applies the inverse-CDF transform to the hash-derived uniform value.
    Every party that knows the set identifier, its weight and the shared
    salt computes exactly the same priority — which is what makes randPr
    implementable distributively (Section 3.1).
    """
    weight = _validate_weight(weight)
    uniform = hash_unit_interval(key, salt=salt)
    if uniform == 0.0:
        # Extremely unlikely; nudge away from zero to keep priorities distinct.
        uniform = 1.0 / _HASH_DENOMINATOR
    return uniform ** (1.0 / weight)
