"""Partial-completion rewards: the paper's third open problem (Section 5).

In standard OSP a set yields its weight only if *all* of its elements were
assigned to it.  The paper asks what happens "where the set can be gained
even if a few elements are missing".  This module evaluates a simulation
trace under such relaxed reward rules so the extension benchmarks can compare
reward models on the same runs.

Two relaxations are provided:

* *threshold reward*: a set pays its full weight once at least a fraction
  ``theta`` of its elements were assigned to it (``theta = 1`` recovers OSP).
* *proportional reward*: a set pays ``w(S) * (assigned fraction)^gamma``;
  ``gamma`` controls how sharply partial frames lose value (``gamma -> inf``
  approaches the all-or-nothing rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.core.set_system import SetId, SetSystem
from repro.core.simulation import SimulationResult, StepRecord
from repro.exceptions import OspError

__all__ = [
    "assigned_counts",
    "threshold_benefit",
    "proportional_benefit",
    "PartialRewardSummary",
    "evaluate_partial_rewards",
]


def assigned_counts(system: SetSystem, steps: Iterable[StepRecord]) -> Dict[SetId, int]:
    """How many of each set's elements were assigned to it in a recorded trace.

    Requires a simulation run with ``record_steps=True``; raises otherwise
    (an empty trace on a non-empty instance is indistinguishable from a
    missing trace, so the caller must be explicit).
    """
    counts: Dict[SetId, int] = {set_id: 0 for set_id in system.set_ids}
    for record in steps:
        for set_id in record.assigned:
            counts[set_id] = counts.get(set_id, 0) + 1
    return counts


def _completion_fractions(
    system: SetSystem, counts: Mapping[SetId, int]
) -> Dict[SetId, float]:
    fractions: Dict[SetId, float] = {}
    for set_id in system.set_ids:
        size = system.size(set_id)
        assigned = counts.get(set_id, 0)
        if assigned > size:
            raise OspError(
                f"set {set_id!r} has {assigned} assigned elements but size {size}"
            )
        fractions[set_id] = 1.0 if size == 0 else assigned / size
    return fractions


def threshold_benefit(
    system: SetSystem, counts: Mapping[SetId, int], theta: float
) -> float:
    """Total weight of sets whose assigned fraction is at least ``theta``."""
    if not 0.0 < theta <= 1.0:
        raise OspError(f"theta must be in (0, 1], got {theta}")
    fractions = _completion_fractions(system, counts)
    return sum(
        system.weight(set_id)
        for set_id, fraction in fractions.items()
        if fraction >= theta - 1e-12
    )


def proportional_benefit(
    system: SetSystem, counts: Mapping[SetId, int], gamma: float = 1.0
) -> float:
    """Sum of ``w(S) * fraction^gamma`` over all sets."""
    if gamma <= 0:
        raise OspError(f"gamma must be positive, got {gamma}")
    fractions = _completion_fractions(system, counts)
    return sum(
        system.weight(set_id) * (fraction ** gamma)
        for set_id, fraction in fractions.items()
    )


@dataclass(frozen=True)
class PartialRewardSummary:
    """Benefit of one simulation run under the different reward models."""

    strict_benefit: float
    threshold_benefits: Dict[float, float]
    proportional_benefit: float

    def as_dict(self) -> Dict[str, float]:
        summary = {"strict": self.strict_benefit, "proportional": self.proportional_benefit}
        for theta, benefit in sorted(self.threshold_benefits.items()):
            summary[f"threshold_{theta:.2f}"] = benefit
        return summary


def evaluate_partial_rewards(
    system: SetSystem,
    result: SimulationResult,
    thetas: Iterable[float] = (0.5, 0.75, 0.9, 1.0),
    gamma: float = 2.0,
) -> PartialRewardSummary:
    """Evaluate a recorded simulation result under all partial-reward models.

    ``result`` must have been produced with ``record_steps=True``; the strict
    (all-or-nothing) benefit is re-derived from the trace and cross-checked
    against the result's own benefit as a consistency guard.
    """
    if result.num_steps > 0 and not result.steps:
        raise OspError(
            "partial-reward evaluation needs a step trace; rerun the simulation "
            "with record_steps=True"
        )
    counts = assigned_counts(system, result.steps)
    strict = threshold_benefit(system, counts, 1.0)
    if abs(strict - result.benefit) > 1e-9:
        raise OspError(
            "trace-derived strict benefit disagrees with the simulation result "
            f"({strict} vs {result.benefit}); the trace does not match the system"
        )
    thresholds = {float(theta): threshold_benefit(system, counts, float(theta))
                  for theta in thetas}
    return PartialRewardSummary(
        strict_benefit=strict,
        threshold_benefits=thresholds,
        proportional_benefit=proportional_benefit(system, counts, gamma=gamma),
    )
