"""The randomized lower-bound construction of Lemma 9 (and Figure 1).

The construction produces a *distribution* over unweighted, unit-capacity OSP
instances with ``ell^4`` sets, all of size ``Θ(ell^2)``, maximum element load
``Θ(ell^2)``, for which

* every instance admits a feasible solution (the *planted* collection ``S``)
  of ``ell^3`` pairwise-disjoint sets, while
* every deterministic online algorithm completes only ``O((log ell / loglog
  ell)^2)`` sets in expectation over the distribution.

The four stages (Figure 1):

I.   The ``ell^4`` sets are split into ``ell^2`` subcollections of ``ell^2``
     sets; each subcollection is placed on an ``(ell, ell)``-gadget under a
     *random* bijection and the gadget is applied without its row lines.
II.  The subcollections are concatenated, ``ell`` at a time (with their rows
     independently permuted at random), into ``ell`` matrices of shape
     ``ell × ell^2``; each receives an ``(ell, ell^2)``-gadget without rows.
III. One row ``u_t`` of each Stage II matrix is chosen at random; the union
     of those rows is the planted collection ``S`` (``ell^3`` sets).  The
     remaining sets get a full ``(ell^2 - ell, ell^2)``-gadget.
IV.  Every set of ``S`` receives ``ell^2`` fresh load-one elements.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.instance import InstanceBuilder, OnlineInstance
from repro.core.set_system import SetId
from repro.exceptions import ConstructionError
from repro.lowerbounds.finite_field import is_prime_power
from repro.lowerbounds.gadget import Gadget, apply_gadget

__all__ = [
    "Lemma9Instance",
    "build_lemma9_instance",
    "stored_lemma9_instance",
    "theoretical_profile",
]


@dataclass(frozen=True)
class Lemma9Instance:
    """One sample from the Lemma 9 distribution, with its planted solution.

    >>> import random
    >>> sample = build_lemma9_instance(2, random.Random(0))
    >>> sample.ell, sample.planted_benefit              # ell, ell ** 3
    (2, 8)
    >>> sample.stage_element_counts["stage1_elements"]  # ell ** 4
    16
    """

    instance: OnlineInstance
    planted_solution: FrozenSet[SetId]
    ell: int
    stage_element_counts: Dict[str, int]

    @property
    def planted_benefit(self) -> int:
        """The value of the planted solution (``ell^3`` by construction)."""
        return len(self.planted_solution)


def theoretical_profile(ell: int) -> Dict[str, float]:
    """The parameter profile Lemma 9 promises for order ``ell``.

    Returns the predicted number of sets, planted optimum, set sizes and the
    exact per-stage element counts; used by tests and the Figure 1 benchmark.

    >>> profile = theoretical_profile(2)
    >>> profile["num_sets"], profile["planted_opt"], profile["sigma_max"]
    (16, 8, 4)
    """
    return {
        "num_sets": ell ** 4,
        "planted_opt": ell ** 3,
        "set_size_planted": ell + 2 * ell ** 2,
        "set_size_other": ell + 2 * ell ** 2 + 1,
        "stage1_elements": ell ** 4,
        "stage2_elements": ell ** 5,
        "stage3_slope_elements": ell ** 4,
        "stage3_row_elements": ell ** 2 - ell,
        "stage4_elements": ell ** 5,
        "sigma_max": ell ** 2,
    }


def build_lemma9_instance(ell: int, rng: random.Random) -> Lemma9Instance:
    """Draw one instance from the Lemma 9 distribution.

    ``ell`` must be a prime power of at least 2 (the gadget orders ``ell`` and
    ``ell^2`` must both be prime powers; the latter follows from the former).

    >>> import random
    >>> sample = build_lemma9_instance(2, random.Random(0))
    >>> sample.instance.system.num_sets                 # ell ** 4
    16
    >>> len(sample.planted_solution)                    # ell ** 3, disjoint
    8
    >>> sample.instance.system.is_feasible_packing(sample.planted_solution)
    True
    >>> build_lemma9_instance(6, random.Random(0))      # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.exceptions.ConstructionError: ell must be a prime power...
    """
    if ell < 2:
        raise ConstructionError(f"the construction needs ell >= 2, got {ell}")
    if not is_prime_power(ell):
        raise ConstructionError(f"ell must be a prime power, got {ell}")

    num_sets = ell ** 4
    set_ids: List[SetId] = [f"S{index}" for index in range(num_sets)]

    builder = InstanceBuilder(name=f"lemma9(ell={ell})")
    for set_id in set_ids:
        builder.declare_set(set_id, 1.0)

    counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Stage I: ell^2 subcollections of ell^2 sets, each on an (ell, ell)
    # gadget without rows, under a uniformly random bijection.
    # ------------------------------------------------------------------
    stage1_gadget = Gadget(ell, ell)
    stage1_position: Dict[SetId, Tuple[int, int, int]] = {}  # set -> (z, row, col)
    stage1_elements = 0
    subcollections: List[List[SetId]] = [
        set_ids[z * ell * ell:(z + 1) * ell * ell] for z in range(ell * ell)
    ]
    for z, subcollection in enumerate(subcollections):
        shuffled = list(subcollection)
        rng.shuffle(shuffled)
        placement: Dict[Tuple[int, int], SetId] = {}
        for index, set_id in enumerate(shuffled):
            row, column = divmod(index, ell)
            placement[(row, column)] = set_id
            stage1_position[set_id] = (z, row, column)
        summary = apply_gadget(
            builder, stage1_gadget, placement, include_rows=False,
            element_prefix=f"I.{z}",
        )
        stage1_elements += summary["slope_elements"]
    counts["stage1_elements"] = stage1_elements

    # ------------------------------------------------------------------
    # Stage II: concatenate ell Stage I subcollections (rows independently
    # permuted) into an ell x ell^2 matrix; (ell, ell^2) gadget without rows.
    # ------------------------------------------------------------------
    stage2_gadget = Gadget(ell, ell * ell)
    stage2_position: Dict[SetId, Tuple[int, int, int]] = {}  # set -> (t, row, col)
    row_permutations: List[List[int]] = []
    for z in range(ell * ell):
        permutation = list(range(ell))
        rng.shuffle(permutation)
        row_permutations.append(permutation)

    stage2_elements = 0
    for t in range(ell):
        placement = {}
        for local in range(ell):
            z = t * ell + local
            permutation = row_permutations[z]
            for set_id in subcollections[z]:
                _, row, column = stage1_position[set_id]
                new_row = permutation[row]
                new_column = column + ell * local
                placement[(new_row, new_column)] = set_id
                stage2_position[set_id] = (t, new_row, new_column)
        summary = apply_gadget(
            builder, stage2_gadget, placement, include_rows=False,
            element_prefix=f"II.{t}",
        )
        stage2_elements += summary["slope_elements"]
    counts["stage2_elements"] = stage2_elements

    # ------------------------------------------------------------------
    # Stage III: plant one row per Stage II matrix; the rest get a full
    # (ell^2 - ell, ell^2) gadget (slope lines and row lines).
    # ------------------------------------------------------------------
    chosen_rows = [rng.randrange(ell) for _ in range(ell)]
    planted: List[SetId] = [
        set_id
        for set_id, (t, row, _column) in stage2_position.items()
        if row == chosen_rows[t]
    ]
    planted_set = frozenset(planted)
    others = [set_id for set_id in set_ids if set_id not in planted_set]

    stage3_rows = ell * ell - ell
    stage3_gadget = Gadget(stage3_rows, ell * ell)
    placement = {}
    for index, set_id in enumerate(sorted(others, key=repr)):
        row, column = divmod(index, ell * ell)
        placement[(row, column)] = set_id
    summary = apply_gadget(
        builder, stage3_gadget, placement, include_rows=True, element_prefix="III",
    )
    counts["stage3_slope_elements"] = summary["slope_elements"]
    counts["stage3_row_elements"] = summary["row_elements"]

    # ------------------------------------------------------------------
    # Stage IV: ell^2 load-one elements for every planted set.
    # ------------------------------------------------------------------
    stage4_elements = 0
    for set_id in sorted(planted_set, key=repr):
        for extra in range(ell * ell):
            builder.add_element([set_id], capacity=1, element_id=f"IV.{set_id}.{extra}")
            stage4_elements += 1
    counts["stage4_elements"] = stage4_elements

    instance = builder.build()
    if not instance.system.is_feasible_packing(planted_set):  # pragma: no cover
        raise ConstructionError("internal error: planted solution is not feasible")

    return Lemma9Instance(
        instance=instance,
        planted_solution=planted_set,
        ell=ell,
        stage_element_counts=counts,
    )


def stored_lemma9_instance(ell: int, seed: int, store=None) -> Lemma9Instance:
    """``build_lemma9_instance(ell, random.Random(seed))``, store-memoized.

    The construction is a pure function of ``(ell, seed)`` — the only RNG it
    consumes is the one seeded here — and at larger orders it dominates the
    Theorem 2 benchmark's setup time, so the sample is memoized in the
    persistent solution store (:mod:`repro.experiments.store`) under the key
    ``lemma9|ell=<ell>|seed=<seed>``.  ``store`` follows the ``run_sweep``
    convention: a :class:`~repro.experiments.store.SolutionStore` (or a
    path), ``None`` to use the ``OSP_STORE``-named default, or ``False`` to
    force memoization off.  Without a store this is exactly
    :func:`build_lemma9_instance`; a warm hit returns the pickled sample,
    byte-for-byte the one the cold call computed.

    >>> import os, random, tempfile
    >>> path = os.path.join(tempfile.mkdtemp(), "constructions.sqlite")
    >>> cold = stored_lemma9_instance(2, seed=7, store=path)
    >>> cold.planted_solution == build_lemma9_instance(2, random.Random(7)).planted_solution
    True
    >>> warm = stored_lemma9_instance(2, seed=7, store=path)   # answered from disk
    >>> warm.planted_solution == cold.planted_solution
    True
    >>> from repro.experiments.store import store_for_path
    >>> store_for_path(path).stats()["construction_hits"]
    1
    >>> store_for_path(path).close()
    """
    # Imported lazily: repro.lowerbounds is a core-layer package and must
    # stay importable without the experiments layer (and the experiments
    # package imports instances from core, so a top-level import could
    # become circular as the layers grow).
    from repro.experiments.store import active_store, store_for_path

    if store is None:
        backing = active_store()
    elif store is False:
        backing = None
    elif isinstance(store, (str, os.PathLike)):
        backing = store_for_path(store)
    else:
        backing = store

    # Normalize once and use the normalized values for BOTH the key and the
    # construction: keying on int(seed) while seeding with the raw value
    # would let stored_lemma9_instance(2, 1.5) poison the (2, 1) entry.
    ell = int(ell)
    seed = int(seed)
    key = f"lemma9|ell={ell}|seed={seed}"
    if backing is not None:
        cached = backing.get_construction(key)
        if cached is not None:
            return cached
    sample = build_lemma9_instance(ell, random.Random(seed))
    if backing is not None:
        backing.put_construction(key, sample)
    return sample
