"""Finite fields GF(q) for prime powers q.

The (M, N)-gadget of Section 4.2.1 is built from the lines of an affine plane
over a finite field of order ``N``.  Since the randomized lower-bound
construction needs orders that are proper prime powers (e.g. ``N = ell^2``
with ``ell = 2`` gives ``N = 4 = 2^2``), prime fields alone do not suffice;
this module implements GF(p^m) via polynomial arithmetic modulo an
irreducible polynomial found by exhaustive search (field orders in this
library are small, so the search is instantaneous).

Field elements are exposed as integer indices ``0 .. q-1``; index 0 is the
additive identity and index 1 the multiplicative identity.  The index of a
non-prime-field element encodes its coefficient vector in base ``p``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import ConstructionError

__all__ = ["is_prime", "factor_prime_power", "is_prime_power", "FiniteField"]


def is_prime(value: int) -> bool:
    """Deterministic primality check (trial division; inputs here are small).

    >>> [value for value in range(12) if is_prime(value)]
    [2, 3, 5, 7, 11]
    """
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def factor_prime_power(value: int) -> Tuple[int, int]:
    """Write ``value`` as ``p^m`` with ``p`` prime; raise if impossible.

    >>> factor_prime_power(8)
    (2, 3)
    >>> factor_prime_power(12)                 # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.exceptions.ConstructionError: 12 is not a prime power...
    """
    if value < 2:
        raise ConstructionError(f"{value} is not a prime power")
    for p in range(2, value + 1):
        if value % p == 0:
            if not is_prime(p):
                raise ConstructionError(f"{value} is not a prime power")
            exponent = 0
            remaining = value
            while remaining % p == 0:
                remaining //= p
                exponent += 1
            if remaining != 1:
                raise ConstructionError(f"{value} is not a prime power")
            return p, exponent
    raise ConstructionError(f"{value} is not a prime power")


def is_prime_power(value: int) -> bool:
    """Whether ``value`` is a prime power ``p^m`` with ``m >= 1``.

    >>> [q for q in range(2, 17) if is_prime_power(q)]
    [2, 3, 4, 5, 7, 8, 9, 11, 13, 16]
    """
    try:
        factor_prime_power(value)
    except ConstructionError:
        return False
    return True


Polynomial = Tuple[int, ...]  # coefficients, lowest degree first, over GF(p)


def _trim(poly: List[int]) -> Polynomial:
    while poly and poly[-1] == 0:
        poly.pop()
    return tuple(poly)


def _poly_add(a: Polynomial, b: Polynomial, p: int) -> Polynomial:
    length = max(len(a), len(b))
    result = [0] * length
    for index in range(length):
        value = 0
        if index < len(a):
            value += a[index]
        if index < len(b):
            value += b[index]
        result[index] = value % p
    return _trim(result)


def _poly_mul(a: Polynomial, b: Polynomial, p: int) -> Polynomial:
    if not a or not b:
        return ()
    result = [0] * (len(a) + len(b) - 1)
    for i, coeff_a in enumerate(a):
        if coeff_a == 0:
            continue
        for j, coeff_b in enumerate(b):
            result[i + j] = (result[i + j] + coeff_a * coeff_b) % p
    return _trim(result)


def _poly_mod(a: Polynomial, modulus: Polynomial, p: int) -> Polynomial:
    """Remainder of ``a`` divided by ``modulus`` over GF(p)."""
    remainder = list(a)
    degree_mod = len(modulus) - 1
    lead_inverse = pow(modulus[-1], p - 2, p)
    while len(remainder) - 1 >= degree_mod and remainder:
        degree_diff = len(remainder) - 1 - degree_mod
        factor = (remainder[-1] * lead_inverse) % p
        for index, coefficient in enumerate(modulus):
            position = index + degree_diff
            remainder[position] = (remainder[position] - factor * coefficient) % p
        remainder = list(_trim(remainder))
        if not remainder:
            break
    return _trim(list(remainder))


def _find_irreducible(p: int, degree: int) -> Polynomial:
    """Exhaustively find a monic irreducible polynomial of the given degree."""
    if degree == 1:
        return (0, 1)

    def candidates():
        # Monic polynomials of the target degree, lower coefficients counted up.
        total = p ** degree
        for counter in range(total):
            coefficients = []
            value = counter
            for _ in range(degree):
                coefficients.append(value % p)
                value //= p
            coefficients.append(1)
            yield tuple(coefficients)

    def is_irreducible(poly: Polynomial) -> bool:
        # A polynomial of degree d <= 3 is irreducible iff it has no roots;
        # for higher degrees, also rule out factors of degree >= 2 by trial
        # division against all monic polynomials of degree <= d // 2.
        for root in range(p):
            value = 0
            for coefficient in reversed(poly):
                value = (value * root + coefficient) % p
            if value == 0:
                return False
        half = degree // 2
        for factor_degree in range(2, half + 1):
            for counter in range(p ** factor_degree):
                coefficients = []
                value = counter
                for _ in range(factor_degree):
                    coefficients.append(value % p)
                    value //= p
                coefficients.append(1)
                divisor = tuple(coefficients)
                if not _poly_mod(poly, divisor, p):
                    return False
        return True

    for candidate in candidates():
        if is_irreducible(candidate):
            return candidate
    raise ConstructionError(
        f"no irreducible polynomial of degree {degree} over GF({p}) found"
    )  # pragma: no cover - mathematically impossible


class FiniteField:
    """The finite field GF(q) for a prime power ``q``.

    Elements are integer indices ``0 .. q-1``.  For the prime case the index
    *is* the residue; in the extension case index ``i`` encodes the
    coefficient vector of the element in base ``p`` (lowest degree first), so
    indices 0..p-1 form the prime subfield.

    >>> field = FiniteField(4)                 # GF(2^2), not Z/4Z
    >>> field.characteristic, field.degree
    (2, 2)
    >>> field.add(2, 3), field.mul(2, 3)       # polynomial arithmetic mod 2
    (1, 1)
    >>> all(field.mul(a, field.inverse(a)) == 1 for a in field.elements() if a)
    True
    """

    def __init__(self, order: int) -> None:
        self._order = order
        self._p, self._m = factor_prime_power(order)
        if self._m == 1:
            self._modulus: Polynomial = ()
        else:
            self._modulus = _find_irreducible(self._p, self._m)
        self._mul_cache: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The number of field elements ``q``."""
        return self._order

    @property
    def characteristic(self) -> int:
        """The prime ``p`` with ``q = p^m``."""
        return self._p

    @property
    def degree(self) -> int:
        """The extension degree ``m`` with ``q = p^m``."""
        return self._m

    def elements(self) -> List[int]:
        """All element indices, ``0 .. q-1``."""
        return list(range(self._order))

    # ------------------------------------------------------------------
    def _to_poly(self, index: int) -> Polynomial:
        if not 0 <= index < self._order:
            raise ConstructionError(
                f"element index {index} out of range for GF({self._order})"
            )
        coefficients = []
        value = index
        for _ in range(self._m):
            coefficients.append(value % self._p)
            value //= self._p
        return _trim(coefficients)

    def _from_poly(self, poly: Polynomial) -> int:
        index = 0
        for coefficient in reversed(poly):
            index = index * self._p + coefficient
        return index

    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition of two element indices."""
        if self._m == 1:
            return (a + b) % self._p
        return self._from_poly(_poly_add(self._to_poly(a), self._to_poly(b), self._p))

    def neg(self, a: int) -> int:
        """Additive inverse."""
        if self._m == 1:
            return (-a) % self._p
        poly = self._to_poly(a)
        negated = tuple((-coefficient) % self._p for coefficient in poly)
        return self._from_poly(_trim(list(negated)))

    def sub(self, a: int, b: int) -> int:
        """Field subtraction ``a - b``."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication of two element indices (cached)."""
        key = (a, b) if a <= b else (b, a)
        cached = self._mul_cache.get(key)
        if cached is not None:
            return cached
        if self._m == 1:
            result = (a * b) % self._p
        else:
            product = _poly_mul(self._to_poly(a), self._to_poly(b), self._p)
            result = self._from_poly(_poly_mod(product, self._modulus, self._p))
        self._mul_cache[key] = result
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a non-zero element."""
        if a == 0:
            raise ConstructionError("zero has no multiplicative inverse")
        # q is tiny here, so exponentiation by q-2 via repeated squaring on
        # indices is plenty fast and avoids an extended-Euclid implementation
        # over polynomials.
        result = 1
        base = a
        exponent = self._order - 2
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b`` for non-zero ``b``."""
        return self.mul(a, self.inverse(b))

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation with non-negative integer exponent."""
        if exponent < 0:
            raise ConstructionError("negative exponents are not supported")
        result = 1
        base = a
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def __repr__(self) -> str:
        return f"FiniteField(order={self._order})"
