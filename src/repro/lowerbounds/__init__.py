"""Lower-bound constructions: finite fields, gadgets, adversaries."""

from repro.lowerbounds.deterministic_adversary import (
    AdversaryResult,
    run_deterministic_adversary,
)
from repro.lowerbounds.finite_field import (
    FiniteField,
    factor_prime_power,
    is_prime,
    is_prime_power,
)
from repro.lowerbounds.gadget import Gadget, apply_gadget
from repro.lowerbounds.randomized_construction import (
    Lemma9Instance,
    build_lemma9_instance,
    stored_lemma9_instance,
    theoretical_profile,
)

__all__ = [
    "AdversaryResult",
    "run_deterministic_adversary",
    "FiniteField",
    "factor_prime_power",
    "is_prime",
    "is_prime_power",
    "Gadget",
    "apply_gadget",
    "Lemma9Instance",
    "build_lemma9_instance",
    "stored_lemma9_instance",
    "theoretical_profile",
]
