"""The adaptive adversary of Theorem 3.

For any *deterministic* online algorithm, the adversary builds (adaptively,
as a function of the algorithm's own decisions) an unweighted, unit-capacity
instance with ``σ^k`` sets of size exactly ``k`` on which the algorithm
completes at most one set while an optimal solution completes about
``σ^(k-1)`` sets — giving the ``σ_max^(k_max - 1)`` lower bound.

The construction proceeds in ``k`` phases.  Before phase ``i`` the sets that
are still *active* (the algorithm assigned them every element so far) are
partitioned into groups of ``σ``; each group receives one fresh element
contained exactly in its sets, so at most one set per group survives the
phase.  After the phases, every set is padded to size ``k`` with load-one
elements.  An optimal solution assigns each phase-1 element to a set the
algorithm abandoned, and those abandoned sets never reappear in later
phases, so they can all be completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.algorithm import OnlineAlgorithm, validate_decision
from repro.core.instance import ElementArrival, InstanceBuilder, OnlineInstance
from repro.core.set_system import SetId, SetInfo
from repro.exceptions import AlgorithmProtocolError, ConstructionError

__all__ = ["AdversaryResult", "run_deterministic_adversary"]


@dataclass(frozen=True)
class AdversaryResult:
    """The outcome of playing the Theorem 3 adversary against an algorithm.

    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> result = run_deterministic_adversary(GreedyWeightAlgorithm(), sigma=3, k=2)
    >>> result.theoretical_lower_bound       # sigma ** (k - 1)
    3
    >>> result.ratio >= result.theoretical_lower_bound
    True
    """

    instance: OnlineInstance
    algorithm_name: str
    sigma: int
    k: int
    algorithm_completed: FrozenSet[SetId]
    opt_solution: FrozenSet[SetId]

    @property
    def algorithm_benefit(self) -> int:
        """The number of sets the algorithm completed (unweighted benefit)."""
        return len(self.algorithm_completed)

    @property
    def opt_benefit(self) -> int:
        """The number of sets in the constructed optimal solution."""
        return len(self.opt_solution)

    @property
    def ratio(self) -> float:
        """The achieved competitive ratio ``opt / alg``, degenerate cases explicit.

        ``opt / alg`` only means something when the adversary produced a
        non-empty OPT certificate:

        * ``opt == 0`` — the constructed certificate is empty, so the round
          says nothing about the algorithm; the ratio is the neutral ``1.0``
          (never ``0/alg = 0``, which would absurdly claim the algorithm beat
          the offline optimum — the true ratio is always at least 1).  This
          also covers the ``0/0`` case without raising ``ZeroDivisionError``.
        * ``alg == 0`` with ``opt > 0`` — the algorithm was starved while OPT
          completed sets: ``inf``.

        >>> degenerate = AdversaryResult(
        ...     instance=None, algorithm_name="x", sigma=2, k=2,
        ...     algorithm_completed=frozenset(), opt_solution=frozenset())
        >>> degenerate.ratio        # 0/0: neutral, not ZeroDivisionError
        1.0
        >>> starved = AdversaryResult(
        ...     instance=None, algorithm_name="x", sigma=2, k=2,
        ...     algorithm_completed=frozenset(), opt_solution=frozenset({"S0"}))
        >>> starved.ratio
        inf
        """
        if self.opt_benefit == 0:
            return 1.0
        if self.algorithm_benefit == 0:
            return float("inf")
        return self.opt_benefit / self.algorithm_benefit

    @property
    def theoretical_lower_bound(self) -> int:
        """The paper's bound ``σ^(k-1)`` for these parameters."""
        return self.sigma ** (self.k - 1)


def _chunk(values: List[SetId], size: int) -> List[List[SetId]]:
    return [values[start:start + size] for start in range(0, len(values), size)]


def run_deterministic_adversary(
    algorithm: OnlineAlgorithm,
    sigma: int,
    k: int,
    set_prefix: str = "S",
) -> AdversaryResult:
    """Play the Theorem 3 adversary against a deterministic algorithm.

    Parameters
    ----------
    algorithm:
        The algorithm under attack.  It must declare ``is_deterministic``;
        attacking a randomized algorithm is rejected because the adaptive
        construction is only meaningful against deterministic decisions.
    sigma:
        The maximum element load (``σ ≥ 2``); also the group size per phase.
    k:
        The common set size (``k ≥ 1``); also the number of phases.

    Returns the constructed instance, what the algorithm completed on it, and
    a feasible optimal solution of size at least the number of phase-1 groups.

    >>> from repro.algorithms import FirstListedAlgorithm
    >>> result = run_deterministic_adversary(FirstListedAlgorithm(), sigma=2, k=2)
    >>> result.instance.system.num_sets      # sigma ** k sets of size k
    4
    >>> result.algorithm_benefit <= 1        # the adversary starves the algorithm
    True
    >>> result.opt_benefit                   # one abandoned set per phase-1 group
    2
    >>> from repro.algorithms import RandPrAlgorithm
    >>> run_deterministic_adversary(RandPrAlgorithm(), 2, 2)  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.exceptions.ConstructionError: the Theorem 3 adversary applies only...
    """
    if not algorithm.is_deterministic:
        raise ConstructionError(
            "the Theorem 3 adversary applies only to deterministic algorithms; "
            f"{algorithm.name!r} declares itself randomized"
        )
    if sigma < 2:
        raise ConstructionError(f"the construction needs sigma >= 2, got {sigma}")
    if k < 1:
        raise ConstructionError(f"the construction needs k >= 1, got {k}")

    num_sets = sigma ** k
    set_ids: List[SetId] = [f"{set_prefix}{index}" for index in range(num_sets)]
    set_infos = {
        set_id: SetInfo(set_id=set_id, weight=1.0, size=k) for set_id in set_ids
    }

    # The adversary never relies on randomness; the RNG handed to the
    # algorithm is a fixed-seed one purely to satisfy the interface.
    import random as _random

    algorithm.start(set_infos, _random.Random(0))

    builder = InstanceBuilder(name=f"theorem3-adversary(sigma={sigma},k={k})")
    for set_id in set_ids:
        builder.declare_set(set_id, 1.0)

    active: Dict[SetId, bool] = {set_id: True for set_id in set_ids}
    elements_in_set: Dict[SetId, int] = {set_id: 0 for set_id in set_ids}
    assigned_to_set: Dict[SetId, int] = {set_id: 0 for set_id in set_ids}

    def feed(parents: Tuple[SetId, ...], element_id: str) -> FrozenSet[SetId]:
        arrival = ElementArrival(element_id=element_id, capacity=1, parents=parents)
        decision = frozenset(algorithm.decide(arrival))
        error = validate_decision(arrival, tuple(decision))
        if error is not None:
            raise AlgorithmProtocolError(
                f"algorithm {algorithm.name!r} violated the protocol: {error}"
            )
        builder.add_element(list(parents), capacity=1, element_id=element_id)
        for set_id in parents:
            elements_in_set[set_id] += 1
            if set_id in decision:
                assigned_to_set[set_id] += 1
            else:
                active[set_id] = False
        return decision

    # ------------------------------------------------------------------
    # Phases 1..k: split the active sets into groups of sigma.
    # ------------------------------------------------------------------
    phase1_groups: List[Tuple[List[SetId], FrozenSet[SetId]]] = []
    for phase in range(1, k + 1):
        active_sets = [set_id for set_id in set_ids if active[set_id]]
        groups = _chunk(active_sets, sigma)
        for group_index, group in enumerate(groups):
            element_id = f"p{phase}.{group_index}"
            decision = feed(tuple(group), element_id)
            if phase == 1:
                phase1_groups.append((group, decision))

    # ------------------------------------------------------------------
    # Padding: complete every set to size k with load-one elements.
    # ------------------------------------------------------------------
    for set_id in set_ids:
        missing = k - elements_in_set[set_id]
        for pad_index in range(missing):
            element_id = f"pad.{set_id}.{pad_index}"
            feed((set_id,), element_id)

    instance = builder.build()

    algorithm_completed = frozenset(
        set_id
        for set_id in set_ids
        if active[set_id] and assigned_to_set[set_id] == elements_in_set[set_id] == k
    )

    # ------------------------------------------------------------------
    # The optimal solution: one abandoned set per phase-1 group.
    # ------------------------------------------------------------------
    opt_sets: List[SetId] = []
    for group, decision in phase1_groups:
        candidates = [set_id for set_id in group if set_id not in decision]
        if candidates:
            opt_sets.append(candidates[0])
        elif group:
            # The algorithm assigned the element to its only parent (can only
            # happen for a ragged final group of size <= capacity); that set
            # is then the surviving one and OPT can simply use it as well
            # provided it never clashes later -- skip it to stay conservative.
            continue
    opt_solution = frozenset(opt_sets)
    if not instance.system.is_feasible_packing(opt_solution):  # pragma: no cover
        raise ConstructionError("internal error: constructed OPT is not feasible")

    return AdversaryResult(
        instance=instance,
        algorithm_name=algorithm.name,
        sigma=sigma,
        k=k,
        algorithm_completed=algorithm_completed,
        opt_solution=opt_solution,
    )
