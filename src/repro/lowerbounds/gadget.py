"""The (M, N)-gadget of Section 4.2.1: an affine-plane-like design.

An (M, N)-gadget (``N`` a prime power, ``M ≤ N``) consists of ``M * N`` items
identified with pairs ``(i, j)`` of a row ``i ∈ F_M`` (``F_M`` a fixed
``M``-element subset of the field ``F`` of order ``N``) and a column
``j ∈ F``.  Its lines are

* the slope lines ``L_{a,b} = {(i, a*i + b) : i ∈ F_M}`` for ``a, b ∈ F``, and
* the row lines ``L_{∞,c} = {c} × F`` for ``c ∈ F_M``.

In the OSP lower bound, the items represent sets and the lines represent
elements: *applying* a gadget to a collection of ``M * N`` sets under a
bijection onto the items introduces one new element per line, contained in
exactly the sets placed on that line.  Lemma 8 summarizes the resulting
loads, set sizes and intersection structure; the tests check those
properties directly on this implementation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.instance import InstanceBuilder
from repro.core.set_system import SetId
from repro.exceptions import ConstructionError
from repro.lowerbounds.finite_field import FiniteField, is_prime_power

__all__ = ["Gadget", "apply_gadget"]

Item = Tuple[int, int]


class Gadget:
    """The combinatorial (M, N)-gadget.

    Rows are the field-element indices ``0 .. M-1`` (a canonical choice of the
    subset ``F_M``); columns are ``0 .. N-1``.

    >>> gadget = Gadget(2, 3)
    >>> gadget.num_items
    6
    >>> gadget.slope_line(1, 2)        # {(i, 1*i + 2) : i in F_2} over GF(3)
    ((0, 2), (1, 0))
    >>> gadget.row_line(0)
    ((0, 0), (0, 1), (0, 2))
    >>> len(gadget.lines_through((1, 1)))  # one per slope, plus the row line
    4
    """

    def __init__(self, num_rows: int, num_columns: int) -> None:
        if num_rows < 1:
            raise ConstructionError(f"gadget needs at least one row, got {num_rows}")
        if num_rows > num_columns:
            raise ConstructionError(
                f"gadget requires M <= N, got M={num_rows}, N={num_columns}"
            )
        if not is_prime_power(num_columns):
            raise ConstructionError(
                f"gadget order N must be a prime power, got N={num_columns}"
            )
        self._m = num_rows
        self._n = num_columns
        self._field = FiniteField(num_columns)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """``M`` — the number of rows (and the load of every slope line)."""
        return self._m

    @property
    def num_columns(self) -> int:
        """``N`` — the field order (and the load of every row line)."""
        return self._n

    @property
    def field(self) -> FiniteField:
        """The underlying finite field of order ``N``."""
        return self._field

    @property
    def num_items(self) -> int:
        """``M * N`` — the number of items (sets placed on the gadget)."""
        return self._m * self._n

    def items(self) -> List[Item]:
        """All items ``(row, column)`` in row-major order."""
        return [(row, column) for row in range(self._m) for column in range(self._n)]

    # ------------------------------------------------------------------
    def slope_line(self, a: int, b: int) -> Tuple[Item, ...]:
        """The line ``L_{a,b} = {(i, a*i + b) : i ∈ F_M}``."""
        if not 0 <= a < self._n or not 0 <= b < self._n:
            raise ConstructionError(
                f"line parameters must be field elements of GF({self._n}), got ({a}, {b})"
            )
        return tuple(
            (row, self._field.add(self._field.mul(a, row), b)) for row in range(self._m)
        )

    def row_line(self, c: int) -> Tuple[Item, ...]:
        """The line ``L_{∞,c} = {c} × F``."""
        if not 0 <= c < self._m:
            raise ConstructionError(
                f"row line index must be a row of the gadget, got {c}"
            )
        return tuple((c, column) for column in range(self._n))

    def slope_lines(self) -> Iterator[Tuple[int, int, Tuple[Item, ...]]]:
        """All slope lines, as ``(a, b, items)`` triples."""
        for a in range(self._n):
            for b in range(self._n):
                yield a, b, self.slope_line(a, b)

    def row_lines(self) -> Iterator[Tuple[int, Tuple[Item, ...]]]:
        """All row lines, as ``(c, items)`` pairs."""
        for c in range(self._m):
            yield c, self.row_line(c)

    # ------------------------------------------------------------------
    def lines_through(self, item: Item) -> List[Tuple[Item, ...]]:
        """Every line (slope and row) containing ``item`` (Proposition 2)."""
        row, column = item
        lines: List[Tuple[Item, ...]] = []
        for a in range(self._n):
            # Proposition 2: for each slope a there is exactly one b with
            # (row, column) on L_{a,b}, namely b = column - a*row.
            b = self._field.sub(column, self._field.mul(a, row))
            lines.append(self.slope_line(a, b))
        lines.append(self.row_line(row))
        return lines

    def common_slope_lines(self, first: Item, second: Item) -> List[Tuple[int, int]]:
        """The slope lines containing both items (Proposition 1, first case)."""
        result = []
        for a in range(self._n):
            b = self._field.sub(first[1], self._field.mul(a, first[0]))
            if self._field.add(self._field.mul(a, second[0]), b) == second[1]:
                result.append((a, b))
        return result

    def __repr__(self) -> str:
        return f"Gadget(M={self._m}, N={self._n})"


def apply_gadget(
    builder: InstanceBuilder,
    gadget: Gadget,
    placement: Mapping[Item, SetId],
    include_rows: bool = True,
    element_prefix: str = "g",
    capacity: int = 1,
) -> Dict[str, int]:
    """Apply a gadget to a collection of sets placed on its items.

    ``placement`` must map *every* item of the gadget to a distinct set
    identifier (the bijection ``mu`` of the paper).  Elements are appended to
    the ``builder`` in the order prescribed by the paper: all slope lines (in
    ``a``-major order), then — unless ``include_rows`` is False — the row
    lines.  Returns a small summary of what was added (for logging and
    tests).

    >>> from repro.core.instance import InstanceBuilder
    >>> builder = InstanceBuilder(name="demo")
    >>> gadget = Gadget(2, 2)
    >>> placement = {item: f"S{index}" for index, item in enumerate(gadget.items())}
    >>> for set_id in placement.values():
    ...     _ = builder.declare_set(set_id, 1.0)
    >>> apply_gadget(builder, gadget, placement) == {
    ...     "slope_elements": 4, "row_elements": 2, "elements_per_set": 3}
    True
    >>> builder.build().system.num_sets
    4
    """
    expected_items = set(gadget.items())
    provided_items = set(placement)
    if provided_items != expected_items:
        missing = expected_items - provided_items
        extra = provided_items - expected_items
        raise ConstructionError(
            "placement must cover exactly the gadget items; "
            f"missing={sorted(missing)}, unexpected={sorted(extra)}"
        )
    set_ids = list(placement.values())
    if len(set_ids) != len(set(set_ids)):
        raise ConstructionError("placement must be a bijection: duplicate set identifier")

    slope_elements = 0
    for a, b, items in gadget.slope_lines():
        parents = [placement[item] for item in items]
        builder.add_element(
            parents,
            capacity=capacity,
            element_id=f"{element_prefix}:L{a},{b}",
        )
        slope_elements += 1

    row_elements = 0
    if include_rows:
        for c, items in gadget.row_lines():
            parents = [placement[item] for item in items]
            builder.add_element(
                parents,
                capacity=capacity,
                element_id=f"{element_prefix}:Linf,{c}",
            )
            row_elements += 1

    return {
        "slope_elements": slope_elements,
        "row_elements": row_elements,
        "elements_per_set": gadget.num_columns + (1 if include_rows else 0),
    }
