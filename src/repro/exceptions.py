"""Exception types used across the OSP reproduction library."""


class OspError(Exception):
    """Base class for all errors raised by this library."""


class InvalidSetSystemError(OspError):
    """Raised when a set system description is inconsistent.

    Examples: a set references an element that does not exist, a weight is
    negative, or an element capacity is not a positive integer.
    """


class InvalidInstanceError(OspError):
    """Raised when an online instance (arrival order) is inconsistent.

    Examples: the arrival order is not a permutation of the elements of the
    underlying set system, or an arrival references an unknown element.
    """


class AlgorithmProtocolError(OspError):
    """Raised when an online algorithm violates the OSP protocol.

    The protocol requires that on the arrival of element ``u`` the algorithm
    returns a subset of the announced parent sets ``C(u)`` of size at most the
    element capacity ``b(u)``.
    """


class SolverError(OspError):
    """Raised when an offline solver cannot produce a solution."""


class UnsupportedAlgorithmError(OspError):
    """Raised when the batch engine is asked to run an algorithm it cannot.

    The vectorized engine (:mod:`repro.engine`) supports priority-driven
    algorithms whose decisions it can replay as array operations.  Algorithms
    with per-arrival randomness or arbitrary state must run on the reference
    simulator (:func:`repro.core.simulation.simulate`).
    """


class FrontierRegressionError(OspError):
    """Raised when a fresh battle frontier is worse than the golden fixture.

    Carries one line per regressed grid cell (see
    :func:`repro.battles.match.check_frontiers`); a deliberate behaviour
    change is acknowledged by regenerating the fixture with
    ``python -m repro.battles --smoke --write-golden``.
    """


class MeasurementFailedError(OspError):
    """Raised when a resilient measurement exhausts its retry budget.

    The measurement entry points (trial chunks, suite fan-outs) cannot
    quarantine a failed unit the way a sweep can — dropping a trial chunk
    would change the benefit sequence — so when every attempt of a unit
    fails under a :class:`repro.experiments.resilience.RetryPolicy`, the
    whole measurement fails with this error.  ``failures`` carries the
    structured :class:`repro.experiments.resilience.FailureReport` records
    (the runner CLI renders them as its JSON failure summary).
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class StoreFileError(OspError):
    """Raised when a store file cannot be used as-is.

    The read-only store entry points (:func:`repro.experiments.store.merge_stores`,
    the ``inspect``/``vacuum``/``merge`` CLI verbs) *refuse* rather than
    repair: a missing path, an unreadable file, or a format-version mismatch
    raises this error and leaves the file untouched — never quarantined,
    never overwritten.  The maintenance CLI converts it to a nonzero exit.
    """


class ConstructionError(OspError):
    """Raised when a lower-bound construction receives invalid parameters.

    Examples: a gadget order that is not a prime power, or ``M > N``.
    """
