"""Matches: the full algorithm × escalator battle grid, run deterministically.

:func:`run_match` plays every algorithm against every escalator, fanning the
battles out over a process pool exactly like the sweep orchestrator fans out
its units: battles are self-contained picklable tasks, mapped in submission
order through :func:`~repro.experiments.parallel.map_ordered`, so the grid
is **bit-identical at any worker count** and with the store off, cold or
warm (``tests/test_battles.py`` enforces both axes).  The store parameter is
shipped to workers as a *path*; each process opens its own connection.

The module also owns the **golden-frontier regression check**: a committed
fixture (:data:`GOLDEN_FRONTIERS_PATH`) records the expected empirical
frontier of each algorithm under the smoke configuration, and
:func:`compare_frontiers` reports every way a freshly battled frontier is
*worse* — a higher worst ratio at any size, a size no longer reached, a
battle that disappeared.  Improvements never trip the check; regenerate the
fixture with ``python -m repro.battles --smoke --write-golden`` after a
deliberate behaviour change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import GreedyWeightAlgorithm, RandPrAlgorithm
from repro.battles.battle import Battle, BattleResult, Frontier
from repro.battles.escalators import (
    AdversarialBurstEscalator,
    DeterministicAdversaryEscalator,
    GadgetEscalator,
    Lemma9Escalator,
)
from repro.exceptions import FrontierRegressionError
from repro.experiments.competitive_ratio import validate_engine
from repro.experiments.parallel import map_ordered, resolve_workers
from repro.experiments.resilience import FailureReport, RetryPolicy, map_resilient
from repro.experiments.report import format_table
from repro.experiments.store import store_path_from_env

__all__ = [
    "GOLDEN_FRONTIERS_PATH",
    "MatchResult",
    "check_frontiers",
    "compare_frontiers",
    "load_frontiers",
    "run_match",
    "run_smoke_match",
    "save_frontiers",
    "smoke_algorithms",
    "smoke_escalators",
    "SMOKE_SEED",
    "SMOKE_TRIALS",
]

#: The committed golden-frontier fixture (regenerate via ``--write-golden``).
GOLDEN_FRONTIERS_PATH = os.path.join(os.path.dirname(__file__), "golden_frontiers.json")

#: The smoke match's measurement parameters (shared by CI and the fixture).
SMOKE_TRIALS = 8
SMOKE_SEED = 2010


@dataclass(frozen=True)
class MatchResult:
    """Every battle of one match, in algorithm-major grid order.

    >>> result = run_smoke_match(store=False, max_rounds=1)
    >>> len(result.battles)                  # 2 algorithms x 4 escalators
    8
    >>> result.battles[0].algorithm_name, result.battles[0].escalator_name
    ('randPr', 'lemma9')
    >>> result.battle_for("randPr", "theorem3-adversary").stop_reason
    'not-applicable'
    >>> result.table().splitlines()[1].split()[:4]
    ['algorithm', 'escalator', 'rounds', 'stop']

    ``failures`` is empty unless the match ran under a
    :class:`~repro.experiments.resilience.RetryPolicy` and some grid cells
    exhausted their retry budget; those battles are then absent from
    ``battles`` and described by their
    :class:`~repro.experiments.resilience.FailureReport` instead.

    >>> result.failures
    ()
    """

    battles: Tuple[BattleResult, ...]
    failures: Tuple[FailureReport, ...] = ()

    @property
    def frontiers(self) -> Tuple[Frontier, ...]:
        """The empirical frontier of every battle, in grid order."""
        return tuple(battle.frontier for battle in self.battles)

    def battle_for(self, algorithm_name: str, escalator_name: str) -> BattleResult:
        """The battle of one grid cell (raises ``KeyError`` if absent)."""
        for battle in self.battles:
            if (
                battle.algorithm_name == algorithm_name
                and battle.escalator_name == escalator_name
            ):
                return battle
        raise KeyError(f"no battle for ({algorithm_name!r}, {escalator_name!r})")

    def table(self) -> str:
        """The match as an aligned plain-text table, one row per battle."""
        rows = []
        for battle in self.battles:
            last = battle.rounds[-1] if battle.rounds else None
            rows.append(
                {
                    "algorithm": battle.algorithm_name,
                    "escalator": battle.escalator_name,
                    "rounds": len(battle.rounds),
                    "stop": battle.stop_reason,
                    "worst_ratio": round(battle.worst_ratio, 4),
                    "last_level": last.label if last is not None else "-",
                    "last_bound": round(last.bound, 4) if last is not None else "-",
                }
            )
        return format_table(rows, title="battle match")


def _run_battle_task(task) -> BattleResult:
    """Run one battle (top level so process-pool workers can pickle it)."""
    algorithm, escalator, trials, seed, max_rounds, engine, opt_method, store = task
    return Battle(
        algorithm,
        escalator,
        trials=trials,
        seed=seed,
        max_rounds=max_rounds,
        engine=engine,
        opt_method=opt_method,
        store=store,
    ).run()


def run_match(
    algorithms: Sequence,
    escalators: Sequence,
    trials: int = 16,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    engine: str = "auto",
    opt_method: str = "auto",
    workers: "int | str" = 1,
    store=None,
    policy: Optional[RetryPolicy] = None,
) -> MatchResult:
    """Battle every algorithm against every escalator.

    The grid is algorithm-major (all escalators of the first algorithm, then
    the second, …) and the result tuple is aligned with it regardless of
    which worker finished first.  ``store`` follows the harness vocabulary
    (``None`` = the ``OSP_STORE`` default, ``False`` = off, or a path /
    :class:`~repro.experiments.store.SolutionStore`); workers receive the
    resolved *path* and open their own connections.  Like ``engine`` and
    ``workers``, the store only moves wall-clock time — the battles are
    bit-identical either way.

    ``policy`` supervises the grid with
    :func:`~repro.experiments.resilience.map_resilient`: crashed workers are
    replaced (only the lost battles re-run), transient failures retry with
    deterministic backoff, and a cell that exhausts its budget lands in
    ``MatchResult.failures`` while the rest of the grid completes.  Battles
    are pure functions of their task tuples, so a retried battle reproduces
    the fault-free bits.

    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> from repro.battles.escalators import GadgetEscalator
    >>> result = run_match([GreedyWeightAlgorithm()],
    ...                    [GadgetEscalator(orders=((2, 2), (2, 3)))],
    ...                    trials=4, seed=0, store=False)
    >>> [(f.algorithm_name, f.escalator_name) for f in result.frontiers]
    [('greedy-weight', 'full-gadget')]
    """
    validate_engine(engine)
    resolve_workers(workers)
    if store is None:
        store_path = store_path_from_env()
    elif store is False:
        store_path = False
    elif isinstance(store, (str, os.PathLike)):
        store_path = str(store)
    else:
        store_path = store.path
    if store_path is None:
        store_path = False
    tasks = [
        (algorithm, escalator, trials, seed, max_rounds, engine, opt_method, store_path)
        for algorithm in algorithms
        for escalator in escalators
    ]
    if policy is not None:
        labels = [
            f"{algorithm.name} vs {escalator.name}"
            for algorithm in algorithms
            for escalator in escalators
        ]
        outcome = map_resilient(
            _run_battle_task, tasks, workers=workers, policy=policy, labels=labels
        )
        return MatchResult(
            battles=tuple(
                battle for battle in outcome.results if battle is not None
            ),
            failures=tuple(outcome.failures),
        )
    results = map_ordered(_run_battle_task, tasks, workers=workers)
    return MatchResult(battles=tuple(results))


def compare_frontiers(
    fresh: Sequence[Frontier],
    golden: Sequence[Frontier],
    rel_tol: float = 1e-6,
) -> List[str]:
    """Every way ``fresh`` is *worse* than ``golden``, as human-readable lines.

    A regression is: a golden battle with no fresh counterpart, a golden
    frontier size the fresh battle no longer reaches (its escalation stopped
    earlier), or a fresh worst-ratio at some size exceeding the golden one
    by more than ``rel_tol`` (relative).  Fresh battles or sizes *absent*
    from the fixture, and ratios that improved, are never regressions —
    the check is one-sided so fixtures only need regenerating when
    behaviour genuinely degrades (or the configuration changes).

    >>> a = Frontier.from_dict({"algorithm": "x", "escalator": "e",
    ...     "stop_reason": "levels-exhausted",
    ...     "points": [{"level": 0, "label": "l0", "num_sets": 4,
    ...                 "ratio": 2.0, "bound": 9.0}]})
    >>> compare_frontiers([a], [a])
    []
    >>> worse = Frontier.from_dict({"algorithm": "x", "escalator": "e",
    ...     "stop_reason": "levels-exhausted",
    ...     "points": [{"level": 0, "label": "l0", "num_sets": 4,
    ...                 "ratio": 3.0, "bound": 9.0}]})
    >>> compare_frontiers([worse], [a])
    ['x vs e at num_sets=4: ratio regressed 2.0 -> 3.0']
    """
    fresh_by_cell: Dict[Tuple[str, str], Frontier] = {
        (frontier.algorithm_name, frontier.escalator_name): frontier
        for frontier in fresh
    }
    regressions: List[str] = []
    for expected in golden:
        cell = (expected.algorithm_name, expected.escalator_name)
        actual = fresh_by_cell.get(cell)
        if actual is None:
            regressions.append(
                f"{cell[0]} vs {cell[1]}: battle missing from the fresh match"
            )
            continue
        actual_by_size = {point.num_sets: point for point in actual.points}
        for point in expected.points:
            fresh_point = actual_by_size.get(point.num_sets)
            if fresh_point is None:
                regressions.append(
                    f"{cell[0]} vs {cell[1]}: no longer reaches "
                    f"num_sets={point.num_sets} (golden ratio {point.ratio})"
                )
                continue
            limit = point.ratio * (1.0 + rel_tol)
            if fresh_point.ratio > limit:
                regressions.append(
                    f"{cell[0]} vs {cell[1]} at num_sets={point.num_sets}: "
                    f"ratio regressed {point.ratio} -> {fresh_point.ratio}"
                )
    return regressions


def check_frontiers(
    fresh: Sequence[Frontier],
    golden: Sequence[Frontier],
    rel_tol: float = 1e-6,
) -> None:
    """Raise :class:`~repro.exceptions.FrontierRegressionError` on regression.

    The exception message carries every :func:`compare_frontiers` line, so a
    failing CI run names each regressed cell at once.

    >>> check_frontiers([], [])             # no golden battles: nothing to check
    >>> golden = Frontier.from_dict({"algorithm": "x", "escalator": "e",
    ...     "stop_reason": "levels-exhausted", "points": []})
    >>> check_frontiers([], [golden])       # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.exceptions.FrontierRegressionError: 1 frontier regression(s):...
    """
    regressions = compare_frontiers(fresh, golden, rel_tol=rel_tol)
    if regressions:
        raise FrontierRegressionError(
            f"{len(regressions)} frontier regression(s):\n"
            + "\n".join(f"  - {line}" for line in regressions)
        )


def save_frontiers(
    frontiers: Sequence[Frontier],
    path: str,
    config: Optional[Dict[str, object]] = None,
) -> None:
    """Write frontiers (plus the producing configuration) as a JSON fixture.

    >>> import tempfile
    >>> fixture = os.path.join(tempfile.mkdtemp(), "golden.json")
    >>> save_frontiers([], fixture, config={"trials": 8})
    >>> load_frontiers(fixture)
    []
    """
    document = {
        "format": 1,
        "config": dict(config or {}),
        "frontiers": [frontier.as_dict() for frontier in frontiers],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_frontiers(path: str) -> List[Frontier]:
    """Read a :func:`save_frontiers` fixture back into :class:`Frontier` records.

    >>> frontiers = load_frontiers(GOLDEN_FRONTIERS_PATH)   # committed fixture
    >>> any(f.algorithm_name == "randPr" for f in frontiers)
    True
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return [Frontier.from_dict(data) for data in document["frontiers"]]


def smoke_algorithms() -> list:
    """The two smoke-match combatants: randPr and the deterministic baseline.

    >>> [algorithm.name for algorithm in smoke_algorithms()]
    ['randPr', 'greedy-weight']
    """
    return [RandPrAlgorithm(), GreedyWeightAlgorithm()]


def smoke_escalators() -> list:
    """The small escalation ladders the smoke match (and fixture) use.

    Chosen to finish in CI-smoke time while still exercising every battle
    path: a frontier-chasing lower-bound family (Lemma 9), two upper-bound
    families (gadget, bursts) and the adaptive Theorem 3 adversary.

    >>> [escalator.name for escalator in smoke_escalators()]
    ['lemma9', 'full-gadget', 'adversarial-burst', 'theorem3-adversary']
    """
    return [
        Lemma9Escalator(ells=(2, 3)),
        GadgetEscalator(orders=((2, 2), (2, 3), (3, 4))),
        AdversarialBurstEscalator(levels=((2, 2, 2), (3, 2, 3), (4, 3, 3))),
        DeterministicAdversaryEscalator(params=((2, 2), (2, 3), (3, 2))),
    ]


def run_smoke_match(
    workers: int = 1,
    store=False,
    engine: str = "auto",
    max_rounds: Optional[int] = None,
) -> MatchResult:
    """The fixed small match CI runs and the golden fixture records.

    >>> result = run_smoke_match(max_rounds=1)
    >>> sorted({battle.algorithm_name for battle in result.battles})
    ['greedy-weight', 'randPr']
    """
    return run_match(
        smoke_algorithms(),
        smoke_escalators(),
        trials=SMOKE_TRIALS,
        seed=SMOKE_SEED,
        max_rounds=max_rounds,
        engine=engine,
        workers=workers,
        store=store,
    )
