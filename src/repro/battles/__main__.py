"""Command line entry point: ``python -m repro.battles``.

Runs a battle match (the full default suites, or the fixed ``--smoke`` grid
CI uses), prints the per-battle table, optionally persists frontier rounds
to the solution store, and checks the resulting frontiers against the
committed golden fixture — exiting non-zero when any algorithm's frontier
regressed.  ``--write-golden`` regenerates the fixture after a deliberate
behaviour change.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.algorithms import default_algorithm_suite
from repro.battles.match import (
    GOLDEN_FRONTIERS_PATH,
    compare_frontiers,
    load_frontiers,
    run_match,
    run_smoke_match,
    save_frontiers,
    SMOKE_SEED,
    SMOKE_TRIALS,
)
from repro.battles.escalators import default_escalator_suite
from repro.experiments.competitive_ratio import ENGINE_CHOICES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.battles",
        description="Battle every algorithm against the escalating adversary "
        "constructions and check the empirical frontiers for regressions.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fixed small CI grid (randPr and greedy-weight vs the "
        "smoke escalators) and check it against the committed golden fixture",
    )
    parser.add_argument("--trials", type=int, default=SMOKE_TRIALS)
    parser.add_argument("--seed", type=int, default=SMOKE_SEED)
    parser.add_argument("--max-rounds", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--engine", choices=ENGINE_CHOICES, default="auto")
    parser.add_argument(
        "--store",
        default=None,
        help="solution-store file for frontier rounds (default: the OSP_STORE "
        "environment variable; pass 'off' to disable persistence)",
    )
    parser.add_argument(
        "--write-golden",
        nargs="?",
        const=GOLDEN_FRONTIERS_PATH,
        default=None,
        metavar="PATH",
        help="write the match's frontiers as the golden fixture "
        "(default path: the committed fixture) instead of checking",
    )
    parser.add_argument(
        "--check-golden",
        default=None,
        metavar="PATH",
        help="fixture to check against (default: the committed fixture when "
        "running --smoke, otherwise no check)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also print the frontiers as JSON on stdout",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the process exit code.

    ``0`` on success, ``1`` on a frontier regression.

    >>> main(["--smoke", "--max-rounds", "1", "--store", "off",
    ...       "--check-golden", "off"])    # doctest: +ELLIPSIS
    battle match
    algorithm  escalator  ...
    0
    """
    options = _build_parser().parse_args(list(argv) if argv is not None else None)
    store = False if options.store == "off" else options.store
    if options.smoke:
        result = run_smoke_match(
            workers=options.workers,
            store=store,
            engine=options.engine,
            max_rounds=options.max_rounds,
        )
    else:
        result = run_match(
            default_algorithm_suite(),
            default_escalator_suite(),
            trials=options.trials,
            seed=options.seed,
            max_rounds=options.max_rounds,
            engine=options.engine,
            workers=options.workers,
            store=store,
        )
    print(result.table())
    frontiers = result.frontiers
    if options.json:
        print(json.dumps([frontier.as_dict() for frontier in frontiers], indent=2))

    if options.write_golden is not None:
        config = {
            "smoke": options.smoke,
            "trials": options.trials if not options.smoke else SMOKE_TRIALS,
            "seed": options.seed if not options.smoke else SMOKE_SEED,
            "max_rounds": options.max_rounds,
        }
        save_frontiers(frontiers, options.write_golden, config=config)
        print(f"wrote golden fixture: {options.write_golden}")
        return 0

    fixture = options.check_golden
    if fixture is None and options.smoke:
        fixture = GOLDEN_FRONTIERS_PATH
    if fixture is not None and fixture != "off":
        regressions = compare_frontiers(frontiers, load_frontiers(fixture))
        if regressions:
            print(f"FRONTIER REGRESSIONS ({len(regressions)}):", file=sys.stderr)
            for line in regressions:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print(f"frontier check passed against {fixture}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
