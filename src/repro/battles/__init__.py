"""Algorithm-vs-adversary battles with stored empirical frontiers.

The battle harness pits every online algorithm against the paper's
adversarial constructions in iterated, *escalating* rounds — growing the
instance order until the measured competitive ratio crosses the applicable
theorem bound or the escalation ladder runs out — and records each
algorithm's empirical frontier (its worst measured ratio at every instance
size) in the persistent solution store and against a committed golden
fixture.  ``python -m repro.battles --smoke`` is the CI entry point; see
``docs/BATTLES.md`` for the design and the escalator contract.

Layering: :mod:`repro.battles.battle` owns the round/frontier data model and
the single-battle escalation loop, :mod:`repro.battles.escalators` the
pluggable adversary ladders over :mod:`repro.lowerbounds` and
:mod:`repro.workloads`, and :mod:`repro.battles.match` the algorithm ×
escalator grid, the golden fixture and the regression check.

>>> from repro.algorithms import GreedyWeightAlgorithm
>>> from repro.battles import Battle, GadgetEscalator
>>> result = Battle(GreedyWeightAlgorithm(),
...                 GadgetEscalator(orders=((2, 2), (2, 3))),
...                 trials=4, seed=0, store=False).run()
>>> result.frontier.points[0].num_sets
4
"""

from repro.battles.battle import (
    Battle,
    BattleResult,
    BattleRound,
    Frontier,
    FrontierPoint,
    battle_key,
    battle_ratio,
    resolve_battle_store,
    round_seed,
)
from repro.battles.escalators import (
    AdversarialBurstEscalator,
    DeterministicAdversaryEscalator,
    EscalationArena,
    GadgetEscalator,
    InstanceEscalator,
    Lemma9Escalator,
    TDesignEscalator,
    default_escalator_suite,
)
from repro.battles.match import (
    GOLDEN_FRONTIERS_PATH,
    SMOKE_SEED,
    SMOKE_TRIALS,
    MatchResult,
    check_frontiers,
    compare_frontiers,
    load_frontiers,
    run_match,
    run_smoke_match,
    save_frontiers,
    smoke_algorithms,
    smoke_escalators,
)

__all__ = [
    "AdversarialBurstEscalator",
    "Battle",
    "BattleResult",
    "BattleRound",
    "DeterministicAdversaryEscalator",
    "EscalationArena",
    "Frontier",
    "FrontierPoint",
    "GOLDEN_FRONTIERS_PATH",
    "GadgetEscalator",
    "InstanceEscalator",
    "Lemma9Escalator",
    "MatchResult",
    "SMOKE_SEED",
    "SMOKE_TRIALS",
    "TDesignEscalator",
    "battle_key",
    "battle_ratio",
    "check_frontiers",
    "compare_frontiers",
    "default_escalator_suite",
    "load_frontiers",
    "resolve_battle_store",
    "round_seed",
    "run_match",
    "run_smoke_match",
    "save_frontiers",
    "smoke_algorithms",
    "smoke_escalators",
]
