"""One battle: an algorithm against one escalating adversary construction.

A :class:`Battle` plays a single online algorithm against a single
:class:`~repro.battles.escalators.InstanceEscalator` in iterated *rounds*.
Each round the escalator builds (or adaptively plays) an instance one level
larger/harder than the last, the algorithm's empirical competitive ratio is
measured on it, and the round is compared against the applicable
:mod:`repro.core.bounds` expression for that construction family.  The battle
stops when the measured ratio crosses the bound — the construction reached
its theoretical frontier — or when the escalation ladder is exhausted.

The per-round records form the algorithm's **empirical frontier** against
that adversary: the worst measured ratio at every instance size the ladder
visited.  Frontiers are plain data (:class:`Frontier` /
:class:`FrontierPoint`), JSON round-trippable, and are what the golden-
fixture regression check in :mod:`repro.battles.match` compares.

Determinism contract (same as the sweep orchestrator): for fixed
``(algorithm, escalator, trials, seed)`` the rounds are bit-identical at any
worker count, with the store off, cold or warm, and under any ``engine``
selection — those knobs only move wall-clock time.  Round seeds come from
:func:`round_seed` (a :func:`~repro.experiments.parallel.stable_seed` mix),
and every algorithm battling the same escalator at the same level shares the
round seed, preserving the harness's paired-comparison convention.

Computed rounds are persisted in the :class:`~repro.experiments.store.SolutionStore`
``frontiers`` table under the content-addressed :func:`battle_key`, so an
interrupted match resumes without replaying finished rounds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.competitive_ratio import EXACT_SOLVER_SET_LIMIT, validate_engine
from repro.experiments.opt_cache import attached_store, default_opt_cache
from repro.experiments.parallel import stable_seed
from repro.experiments.store import (
    NONEXACT_ENGINES,
    STORE_FORMAT_VERSION,
    algorithm_identity,
)

__all__ = [
    "Battle",
    "BattleResult",
    "BattleRound",
    "Frontier",
    "FrontierPoint",
    "battle_key",
    "battle_ratio",
    "resolve_battle_store",
    "round_seed",
]


def battle_ratio(opt_value: float, mean_benefit: float) -> float:
    """The competitive ratio ``opt / alg`` with degenerate cases made explicit.

    The plain quotient is only meaningful when the adversary actually
    produced value for OPT to claim:

    * ``opt <= 0`` — the round's offline optimum is worthless, so the round
      says nothing about the algorithm; the ratio is the neutral ``1.0``
      (never ``0 / alg = 0``, which would claim the algorithm *beat* the
      offline optimum — the true competitive ratio is always at least 1).
      This also covers ``0 / 0`` without raising ``ZeroDivisionError``.
    * ``mean_benefit <= 0`` with ``opt > 0`` — the algorithm was starved
      while OPT gained: ``inf``.

    >>> battle_ratio(8.0, 2.0)
    4.0
    >>> battle_ratio(0.0, 0.0)          # degenerate round: neutral
    1.0
    >>> battle_ratio(0.0, 3.0)          # worthless OPT: still neutral, not 0
    1.0
    >>> battle_ratio(5.0, 0.0)          # starved algorithm
    inf
    """
    if opt_value <= 0:
        return 1.0
    if mean_benefit <= 0:
        return float("inf")
    return opt_value / mean_benefit


def round_seed(seed: int, escalator_name: str, level: int) -> int:
    """The simulation seed for one battle round.

    A pure function of the battle seed, the escalator and the level — and
    deliberately *not* of the algorithm, so every algorithm facing the same
    escalator at the same level plays the same instance draw with the same
    trial seeds (the paired-comparison convention the rest of the harness
    follows).  Derived with :func:`~repro.experiments.parallel.stable_seed`,
    so any process recomputes the identical value.

    >>> round_seed(0, "lemma9", 0)       # frozen: same value on every platform
    650284884814357234
    >>> round_seed(0, "lemma9", 1) != round_seed(0, "lemma9", 0)
    True
    >>> round_seed(0, "full-gadget", 0) != round_seed(0, "lemma9", 0)
    True
    """
    return stable_seed("battle-round", seed, escalator_name, level)


@dataclass(frozen=True)
class BattleRound:
    """The outcome of one escalation level of a battle.

    ``ratio`` is :func:`battle_ratio` of ``opt_value`` over ``mean_benefit``;
    ``bound`` is the applicable :mod:`repro.core.bounds` expression evaluated
    for this round's instance, and ``bound_name`` names which theorem it is.

    >>> r = BattleRound(level=0, label="ell=2", num_sets=16, trials=8,
    ...                 mean_benefit=2.0, opt_value=8.0, opt_method="planted",
    ...                 ratio=4.0, bound=2.93, bound_name="theorem2")
    >>> r.crossed                   # measured ratio reached the bound
    True
    >>> sorted(r.as_dict())[:4]
    ['bound', 'bound_name', 'crossed', 'label']
    """

    level: int
    label: str
    num_sets: int
    trials: int
    mean_benefit: float
    opt_value: float
    opt_method: str
    ratio: float
    bound: float
    bound_name: str

    @property
    def crossed(self) -> bool:
        """Whether the measured ratio reached the round's theoretical bound."""
        return self.ratio >= self.bound

    def as_dict(self) -> Dict[str, object]:
        """The round as a plain dict (for tables and JSON)."""
        return {
            "level": self.level,
            "label": self.label,
            "num_sets": self.num_sets,
            "trials": self.trials,
            "mean_benefit": self.mean_benefit,
            "opt_value": self.opt_value,
            "opt_method": self.opt_method,
            "ratio": self.ratio,
            "bound": self.bound,
            "bound_name": self.bound_name,
            "crossed": self.crossed,
        }


@dataclass(frozen=True)
class FrontierPoint:
    """One point of an empirical frontier: the worst ratio at one size.

    >>> point = FrontierPoint(level=0, label="ell=2", num_sets=16,
    ...                       ratio=4.0, bound=2.93)
    >>> FrontierPoint.from_dict(point.as_dict()) == point
    True
    """

    level: int
    label: str
    num_sets: int
    ratio: float
    bound: float

    def as_dict(self) -> Dict[str, object]:
        """The point as a JSON-ready dict."""
        return {
            "level": self.level,
            "label": self.label,
            "num_sets": self.num_sets,
            "ratio": self.ratio,
            "bound": self.bound,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FrontierPoint":
        """Rebuild a point from :meth:`as_dict` output."""
        return FrontierPoint(
            level=int(data["level"]),
            label=str(data["label"]),
            num_sets=int(data["num_sets"]),
            ratio=float(data["ratio"]),
            bound=float(data["bound"]),
        )


@dataclass(frozen=True)
class Frontier:
    """An algorithm's empirical frontier against one escalator.

    One :class:`FrontierPoint` per instance size the battle visited, carrying
    the *worst* (largest) measured ratio at that size, sorted by size.  This
    is the unit of the golden-fixture regression check: a frontier regresses
    when any of its per-size ratios gets worse, or when the battle no longer
    reaches a size it used to reach.

    >>> rounds = [BattleRound(0, "a", 4, 1, 2.0, 2.0, "exact", 1.0, 9.0, "c6"),
    ...           BattleRound(1, "b", 4, 1, 1.0, 2.0, "exact", 2.0, 9.0, "c6"),
    ...           BattleRound(2, "c", 8, 1, 1.0, 3.0, "exact", 3.0, 9.0, "c6")]
    >>> f = Frontier.from_rounds("alg", "esc", rounds, "levels-exhausted")
    >>> [(p.num_sets, p.ratio) for p in f.points]   # worst ratio per size
    [(4, 2.0), (8, 3.0)]
    >>> Frontier.from_dict(f.as_dict()) == f
    True
    """

    algorithm_name: str
    escalator_name: str
    points: Tuple[FrontierPoint, ...]
    stop_reason: str

    @staticmethod
    def from_rounds(
        algorithm_name: str,
        escalator_name: str,
        rounds: Sequence[BattleRound],
        stop_reason: str,
    ) -> "Frontier":
        """Collapse battle rounds into the worst-ratio-per-size frontier."""
        worst: Dict[int, BattleRound] = {}
        for battle_round in rounds:
            incumbent = worst.get(battle_round.num_sets)
            if incumbent is None or battle_round.ratio > incumbent.ratio:
                worst[battle_round.num_sets] = battle_round
        points = tuple(
            FrontierPoint(
                level=worst[size].level,
                label=worst[size].label,
                num_sets=size,
                ratio=worst[size].ratio,
                bound=worst[size].bound,
            )
            for size in sorted(worst)
        )
        return Frontier(
            algorithm_name=algorithm_name,
            escalator_name=escalator_name,
            points=points,
            stop_reason=stop_reason,
        )

    def as_dict(self) -> Dict[str, object]:
        """The frontier as a JSON-ready dict (see :meth:`from_dict`)."""
        return {
            "algorithm": self.algorithm_name,
            "escalator": self.escalator_name,
            "stop_reason": self.stop_reason,
            "points": [point.as_dict() for point in self.points],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Frontier":
        """Rebuild a frontier from :meth:`as_dict` output."""
        return Frontier(
            algorithm_name=str(data["algorithm"]),
            escalator_name=str(data["escalator"]),
            points=tuple(FrontierPoint.from_dict(p) for p in data["points"]),
            stop_reason=str(data["stop_reason"]),
        )


@dataclass(frozen=True)
class BattleResult:
    """Everything one battle produced: the rounds and why it stopped.

    ``stop_reason`` is one of ``"bound-crossed"`` (the measured ratio reached
    the construction's theoretical frontier), ``"levels-exhausted"`` (the
    escalation ladder — or ``max_rounds`` — ran out first) or
    ``"not-applicable"`` (the escalator declined the algorithm, e.g. the
    Theorem 3 adversary facing a randomized algorithm; ``rounds`` is empty).

    >>> rounds = (BattleRound(0, "ell=2", 16, 8, 2.0, 8.0, "planted",
    ...                       4.0, 2.93, "theorem2"),)
    >>> result = BattleResult("randPr", "lemma9", rounds, "bound-crossed")
    >>> result.frontier.points[0].ratio
    4.0
    >>> result.worst_ratio
    4.0
    """

    algorithm_name: str
    escalator_name: str
    rounds: Tuple[BattleRound, ...]
    stop_reason: str

    @property
    def frontier(self) -> Frontier:
        """The battle's rounds collapsed to the worst-ratio-per-size frontier."""
        return Frontier.from_rounds(
            self.algorithm_name, self.escalator_name, self.rounds, self.stop_reason
        )

    @property
    def worst_ratio(self) -> float:
        """The largest measured ratio across the rounds (``0.0`` if none)."""
        return max((r.ratio for r in self.rounds), default=0.0)


def battle_key(
    algorithm,
    escalator,
    level: int,
    seed: int,
    trials: int,
    opt_method: str,
    engine: str = "auto",
) -> Optional[str]:
    """The store key of one battle round, or ``None`` if uncacheable.

    A SHA-256 over every input that determines the round's result: the store
    format version, the escalator's name and declared ``cache_identity``, the
    algorithm's :func:`~repro.experiments.store.algorithm_identity`, the
    level, the battle seed, the trial count, the OPT estimation policy and
    the exact-solver limit.  ``workers`` is deliberately excluded — a pure
    wall-clock knob — and so is the engine *when it is exact*: the exact
    engines agree trial for trial, so keying on them would only split the
    cache between equal rounds.  A non-exact engine
    (:data:`~repro.experiments.store.NONEXACT_ENGINES`, i.e. ``"fast"``)
    produces different bits under a statistical contract and therefore
    contributes an explicit engine tag, the same rule as
    :func:`~repro.experiments.store.unit_key`.

    Either party can decline caching: an algorithm without a stable identity
    (``cache_identity`` absent or ``None``) or an escalator with
    ``cache_identity = None`` makes the round uncacheable and the battle
    bypasses the store for it.

    >>> from repro.algorithms import RandPrAlgorithm
    >>> from repro.battles.escalators import GadgetEscalator
    >>> key = battle_key(RandPrAlgorithm(), GadgetEscalator(), 0, 0, 8, "auto")
    >>> len(key)
    64
    >>> key == battle_key(RandPrAlgorithm(), GadgetEscalator(), 1, 0, 8, "auto")
    False
    >>> key == battle_key(RandPrAlgorithm(), GadgetEscalator(), 0, 0, 8,
    ...                   "auto", engine="batch")     # exact engines share
    True
    >>> key == battle_key(RandPrAlgorithm(), GadgetEscalator(), 0, 0, 8,
    ...                   "auto", engine="fast")      # statistical: own key
    False
    >>> opaque = GadgetEscalator()
    >>> opaque.cache_identity = None    # explicitly uncacheable
    >>> battle_key(RandPrAlgorithm(), opaque, 0, 0, 8, "auto") is None
    True
    """
    algorithm_id = algorithm_identity(algorithm)
    escalator_id = getattr(escalator, "cache_identity", None)
    if algorithm_id is None or escalator_id is None:
        return None
    engine_tag = (f"engine={engine}",) if engine in NONEXACT_ENGINES else ()
    digest = hashlib.sha256()
    for part in (
        f"osp-frontier-v{STORE_FORMAT_VERSION}",
        escalator.name,
        escalator_id,
        algorithm_id,
        str(level),
        str(seed),
        str(trials),
        opt_method,
        str(EXACT_SOLVER_SET_LIMIT),
        *engine_tag,
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def resolve_battle_store(store):
    """Resolve the harness's store parameter to a live store (or ``None``).

    The same convention :func:`~repro.lowerbounds.randomized_construction.stored_lemma9_instance`
    and ``run_sweep`` use: ``None`` means the ``OSP_STORE``-named default (if
    any), ``False`` forces the store off, a string or path opens (or reuses)
    the per-process store for that file, and a
    :class:`~repro.experiments.store.SolutionStore` is used as-is.

    >>> import os, tempfile
    >>> resolve_battle_store(False) is None
    True
    >>> path = os.path.join(tempfile.mkdtemp(), "battles.sqlite")
    >>> resolve_battle_store(path).path == os.path.abspath(path)
    True
    """
    import os

    from repro.experiments.store import active_store, store_for_path

    if store is None:
        return active_store()
    if store is False:
        return None
    if isinstance(store, (str, os.PathLike)):
        return store_for_path(str(store))
    return store


class Battle:
    """One algorithm against one escalator, played to the frontier.

    Parameters follow the harness conventions: ``trials`` simulation trials
    per round (deterministic algorithms collapse to one), ``seed`` the battle
    seed feeding :func:`round_seed`, ``max_rounds`` an optional cap below the
    escalator's ladder length, ``engine`` / ``store`` the usual wall-clock
    knobs.  ``store`` accepts the :func:`resolve_battle_store` vocabulary.

    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> from repro.battles.escalators import GadgetEscalator
    >>> battle = Battle(GreedyWeightAlgorithm(),
    ...                 GadgetEscalator(orders=((2, 2), (2, 3))),
    ...                 trials=4, seed=0, store=False)
    >>> result = battle.run()
    >>> result.algorithm_name, len(result.rounds) >= 1
    ('greedy-weight', True)
    >>> all(r.opt_value == 1.0 for r in result.rounds)  # Lemma 8: OPT is one set
    True
    """

    def __init__(
        self,
        algorithm,
        escalator,
        trials: int = 16,
        seed: int = 0,
        max_rounds: Optional[int] = None,
        engine: str = "auto",
        opt_method: str = "auto",
        store=None,
    ) -> None:
        validate_engine(engine)
        if trials < 1:
            raise ValueError(f"trials must be at least 1, got {trials}")
        if max_rounds is not None and max_rounds < 1:
            raise ValueError(f"max_rounds must be at least 1, got {max_rounds}")
        self.algorithm = algorithm
        self.escalator = escalator
        self.trials = trials
        self.seed = seed
        self.max_rounds = max_rounds
        self.engine = engine
        self.opt_method = opt_method
        self.store = store

    def run(self) -> BattleResult:
        """Play the battle and return its rounds and stop reason.

        The loop is store-resumable: each round is looked up under its
        content-addressed :func:`battle_key` first, and freshly computed
        rounds are written back — stored rounds are bit-identical to
        recomputed ones, so the store can never change a battle's outcome.
        For the duration of the battle the store (or its absence) is also
        attached below the per-process OPT cache, so rounds that estimate
        OPT reuse persisted offline solves.
        """
        if not self.escalator.applies_to(self.algorithm):
            return BattleResult(
                algorithm_name=self.algorithm.name,
                escalator_name=self.escalator.name,
                rounds=(),
                stop_reason="not-applicable",
            )
        backing = resolve_battle_store(self.store)
        budget = self.escalator.num_levels
        if self.max_rounds is not None:
            budget = min(budget, self.max_rounds)
        rounds: List[BattleRound] = []
        stop_reason = "levels-exhausted"
        with attached_store(default_opt_cache(), backing):
            for level in range(budget):
                key = battle_key(
                    self.algorithm,
                    self.escalator,
                    level,
                    self.seed,
                    self.trials,
                    self.opt_method,
                    engine=self.engine,
                )
                battle_round = None
                if backing is not None and key is not None:
                    battle_round = backing.get_frontier(key)
                if battle_round is None:
                    battle_round = self.escalator.play(
                        self.algorithm,
                        level,
                        round_seed(self.seed, self.escalator.name, level),
                        self.trials,
                        engine=self.engine,
                        opt_method=self.opt_method,
                    )
                    if backing is not None and key is not None:
                        backing.put_frontier(key, battle_round)
                rounds.append(battle_round)
                if battle_round.crossed and self.escalator.stop_when_crossed:
                    stop_reason = "bound-crossed"
                    break
        return BattleResult(
            algorithm_name=self.algorithm.name,
            escalator_name=self.escalator.name,
            rounds=tuple(rounds),
            stop_reason=stop_reason,
        )
