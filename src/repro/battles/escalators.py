"""Escalators: the pluggable adversary side of a battle.

An :class:`InstanceEscalator` wraps one of the library's adversarial
constructions as an *escalation ladder*: ``num_levels`` rungs of growing
instance size/degree, each of which it can play against an algorithm.  The
contract has two layers:

* **Static escalators** implement :meth:`InstanceEscalator.arena`, returning
  an :class:`EscalationArena` — an instance, an optional precomputed OPT
  certificate and the applicable :mod:`repro.core.bounds` expression for
  that rung.  The default :meth:`InstanceEscalator.play` then measures the
  algorithm on the arena with the harness's standard machinery.
* **Adaptive escalators** override :meth:`InstanceEscalator.play` entirely —
  the Theorem 3 adversary builds its instance *as a function of the
  algorithm's own decisions*, so there is no algorithm-independent arena to
  hand out.

Escalators also declare ``applies_to`` (the Theorem 3 adversary only attacks
deterministic algorithms), ``stop_when_crossed`` (adversaries that meet
their bound *by construction* at every rung run the whole ladder instead of
stopping at the first rung) and ``cache_identity`` (the opt-in that makes
their rounds storable, mirroring the algorithms' contract).

Concrete ladders provided here, one per construction family:

=============================== ======================================== ============
escalator                       construction                             bound
=============================== ======================================== ============
:class:`Lemma9Escalator`        :func:`~repro.lowerbounds.randomized_construction.stored_lemma9_instance`  Theorem 2
:class:`GadgetEscalator`        :func:`~repro.workloads.structured.full_gadget_instance`                   Corollary 6
:class:`TDesignEscalator`       :func:`~repro.workloads.structured.t_design_style_instance`                Corollary 6
:class:`AdversarialBurstEscalator` :func:`~repro.workloads.adversarial.adversarial_burst_instance`         Corollary 6
:class:`DeterministicAdversaryEscalator` :func:`~repro.lowerbounds.deterministic_adversary.run_deterministic_adversary` Theorem 3
=============================== ======================================== ============
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.bounds import (
    corollary6_upper_bound,
    theorem2_lower_bound,
    theorem3_lower_bound,
)
from repro.core.instance import OnlineInstance
from repro.core.statistics import compute_statistics
from repro.battles.battle import BattleRound, battle_ratio
from repro.experiments.competitive_ratio import (
    OptEstimate,
    estimate_opt,
    measure_ratio,
)
from repro.experiments.opt_cache import default_opt_cache
from repro.lowerbounds.deterministic_adversary import run_deterministic_adversary
from repro.lowerbounds.randomized_construction import stored_lemma9_instance
from repro.workloads.adversarial import adversarial_burst_instance
from repro.workloads.structured import full_gadget_instance, t_design_style_instance

__all__ = [
    "AdversarialBurstEscalator",
    "DeterministicAdversaryEscalator",
    "EscalationArena",
    "GadgetEscalator",
    "InstanceEscalator",
    "Lemma9Escalator",
    "TDesignEscalator",
    "default_escalator_suite",
]


@dataclass(frozen=True)
class EscalationArena:
    """One rung of a static escalation ladder, ready to be played.

    ``opt`` is an optional precomputed OPT certificate (the construction
    families here know their optimum — the planted solution for Lemma 9,
    exactly one set for a full gadget by Lemma 8, one frame per wave for
    aligned bursts); ``None`` means the harness estimates OPT through the
    standard cached pipeline.  ``bound`` is the applicable theorem expression
    already evaluated for this arena's instance.

    >>> from repro.workloads import full_gadget_instance
    >>> arena = EscalationArena(instance=full_gadget_instance(2, 2),
    ...                         opt=None, bound=4.24, label="gadget(2,2)")
    >>> arena.label
    'gadget(2,2)'
    """

    instance: OnlineInstance
    opt: Optional[OptEstimate]
    bound: float
    label: str


class InstanceEscalator(abc.ABC):
    """The adversary side of a battle: a ladder of escalating instances.

    Subclasses either implement :meth:`arena` (static constructions) or
    override :meth:`play` wholesale (adaptive adversaries).  Class attributes
    declare the escalator's battle behaviour:

    ``name``
        Stable display/keying name (also part of :func:`~repro.battles.battle.round_seed`).
    ``bound_name``
        Which theorem the per-round ``bound`` values come from.
    ``cache_identity``
        Opt-in identity string capturing *all* behaviour-affecting
        constructor state, mirroring the algorithms' store contract;
        ``None`` (the default) declares rounds uncacheable.
    ``stop_when_crossed``
        Whether a battle should stop at the first round whose measured ratio
        reaches the bound (``True`` for constructions still chasing their
        frontier) or run the full ladder (``False`` for adversaries that
        meet their bound by construction at every rung).

    >>> list(InstanceEscalator.__abstractmethods__)
    ['num_levels']
    """

    name: str = "escalator"
    bound_name: str = "corollary6"
    cache_identity: Optional[str] = None
    stop_when_crossed: bool = True

    @property
    @abc.abstractmethod
    def num_levels(self) -> int:
        """The number of rungs on this escalation ladder."""

    def applies_to(self, algorithm) -> bool:
        """Whether this escalator can battle ``algorithm`` (default: always)."""
        return True

    def arena(self, level: int, seed: int) -> EscalationArena:
        """Build the rung-``level`` arena (static escalators only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is adaptive and overrides play() directly"
        )

    def play(
        self,
        algorithm,
        level: int,
        seed: int,
        trials: int,
        engine: str = "auto",
        opt_method: str = "auto",
    ) -> BattleRound:
        """Play one round: build the arena, measure the algorithm on it.

        OPT comes from the arena's certificate when the construction knows
        it, and otherwise from :func:`~repro.experiments.competitive_ratio.estimate_opt`
        through the per-process cache (and any store the battle attached).
        The ratio is :func:`~repro.battles.battle.battle_ratio` — degenerate
        rounds are neutral, never a ``ZeroDivisionError``.
        """
        arena = self.arena(level, seed)
        system = arena.instance.system
        opt = arena.opt
        if opt is None:
            opt = estimate_opt(system, method=opt_method, cache=default_opt_cache())
        measurement = measure_ratio(
            arena.instance,
            algorithm,
            trials=trials,
            seed=seed,
            opt=opt,
            engine=engine,
        )
        return BattleRound(
            level=level,
            label=arena.label,
            num_sets=system.num_sets,
            trials=measurement.trials,
            mean_benefit=measurement.mean_benefit,
            opt_value=opt.value,
            opt_method=opt.method,
            ratio=battle_ratio(opt.value, measurement.mean_benefit),
            bound=arena.bound,
            bound_name=self.bound_name,
        )


class Lemma9Escalator(InstanceEscalator):
    """The Theorem 2 finite-field construction, escalating the order ``ell``.

    Each rung draws the Lemma 9 instance of the next prime-power order via
    the store-memoized :func:`~repro.lowerbounds.randomized_construction.stored_lemma9_instance`
    (the draw is a pure function of ``(ell, seed)``, so memoization is a
    wall-clock knob).  OPT is certified by the planted solution — a *lower*
    bound on the true optimum, so the measured ratio understates the true
    one and a crossed bound is an honest crossing.  The round bound is the
    Theorem 2 expression at the instance's own ``(k_max, sigma_max)``.

    >>> escalator = Lemma9Escalator(ells=(2, 3))
    >>> escalator.num_levels
    2
    >>> arena = escalator.arena(0, seed=7)
    >>> arena.instance.system.num_sets      # ell ** 4
    16
    >>> arena.opt.value                     # planted benefit, ell ** 3
    8.0
    """

    name = "lemma9"
    bound_name = "theorem2"

    def __init__(self, ells: Sequence[int] = (2, 3, 4, 5)) -> None:
        self.ells = tuple(int(ell) for ell in ells)
        if not self.ells:
            raise ValueError("Lemma9Escalator needs at least one order")
        self.cache_identity = f"ells={','.join(map(str, self.ells))}"

    @property
    def num_levels(self) -> int:
        return len(self.ells)

    def arena(self, level: int, seed: int) -> EscalationArena:
        ell = self.ells[level]
        sample = stored_lemma9_instance(ell, seed=seed)
        planted = float(sample.planted_benefit)
        stats = compute_statistics(sample.instance.system)
        return EscalationArena(
            instance=sample.instance,
            opt=OptEstimate(
                value=planted,
                method="planted",
                is_exact=False,
                lower_bound=planted,
            ),
            bound=theorem2_lower_bound(stats.k_max, stats.sigma_max),
            label=f"ell={ell}",
        )


class GadgetEscalator(InstanceEscalator):
    """The everything-conflicts gadget, escalating the order ``(M, N)``.

    Each rung is :func:`~repro.workloads.structured.full_gadget_instance` at
    the next order: all ``M * N`` sets of an ``(M, N)``-gadget, where by
    Lemma 8 any two sets intersect — so OPT is exactly one set (weight 1.0)
    and the measured ratio is ``1 / Pr[the algorithm completes a set]``.
    The round bound is Corollary 6's ``k_max * sqrt(sigma_max)``.

    >>> escalator = GadgetEscalator(orders=((2, 2), (2, 3)))
    >>> arena = escalator.arena(1, seed=0)
    >>> arena.instance.system.num_sets, arena.opt.value
    (6, 1.0)
    >>> arena.label
    'gadget(2,3)'
    """

    name = "full-gadget"
    bound_name = "corollary6"

    def __init__(
        self, orders: Sequence[Tuple[int, int]] = ((2, 2), (2, 3), (3, 4), (4, 5), (5, 7))
    ) -> None:
        self.orders = tuple((int(m), int(n)) for m, n in orders)
        if not self.orders:
            raise ValueError("GadgetEscalator needs at least one order")
        self.cache_identity = (
            f"orders={';'.join(f'{m}x{n}' for m, n in self.orders)}"
        )

    @property
    def num_levels(self) -> int:
        return len(self.orders)

    def arena(self, level: int, seed: int) -> EscalationArena:
        num_rows, num_columns = self.orders[level]
        instance = full_gadget_instance(num_rows, num_columns)
        return EscalationArena(
            instance=instance,
            opt=OptEstimate(
                value=1.0, method="lemma8", is_exact=True, lower_bound=1.0
            ),
            bound=corollary6_upper_bound(compute_statistics(instance.system)),
            label=f"gadget({num_rows},{num_columns})",
        )


class TDesignEscalator(InstanceEscalator):
    """The Section 4.2 warm-up construction, escalating the design order ``t``.

    Each rung draws :func:`~repro.workloads.structured.t_design_style_instance`
    at the next ``t`` from the round seed.  The construction's optimum (a
    full column completes) is not certified here, so OPT goes through the
    standard estimation pipeline — exact up to the solver limit.  The round
    bound is Corollary 6.

    >>> escalator = TDesignEscalator(ts=(2, 3))
    >>> arena = escalator.arena(1, seed=0)
    >>> arena.instance.system.num_sets      # t ** 2
    9
    >>> arena.opt is None                   # estimated, not certified
    True
    """

    name = "t-design"
    bound_name = "corollary6"

    def __init__(self, ts: Sequence[int] = (2, 3, 4, 5)) -> None:
        self.ts = tuple(int(t) for t in ts)
        if not self.ts:
            raise ValueError("TDesignEscalator needs at least one order")
        self.cache_identity = f"ts={','.join(map(str, self.ts))}"

    @property
    def num_levels(self) -> int:
        return len(self.ts)

    def arena(self, level: int, seed: int) -> EscalationArena:
        t = self.ts[level]
        instance = t_design_style_instance(t, random.Random(seed))
        return EscalationArena(
            instance=instance,
            opt=None,
            bound=corollary6_upper_bound(compute_statistics(instance.system)),
            label=f"t={t}",
        )


class AdversarialBurstEscalator(InstanceEscalator):
    """Synchronized traffic bursts, escalating burst size, frame size and waves.

    Each rung is :func:`~repro.workloads.adversarial.adversarial_burst_instance`
    at the next ``(burst_size, packets_per_frame, num_waves)`` triple.  The
    waves are disjoint blocks of perfectly aligned frames at a capacity-one
    link, so OPT completes exactly one frame per wave — an exact certificate
    of ``num_waves * packets_per_frame`` (a frame's OSP weight defaults to
    its packet count in the network reduction).  The round bound is
    Corollary 6.

    >>> escalator = AdversarialBurstEscalator(levels=((2, 2, 2), (3, 2, 3)))
    >>> arena = escalator.arena(0, seed=0)
    >>> arena.instance.system.num_sets      # burst_size * num_waves
    4
    >>> arena.opt.value                     # one weight-k frame per wave
    4.0
    """

    name = "adversarial-burst"
    bound_name = "corollary6"

    def __init__(
        self,
        levels: Sequence[Tuple[int, int, int]] = (
            (2, 2, 2),
            (3, 2, 3),
            (4, 3, 3),
            (6, 3, 4),
            (8, 4, 4),
        ),
    ) -> None:
        self.levels = tuple((int(s), int(k), int(w)) for s, k, w in levels)
        if not self.levels:
            raise ValueError("AdversarialBurstEscalator needs at least one level")
        self.cache_identity = (
            f"levels={';'.join(f'{s}x{k}x{w}' for s, k, w in self.levels)}"
        )

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def arena(self, level: int, seed: int) -> EscalationArena:
        burst_size, packets_per_frame, num_waves = self.levels[level]
        instance = adversarial_burst_instance(
            burst_size, packets_per_frame, num_waves
        )
        # One frame per wave, each of weight packets_per_frame (the network
        # reduction weights a frame by its packet count).
        opt_value = float(num_waves * packets_per_frame)
        return EscalationArena(
            instance=instance,
            opt=OptEstimate(
                value=opt_value,
                method="aligned-waves",
                is_exact=True,
                lower_bound=opt_value,
            ),
            bound=corollary6_upper_bound(compute_statistics(instance.system)),
            label=f"sigma={burst_size},k={packets_per_frame},waves={num_waves}",
        )


class DeterministicAdversaryEscalator(InstanceEscalator):
    """The adaptive Theorem 3 adversary, escalating ``(sigma, k)``.

    Adaptive: there is no algorithm-independent arena — the instance is built
    from the algorithm's own decisions by
    :func:`~repro.lowerbounds.deterministic_adversary.run_deterministic_adversary`,
    so this escalator overrides :meth:`play` directly.  It only applies to
    deterministic algorithms, and because the adversary forces
    ``ratio >= sigma^(k-1)`` *by construction* at every rung,
    ``stop_when_crossed`` is off — the battle walks the whole ladder and the
    frontier records how the forced ratio grows with the instance size.

    >>> from repro.algorithms import GreedyWeightAlgorithm, RandPrAlgorithm
    >>> escalator = DeterministicAdversaryEscalator(params=((2, 2), (3, 2)))
    >>> escalator.applies_to(RandPrAlgorithm())     # randomized: declined
    False
    >>> battle_round = escalator.play(GreedyWeightAlgorithm(), 0, seed=0, trials=5)
    >>> battle_round.ratio >= battle_round.bound    # forced by construction
    True
    >>> battle_round.bound                          # sigma ** (k - 1)
    2.0
    """

    name = "theorem3-adversary"
    bound_name = "theorem3"
    stop_when_crossed = False

    def __init__(
        self,
        params: Sequence[Tuple[int, int]] = ((2, 2), (2, 3), (3, 2), (3, 3)),
    ) -> None:
        self.params = tuple((int(sigma), int(k)) for sigma, k in params)
        if not self.params:
            raise ValueError(
                "DeterministicAdversaryEscalator needs at least one (sigma, k)"
            )
        self.cache_identity = (
            f"params={';'.join(f'{sigma}x{k}' for sigma, k in self.params)}"
        )

    @property
    def num_levels(self) -> int:
        return len(self.params)

    def applies_to(self, algorithm) -> bool:
        """The Theorem 3 construction only attacks deterministic algorithms."""
        return bool(algorithm.is_deterministic)

    def play(
        self,
        algorithm,
        level: int,
        seed: int,
        trials: int,
        engine: str = "auto",
        opt_method: str = "auto",
    ) -> BattleRound:
        """Run the adaptive adversary; the round is its certified outcome.

        The construction is deterministic (``seed``, ``trials``, ``engine``
        and ``opt_method`` do not enter it — they are accepted to satisfy the
        escalator contract), and both benefits come from the adversary's own
        certificate: the sets the algorithm completed and the feasible OPT
        solution built from the abandoned sets.
        """
        sigma, k = self.params[level]
        result = run_deterministic_adversary(algorithm, sigma, k)
        return BattleRound(
            level=level,
            label=f"sigma={sigma},k={k}",
            num_sets=result.instance.system.num_sets,
            trials=1,
            mean_benefit=float(result.algorithm_benefit),
            opt_value=float(result.opt_benefit),
            opt_method="adversary-certificate",
            ratio=result.ratio,
            bound=theorem3_lower_bound(sigma, k),
            bound_name=self.bound_name,
        )


def default_escalator_suite() -> list:
    """The standard escalation ladders, one per construction family.

    >>> [escalator.name for escalator in default_escalator_suite()]
    ... # doctest: +NORMALIZE_WHITESPACE
    ['lemma9', 'full-gadget', 't-design', 'adversarial-burst',
     'theorem3-adversary']
    """
    return [
        Lemma9Escalator(),
        GadgetEscalator(),
        TDesignEscalator(),
        AdversarialBurstEscalator(),
        DeterministicAdversaryEscalator(),
    ]
