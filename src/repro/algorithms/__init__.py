"""Online algorithms: randPr, its distributed variant, and baselines."""

from repro.algorithms.deterministic import (
    FirstListedAlgorithm,
    LargestSetFirstAlgorithm,
    SmallestSetFirstAlgorithm,
    StaticOrderAlgorithm,
)
from repro.algorithms.general import (
    GeneralDensityAlgorithm,
    GeneralGreedyWeightAlgorithm,
    GeneralRandPrAlgorithm,
)
from repro.algorithms.greedy import (
    GreedyCommittedAlgorithm,
    GreedyProgressAlgorithm,
    GreedyWeightAlgorithm,
)
from repro.algorithms.hashed import HashedRandPrAlgorithm
from repro.algorithms.partial_reward import HedgingAlgorithm, ProportionalShareAlgorithm
from repro.algorithms.randpr import RandPrAlgorithm
from repro.algorithms.random_assign import UniformRandomAlgorithm, UnweightedPriorityAlgorithm

__all__ = [
    "FirstListedAlgorithm",
    "GeneralDensityAlgorithm",
    "GeneralGreedyWeightAlgorithm",
    "GeneralRandPrAlgorithm",
    "LargestSetFirstAlgorithm",
    "SmallestSetFirstAlgorithm",
    "StaticOrderAlgorithm",
    "GreedyCommittedAlgorithm",
    "GreedyProgressAlgorithm",
    "GreedyWeightAlgorithm",
    "HashedRandPrAlgorithm",
    "HedgingAlgorithm",
    "ProportionalShareAlgorithm",
    "RandPrAlgorithm",
    "UniformRandomAlgorithm",
    "UnweightedPriorityAlgorithm",
    "default_algorithm_suite",
]


def default_algorithm_suite():
    """The standard list of algorithms compared throughout the benchmarks.

    >>> [algorithm.name for algorithm in default_algorithm_suite()]
    ... # doctest: +NORMALIZE_WHITESPACE
    ['randPr', 'randPr-hashed', 'greedy-weight', 'greedy-progress',
     'greedy-committed', 'first-listed', 'static-order', 'uniform-random',
     'uniform-priority']
    """
    return [
        RandPrAlgorithm(),
        HashedRandPrAlgorithm(salt="bench"),
        GreedyWeightAlgorithm(),
        GreedyProgressAlgorithm(),
        GreedyCommittedAlgorithm(),
        FirstListedAlgorithm(),
        StaticOrderAlgorithm(),
        UniformRandomAlgorithm(),
        UnweightedPriorityAlgorithm(),
    ]
