"""Greedy baselines for online set packing.

These are the natural deterministic heuristics a router implementer would
reach for, and the comparison points for the benchmark suite:

* :class:`GreedyWeightAlgorithm` — prefer heavier frames.
* :class:`GreedyProgressAlgorithm` — prefer the frame that is closest to
  completion (fewest remaining elements), i.e. protect sunk investment.
* :class:`GreedyCommittedAlgorithm` — stick with sets that are still alive
  and were served before; among those prefer heavier / more complete ones.
  This mimics "drop the newcomer" router policies.

All of these are deterministic, so Theorem 3's adversary can force a
``σ^(k-1)`` ratio against each of them — which benchmark E3 demonstrates.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import ElementArrival
from repro.core.set_system import SetId, SetInfo

__all__ = [
    "GreedyWeightAlgorithm",
    "GreedyProgressAlgorithm",
    "GreedyCommittedAlgorithm",
]


class _ActivityTrackingAlgorithm(OnlineAlgorithm):
    """Shared bookkeeping: which sets are still completable and their progress."""

    def __init__(self) -> None:
        self._infos: Dict[SetId, SetInfo] = {}
        self._assigned: Dict[SetId, int] = {}
        self._alive: Dict[SetId, bool] = {}

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._infos = dict(set_infos)
        self._assigned = {set_id: 0 for set_id in set_infos}
        self._alive = {set_id: True for set_id in set_infos}

    def _record(self, arrival: ElementArrival, decision: FrozenSet[SetId]) -> None:
        for set_id in arrival.parents:
            if set_id in decision:
                self._assigned[set_id] = self._assigned.get(set_id, 0) + 1
            else:
                self._alive[set_id] = False

    def is_alive(self, set_id: SetId) -> bool:
        """Whether the set has been assigned every one of its elements so far."""
        return self._alive.get(set_id, True)

    def assigned_count(self, set_id: SetId) -> int:
        """How many elements have been assigned to the set so far."""
        return self._assigned.get(set_id, 0)

    def remaining(self, set_id: SetId) -> int:
        """How many elements of the set are still to arrive (by declared size)."""
        info = self._infos.get(set_id)
        size = info.size if info is not None else 0
        return max(size - self.assigned_count(set_id), 0)

    def weight(self, set_id: SetId) -> float:
        """The declared weight of the set."""
        info = self._infos.get(set_id)
        return info.weight if info is not None else 1.0


class GreedyWeightAlgorithm(_ActivityTrackingAlgorithm):
    """Assign each element to the heaviest still-alive parent sets.

    Dead sets (ones that already lost an element) are never preferred over
    alive ones, since they can no longer pay anything.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GreedyWeightAlgorithm()
    >>> infos = {"A": SetInfo("A", 3.0, 2), "B": SetInfo("B", 1.0, 2)}
    >>> algorithm.start(infos, random.Random(0))
    >>> sorted(algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B"))))
    ['A']
    >>> algorithm.is_alive("B")      # B lost its element: dead from now on
    False
    """

    name = "greedy-weight"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (
                not self.is_alive(set_id),
                -self.weight(set_id),
                repr(set_id),
            ),
        )
        decision = frozenset(ranked[: arrival.capacity])
        self._record(arrival, decision)
        return decision


class GreedyProgressAlgorithm(_ActivityTrackingAlgorithm):
    """Assign each element to the alive parent sets closest to completion.

    Ties are broken towards heavier sets, then by identifier.  This is the
    "protect sunk work" heuristic: a frame that has already received most of
    its packets is the most costly to abandon.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GreedyProgressAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, 5), "B": SetInfo("B", 1.0, 2)}
    >>> algorithm.start(infos, random.Random(0))
    >>> sorted(algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B"))))
    ['B']
    >>> algorithm.remaining("B")     # one of B's two elements is banked
    1
    """

    name = "greedy-progress"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (
                not self.is_alive(set_id),
                self.remaining(set_id),
                -self.weight(set_id),
                repr(set_id),
            ),
        )
        decision = frozenset(ranked[: arrival.capacity])
        self._record(arrival, decision)
        return decision


class GreedyCommittedAlgorithm(_ActivityTrackingAlgorithm):
    """Prefer sets the algorithm has already invested in ("drop the newcomer").

    Among alive parents, sets with at least one previously assigned element
    outrank fresh sets; further ties go to weight and then progress.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GreedyCommittedAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, 2), "B": SetInfo("B", 9.0, 2)}
    >>> algorithm.start(infos, random.Random(0))
    >>> _ = algorithm.decide(ElementArrival("u", capacity=1, parents=("A",)))
    >>> sorted(algorithm.decide(ElementArrival("v", capacity=1, parents=("A", "B"))))
    ['A']
    """

    name = "greedy-committed"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (
                not self.is_alive(set_id),
                self.assigned_count(set_id) == 0,
                -self.weight(set_id),
                self.remaining(set_id),
                repr(set_id),
            ),
        )
        decision = frozenset(ranked[: arrival.capacity])
        self._record(arrival, decision)
        return decision
