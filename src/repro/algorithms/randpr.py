"""Algorithm randPr — the paper's randomized priority algorithm (Section 3.1).

For each set ``S``, a random priority ``r(S)`` is drawn once, up front, from
the distribution ``R_{w(S)}`` (CDF ``x^w``).  When an element ``u`` arrives
with capacity ``b(u)``, it is assigned to the ``b(u)`` sets of ``C(u)`` with
the highest priority.

The key structural property (Lemma 1) is that for every set,
``Pr[S ∈ alg] = w(S) / w(N[S])`` on unit-capacity instances, which drives the
``k_max * sqrt(σ_max)`` competitive ratio of Theorem 1 / Corollary 6.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import ElementArrival
from repro.core.priorities import sample_priority
from repro.core.set_system import SetId, SetInfo

__all__ = ["RandPrAlgorithm"]


class RandPrAlgorithm(OnlineAlgorithm):
    """The randomized priority algorithm of Emek et al.

    Parameters
    ----------
    tie_break_by_id:
        Priorities drawn from a continuous distribution are almost surely
        distinct, but floating point collisions are possible; ties are broken
        by set-identifier representation so runs are reproducible.

    One ``R_w`` draw per set in ``sorted(..., key=repr)`` order (for unit
    weights ``R_1`` is plain uniform), then every element goes to the
    highest-priority parents:

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = RandPrAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, 2), "B": SetInfo("B", 1.0, 2)}
    >>> algorithm.start(infos, random.Random(7))
    >>> algorithm.priority_of("A") == random.Random(7).random()
    True
    >>> chosen, = algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B")))
    >>> chosen == max(("A", "B"), key=algorithm.priority_of)
    True
    """

    name = "randPr"
    is_deterministic = False

    def __init__(self, tie_break_by_id: bool = True) -> None:
        self._tie_break_by_id = tie_break_by_id
        self._priorities: Dict[SetId, float] = {}

    @property
    def cache_identity(self) -> str:
        """Extra identity for the persistent store (see ``algorithm_identity``)."""
        return f"tie_break_by_id={self._tie_break_by_id}"

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._priorities = {}
        # Iterate in a deterministic order so a fixed seed gives a fixed run.
        for set_id in sorted(set_infos, key=repr):
            info = set_infos[set_id]
            weight = info.weight if info.weight > 0 else 1e-12
            self._priorities[set_id] = sample_priority(weight, rng)

    def priority_of(self, set_id: SetId) -> float:
        """The priority drawn for ``set_id`` (for tests and introspection)."""
        return self._priorities[set_id]

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        if self._tie_break_by_id:
            ranked = sorted(
                arrival.parents,
                key=lambda set_id: (-self._priorities.get(set_id, 0.0), repr(set_id)),
            )
        else:
            ranked = sorted(
                arrival.parents,
                key=lambda set_id: -self._priorities.get(set_id, 0.0),
            )
        return frozenset(ranked[: arrival.capacity])
