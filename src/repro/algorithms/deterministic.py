"""Simple deterministic baselines: static priorities and first-listed.

These algorithms ignore run-time state entirely.  They exist as the weakest
reasonable baselines and as canonical victims for the Theorem 3 adversary,
whose construction applies to *any* deterministic algorithm.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.algorithm import StatelessPriorityAlgorithm
from repro.core.instance import ElementArrival
from repro.core.priorities import hash_unit_interval
from repro.core.set_system import SetId

__all__ = [
    "FirstListedAlgorithm",
    "StaticOrderAlgorithm",
    "LargestSetFirstAlgorithm",
    "SmallestSetFirstAlgorithm",
]


class FirstListedAlgorithm(StatelessPriorityAlgorithm):
    """Assign each element to the first ``b(u)`` parent sets as announced.

    This models a router that serves packets in arrival order within a burst
    with no regard for frame structure.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> algorithm = FirstListedAlgorithm()
    >>> algorithm.start({}, random.Random(0))
    >>> sorted(algorithm.decide(ElementArrival("u", capacity=1, parents=("B", "A"))))
    ['B']
    """

    name = "first-listed"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        return frozenset(arrival.parents[: arrival.capacity])


class StaticOrderAlgorithm(StatelessPriorityAlgorithm):
    """Assign to the parent sets ranked by a fixed pseudo-random static order.

    The order is derived by hashing set identifiers with a fixed salt, so it
    is deterministic across runs.  Unlike randPr the order does not depend on
    weights, making it a useful ablation of the R_w priority distribution.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> algorithm = StaticOrderAlgorithm()
    >>> algorithm.start({}, random.Random(0))
    >>> arrival = ElementArrival("u", capacity=1, parents=("A", "B", "C"))
    >>> algorithm.decide(arrival) == StaticOrderAlgorithm().decide(arrival)
    True
    >>> StaticOrderAlgorithm(salt="other").cache_identity
    "salt='other'"
    """

    name = "static-order"
    is_deterministic = True

    def __init__(self, salt: str = "static-order") -> None:
        super().__init__()
        self._salt = salt

    @property
    def cache_identity(self) -> str:
        """Extra identity for the persistent store: the order is salt-dependent."""
        return f"salt={self._salt!r}"

    def priority(self, set_id: SetId) -> float:
        return hash_unit_interval(set_id, salt=self._salt)


class LargestSetFirstAlgorithm(StatelessPriorityAlgorithm):
    """Prefer the parent sets with the largest declared size.

    Large frames are the most fragile (they need the most elements), so a
    policy that protects them is a plausible heuristic; the benchmarks show
    it is usually the wrong call compared to randPr.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = LargestSetFirstAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, size=2), "B": SetInfo("B", 1.0, size=5)}
    >>> algorithm.start(infos, random.Random(0))
    >>> sorted(algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B"))))
    ['B']
    """

    name = "largest-set-first"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def priority(self, set_id: SetId) -> float:
        info = self.set_infos.get(set_id)
        return float(info.size) if info is not None else 0.0


class SmallestSetFirstAlgorithm(StatelessPriorityAlgorithm):
    """Prefer the parent sets with the smallest declared size.

    Small frames need the fewest successes to complete, so favouring them
    maximizes the count of completed frames under light contention.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = SmallestSetFirstAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, size=2), "B": SetInfo("B", 1.0, size=5)}
    >>> algorithm.start(infos, random.Random(0))
    >>> sorted(algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B"))))
    ['A']
    """

    name = "smallest-set-first"
    is_deterministic = True
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def priority(self, set_id: SetId) -> float:
        info = self.set_infos.get(set_id)
        return -float(info.size) if info is not None else 0.0
