"""Algorithms tuned for the partial-reward extension (open problem 3).

When a set pays off even if a small fraction of its elements is missing,
hedging across sets becomes attractive: instead of letting a single winner
take every element (as randPr does), an algorithm may spread assignments so
that many sets end up *almost* complete.  The classes here explore that
trade-off; the benchmark E13 compares them against randPr under threshold
and proportional reward models.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import ElementArrival
from repro.core.priorities import sample_priority
from repro.core.set_system import SetId, SetInfo

__all__ = ["HedgingAlgorithm", "ProportionalShareAlgorithm"]


class HedgingAlgorithm(OnlineAlgorithm):
    """randPr priorities, but with per-element re-randomization with rate ``epsilon``.

    With probability ``1 - epsilon`` an arriving element follows the static
    randPr ranking; with probability ``epsilon`` it is assigned to uniformly
    random parents instead.  Under all-or-nothing rewards any ``epsilon > 0``
    only hurts; under partial rewards a small ``epsilon`` spreads near-misses
    across more sets and can raise the relaxed benefit.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = HedgingAlgorithm(epsilon=0.0)    # never re-randomizes
    >>> infos = {"A": SetInfo("A", 1.0, 1), "B": SetInfo("B", 1.0, 1)}
    >>> algorithm.start(infos, random.Random(5))
    >>> chosen, = algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B")))
    >>> chosen == max(("A", "B"), key=algorithm._priorities.get)  # pure randPr ranking
    True
    >>> HedgingAlgorithm(epsilon=2.0)
    Traceback (most recent call last):
        ...
    ValueError: epsilon must be in [0, 1], got 2.0
    """

    name = "hedging"
    is_deterministic = False

    def __init__(self, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self._epsilon = epsilon
        self._priorities: Dict[SetId, float] = {}
        self._rng = random.Random()

    @property
    def cache_identity(self) -> str:
        """Extra identity for the persistent store: behaviour depends on epsilon."""
        return f"epsilon={self._epsilon!r}"

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._rng = rng
        self._priorities = {}
        for set_id in sorted(set_infos, key=repr):
            info = set_infos[set_id]
            weight = info.weight if info.weight > 0 else 1e-12
            self._priorities[set_id] = sample_priority(weight, rng)

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        parents = list(arrival.parents)
        take = min(arrival.capacity, len(parents))
        if take == 0:
            return frozenset()
        if self._rng.random() < self._epsilon:
            return frozenset(self._rng.sample(parents, take))
        ranked = sorted(
            parents,
            key=lambda set_id: (-self._priorities.get(set_id, 0.0), repr(set_id)),
        )
        return frozenset(ranked[:take])


class ProportionalShareAlgorithm(OnlineAlgorithm):
    """Assign each element with probability proportional to parent-set weight.

    Each arriving element independently samples ``b(u)`` parents without
    replacement, where a set's selection probability is proportional to its
    weight.  This is the memoryless analogue of randPr's weight sensitivity
    and serves as a second hedging-style baseline for partial rewards.

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = ProportionalShareAlgorithm()
    >>> infos = {"A": SetInfo("A", 5.0, 1), "B": SetInfo("B", 1.0, 1)}
    >>> algorithm.start(infos, random.Random(3))
    >>> arrival = ElementArrival("u", capacity=2, parents=("A", "B"))
    >>> sorted(algorithm.decide(arrival))    # capacity covers both parents
    ['A', 'B']
    """

    name = "proportional-share"
    is_deterministic = False
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def __init__(self) -> None:
        self._weights: Dict[SetId, float] = {}
        self._rng = random.Random()

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._rng = rng
        self._weights = {
            set_id: max(info.weight, 1e-12) for set_id, info in set_infos.items()
        }

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        parents = list(arrival.parents)
        take = min(arrival.capacity, len(parents))
        chosen = []
        available = list(parents)
        for _ in range(take):
            weights = [self._weights.get(set_id, 1.0) for set_id in available]
            total = sum(weights)
            if total <= 0:
                pick_index = self._rng.randrange(len(available))
            else:
                threshold = self._rng.random() * total
                cumulative = 0.0
                pick_index = len(available) - 1
                for index, weight in enumerate(weights):
                    cumulative += weight
                    if threshold < cumulative:
                        pick_index = index
                        break
            chosen.append(available.pop(pick_index))
        return frozenset(chosen)
