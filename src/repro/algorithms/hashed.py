"""Distributed, hash-based implementation of randPr.

Section 3.1 of the paper observes that randPr can be implemented
distributively: the servers do not need to share the random priorities —
a system-wide hash function ``h`` applied to the set identifier yields the
same priority at every server, so independent bounded-capacity servers make
globally consistent decisions with zero communication.

:class:`HashedRandPrAlgorithm` is the single-process embodiment of that idea:
its priorities depend only on ``(salt, set_id, weight)``, never on the RNG,
so two instances constructed with the same salt behave identically — the
property the distributed coordinator (:mod:`repro.distributed.coordinator`)
relies on and tests verify.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping, Optional

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import ElementArrival
from repro.core.priorities import hash_priority
from repro.core.set_system import SetId, SetInfo
from repro.distributed.hashing import UniversalHashFamily

__all__ = ["HashedRandPrAlgorithm"]


class HashedRandPrAlgorithm(OnlineAlgorithm):
    """randPr with hash-derived priorities (the distributed variant).

    Parameters
    ----------
    salt:
        The seed of the system-wide hash function.  All servers in a
        distributed deployment must agree on it.  When ``None``, a salt is
        drawn from the simulation RNG at :meth:`start` — making the algorithm
        behave like randPr with a shared random source.
    hash_family:
        Optional :class:`~repro.distributed.hashing.UniversalHashFamily`
        to use instead of the default SHA-256-based hash.  The paper notes
        that ``k_max * σ_max``-wise independence suffices; a universal family
        lets experiments probe how little independence is enough in practice.

    Two servers sharing a salt decide identically with zero communication,
    whatever their local RNGs do:

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> first = HashedRandPrAlgorithm(salt="shared")
    >>> second = HashedRandPrAlgorithm(salt="shared")
    >>> infos = {"A": SetInfo("A", 2.0, 2), "B": SetInfo("B", 1.0, 2)}
    >>> first.start(infos, random.Random(0)); second.start(infos, random.Random(999))
    >>> arrival = ElementArrival("u", capacity=1, parents=("A", "B"))
    >>> first.decide(arrival) == second.decide(arrival)
    True
    >>> first.priority_of("A") == second.priority_of("A")
    True
    """

    name = "randPr-hashed"
    is_deterministic = False

    def __init__(
        self,
        salt: Optional[str] = None,
        hash_family: Optional[UniversalHashFamily] = None,
    ) -> None:
        self._configured_salt = salt
        self._salt = salt if salt is not None else ""
        self._hash_family = hash_family
        self._weights: Dict[SetId, float] = {}
        if salt is not None:
            # A fixed salt makes the algorithm fully deterministic, which is
            # what a real distributed deployment (shared hash seed) looks like.
            self.is_deterministic = True

    @property
    def salt(self) -> str:
        """The salt in effect for the current run."""
        return self._salt

    @property
    def cache_identity(self) -> Optional[str]:
        """Extra identity for the persistent store.

        The configured salt fully determines behaviour (a ``None`` salt is
        drawn from the simulation RNG, i.e. from the seed — still a pure
        function of the stored key's inputs).  A custom hash family cannot
        be fingerprinted, so it makes the algorithm *uncacheable*
        (``cache_identity is None`` → the store is bypassed).
        """
        if self._hash_family is not None:
            return None
        return f"salt={self._configured_salt!r}"

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._weights = {
            set_id: (info.weight if info.weight > 0 else 1e-12)
            for set_id, info in set_infos.items()
        }
        if self._configured_salt is None:
            self._salt = f"salt-{rng.getrandbits(64):016x}"
        else:
            self._salt = self._configured_salt

    def priority_of(self, set_id: SetId) -> float:
        """The deterministic priority of ``set_id`` under the current salt."""
        weight = self._weights.get(set_id, 1.0)
        if self._hash_family is not None:
            uniform = self._hash_family.unit_interval(f"{self._salt}:{set_id!r}")
            if uniform <= 0.0:
                uniform = 1e-18
            return uniform ** (1.0 / weight)
        return hash_priority(set_id, weight, salt=self._salt)

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (-self.priority_of(set_id), repr(set_id)),
        )
        return frozenset(ranked[: arrival.capacity])
