"""Naive randomized baselines.

* :class:`UniformRandomAlgorithm` assigns each arriving element to a uniformly
  random subset of ``b(u)`` parent sets, independently per element.  This is
  the "memoryless random drop" router policy; it lacks randPr's crucial
  property that the *same* set keeps winning, so complete frames are rare.
* :class:`UnweightedPriorityAlgorithm` draws a single uniform priority per set
  (ignoring weights) — randPr with ``R_1`` instead of ``R_w``.  It isolates the
  contribution of the weight-sensitive priority distribution in ablations.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import ElementArrival
from repro.core.set_system import SetId, SetInfo

__all__ = ["UniformRandomAlgorithm", "UnweightedPriorityAlgorithm"]


class UniformRandomAlgorithm(OnlineAlgorithm):
    """Assign each element to ``b(u)`` parent sets chosen uniformly at random.

    Every decision is one ``rng.sample`` over the parent list — fresh
    randomness per arrival, nothing remembered between arrivals (which is
    exactly why complete sets are rare; see the module docstring).  The
    batch engine replays these per-arrival draws over vectorized word
    streams (:mod:`repro.engine.rng`), bit-equal to this reference:

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> algorithm = UniformRandomAlgorithm()
    >>> algorithm.start({}, random.Random(11))
    >>> mirror = random.Random(11)
    >>> arrival = ElementArrival("u", capacity=1, parents=("A", "B", "C"))
    >>> algorithm.decide(arrival) == frozenset(mirror.sample(["A", "B", "C"], 1))
    True
    """

    name = "uniform-random"
    is_deterministic = False
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def __init__(self) -> None:
        self._rng = random.Random()

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._rng = rng

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        parents = list(arrival.parents)
        take = min(arrival.capacity, len(parents))
        if take == 0:
            return frozenset()
        return frozenset(self._rng.sample(parents, take))


class UnweightedPriorityAlgorithm(OnlineAlgorithm):
    """Per-set uniform priorities (randPr with weights ignored).

    On unweighted instances this coincides with randPr; on weighted instances
    it demonstrates why the ``R_w`` distribution matters (benchmark E12).

    >>> import random
    >>> from repro.core.instance import ElementArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = UnweightedPriorityAlgorithm()
    >>> infos = {"A": SetInfo("A", 9.0, 1), "B": SetInfo("B", 1.0, 1)}
    >>> algorithm.start(infos, random.Random(2))
    >>> mirror = random.Random(2)
    >>> priorities = {"A": mirror.random(), "B": mirror.random()}  # weights ignored
    >>> chosen, = algorithm.decide(ElementArrival("u", capacity=1, parents=("A", "B")))
    >>> chosen == max(priorities, key=priorities.get)
    True
    """

    name = "uniform-priority"
    is_deterministic = False
    #: No behaviour-affecting constructor state: safe to key by type+name
    #: in the persistent store (see repro.experiments.store.algorithm_identity).
    cache_identity = ""

    def __init__(self) -> None:
        self._priorities: Dict[SetId, float] = {}

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._priorities = {}
        for set_id in sorted(set_infos, key=repr):
            self._priorities[set_id] = rng.random()

    def decide(self, arrival: ElementArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (-self._priorities.get(set_id, 0.0), repr(set_id)),
        )
        return frozenset(ranked[: arrival.capacity])
