"""Online algorithms for the general packing extension (open problem 1).

* :class:`GeneralRandPrAlgorithm` — the natural generalization of randPr:
  priorities are drawn from ``R_{w(S)}`` once, and each arriving resource is
  allocated greedily by priority order, admitting a set only if its demand
  still fits in the remaining capacity.
* :class:`GeneralGreedyWeightAlgorithm` — the deterministic analogue that
  ranks by weight (preferring still-alive sets), the baseline for benchmark
  E15.
* :class:`GeneralDensityAlgorithm` — ranks by weight per unit of demand on
  the current resource, a classic knapsack-flavoured heuristic.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping

from repro.core.general_packing import GeneralArrival, GeneralOnlineAlgorithm
from repro.core.priorities import sample_priority
from repro.core.set_system import SetId, SetInfo

__all__ = [
    "GeneralRandPrAlgorithm",
    "GeneralGreedyWeightAlgorithm",
    "GeneralDensityAlgorithm",
]


def _admit_greedily(arrival: GeneralArrival, ranked) -> FrozenSet[SetId]:
    """Admit sets in rank order while their demand fits the remaining capacity."""
    remaining = arrival.capacity
    admitted = []
    for set_id in ranked:
        demand = arrival.demand_of(set_id)
        if demand <= remaining:
            admitted.append(set_id)
            remaining -= demand
    return frozenset(admitted)


class GeneralRandPrAlgorithm(GeneralOnlineAlgorithm):
    """Generalized randPr: static R_w priorities, greedy admission per resource.

    >>> import random
    >>> from repro.core.general_packing import GeneralArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GeneralRandPrAlgorithm()
    >>> infos = {"A": SetInfo("A", 1.0, 2), "B": SetInfo("B", 1.0, 2)}
    >>> algorithm.start(infos, random.Random(1))
    >>> arrival = GeneralArrival("r", capacity=3, demands={"A": 2, "B": 2})
    >>> chosen, = algorithm.decide(arrival)  # capacity 3 admits only the winner
    >>> chosen == max(("A", "B"), key=algorithm.priority_of)
    True
    """

    name = "general-randPr"
    is_deterministic = False

    def __init__(self) -> None:
        self._priorities: Dict[SetId, float] = {}

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._priorities = {}
        for set_id in sorted(set_infos, key=repr):
            info = set_infos[set_id]
            weight = info.weight if info.weight > 0 else 1e-12
            self._priorities[set_id] = sample_priority(weight, rng)

    def priority_of(self, set_id: SetId) -> float:
        """The drawn priority of a set (for tests and introspection)."""
        return self._priorities[set_id]

    def decide(self, arrival: GeneralArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (-self._priorities.get(set_id, 0.0), repr(set_id)),
        )
        return _admit_greedily(arrival, ranked)


class _AliveTrackingGeneralAlgorithm(GeneralOnlineAlgorithm):
    """Shared bookkeeping for deterministic general-packing baselines."""

    def __init__(self) -> None:
        self._infos: Dict[SetId, SetInfo] = {}
        self._alive: Dict[SetId, bool] = {}

    def start(self, set_infos: Mapping[SetId, SetInfo], rng: random.Random) -> None:
        self._infos = dict(set_infos)
        self._alive = {set_id: True for set_id in set_infos}

    def weight(self, set_id: SetId) -> float:
        info = self._infos.get(set_id)
        return info.weight if info is not None else 1.0

    def is_alive(self, set_id: SetId) -> bool:
        return self._alive.get(set_id, True)

    def _record(self, arrival: GeneralArrival, decision: FrozenSet[SetId]) -> None:
        for set_id in arrival.parents:
            if set_id not in decision:
                self._alive[set_id] = False


class GeneralGreedyWeightAlgorithm(_AliveTrackingGeneralAlgorithm):
    """Serve the heaviest still-alive sets first at every resource.

    >>> import random
    >>> from repro.core.general_packing import GeneralArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GeneralGreedyWeightAlgorithm()
    >>> infos = {"A": SetInfo("A", 4.0, 2), "B": SetInfo("B", 1.0, 2)}
    >>> algorithm.start(infos, random.Random(0))
    >>> arrival = GeneralArrival("r", capacity=2, demands={"A": 2, "B": 1})
    >>> sorted(algorithm.decide(arrival))    # A's demand exhausts the capacity
    ['A']
    """

    name = "general-greedy-weight"
    is_deterministic = True

    def decide(self, arrival: GeneralArrival) -> FrozenSet[SetId]:
        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (
                not self.is_alive(set_id),
                -self.weight(set_id),
                repr(set_id),
            ),
        )
        decision = _admit_greedily(arrival, ranked)
        self._record(arrival, decision)
        return decision


class GeneralDensityAlgorithm(_AliveTrackingGeneralAlgorithm):
    """Serve sets by weight per unit of demand on the arriving resource.

    >>> import random
    >>> from repro.core.general_packing import GeneralArrival
    >>> from repro.core.set_system import SetInfo
    >>> algorithm = GeneralDensityAlgorithm()
    >>> infos = {"A": SetInfo("A", 4.0, 2), "B": SetInfo("B", 3.0, 2)}
    >>> algorithm.start(infos, random.Random(0))
    >>> arrival = GeneralArrival("r", capacity=2, demands={"A": 4, "B": 1})
    >>> sorted(algorithm.decide(arrival))    # density: B pays 3/unit, A only 1
    ['B']
    """

    name = "general-density"
    is_deterministic = True

    def decide(self, arrival: GeneralArrival) -> FrozenSet[SetId]:
        def density(set_id: SetId) -> float:
            demand = arrival.demand_of(set_id)
            return self.weight(set_id) / demand if demand else 0.0

        ranked = sorted(
            arrival.parents,
            key=lambda set_id: (
                not self.is_alive(set_id),
                -density(set_id),
                repr(set_id),
            ),
        )
        decision = _admit_greedily(arrival, ranked)
        self._record(arrival, decision)
        return decision
