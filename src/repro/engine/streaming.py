"""Streaming batch simulation straight from a router :class:`Trace`.

The batch engine of :mod:`repro.engine.batch` runs on a compiled
:class:`~repro.core.instance.OnlineInstance`; pushing a router trace through
it means first materializing the instance *and* a ``(trials, frames)``
priority draw table.  For the mega-trace regime of the bottleneck-router
scenario (millions of packets across tens of thousands of frames) that table
is the dominant allocation — and it is unnecessary: a frame's priority row
is only ever consulted between the arrival of its first packet and the
departure of its last.

This module compiles a :class:`~repro.network.traffic.Trace` directly into a
:class:`CompiledTrace` (the streaming sibling of
:class:`~repro.engine.compile.CompiledInstance`) and replays trials in
chunked **time windows**:

* arrivals are processed in slot order, window by window;
* a frame's ``(trials,)`` priority row is drawn when the window containing
  its first packet-slot opens and freed once its last packet-slot has
  passed, so the resident ``(trials, active_frames)`` pool tracks the
  *admission spread* of the trace — not its length (the same sliding-window
  discipline as :class:`~repro.engine.rng.WordStreams`, which PR 5
  introduced for the per-arrival kinds);
* the draws come from :class:`~repro.engine.rng.UniformStreams`, the
  chunked form of the bridge's ``random()`` replay.

**Exactness contract** (the repo's standard one, enforced by
``tests/test_router_streaming_differential.py``): trial ``b`` of
:func:`simulate_trace_batch` is bit-identical to
``simulate(trace.to_instance(), algorithm, rng=random.Random(seed + b))`` —
same completed frames, same benefit floats, for every window size.  Window
boundaries are invisible in the results.

**The draw-order caveat.**  The reference algorithms draw static priorities
in the ``repr`` order of the frame identifiers (``docs/INTERNALS-rng.md``'s
draw-order contract), while the stream processes packets in *time* order.
A frame's row must therefore be drawn no later than the first window that
needs **any later-ordered frame** — the admission sweep advances through the
columns sequentially and the pool's true bound is the spread between frame
*identifier order* and *arrival order* (``CompiledTrace.admission_slot``
makes the bound explicit, :meth:`CompiledTrace.peak_active_frames` computes
it exactly).  The stock generators' unpadded decimal identifiers
(``"f0.10" < "f0.2"``) scramble the two orders; for mega traces, generate
with ``id_pad`` set (see :mod:`repro.network.traffic`) so identifier order
tracks arrival order and the pool stays small.  Results are bit-exact either
way — only the memory bound changes.  ``docs/INTERNALS-streaming.md``
documents the dataflow, the frame lifecycle and this caveat in detail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.algorithm import OnlineAlgorithm
from repro.core.priorities import hash_priority, hash_unit_interval, sample_priority
from repro.core.set_system import InvalidSetSystemError
from repro.engine import rng as rng_bridge
from repro.engine.batch import (
    BatchResult,
    _run_greedy,
    _run_uniform_random,
)
from repro.engine.compile import ZERO_WEIGHT_CLAMP
from repro.engine.specs import (
    GREEDY_KINDS,
    PER_STEP_RANDOM_KINDS,
    AlgorithmSpec,
    resolve_spec,
)
from repro.exceptions import OspError

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "simulate_trace_batch",
    "DEFAULT_WINDOW_SLOTS",
]

#: Default time-window width (in slots) of the streaming replay.  Purely a
#: batching knob: results are bit-identical for every window size, only the
#: admission granularity (and so the transient pool occupancy) changes.
DEFAULT_WINDOW_SLOTS = 1024


@dataclass(frozen=True)
class CompiledTrace:
    """A router :class:`~repro.network.traffic.Trace` flattened for streaming.

    The per-set and per-step arrays mirror
    :class:`~repro.engine.compile.CompiledInstance` exactly — columns are the
    frame identifiers in ``repr`` order, steps are the non-empty slots in
    time order with their parent columns ascending — so the greedy and
    per-arrival replay kernels of :mod:`repro.engine.batch` run on a
    ``CompiledTrace`` unchanged.  On top of that, the trace-specific arrays
    pin each frame's **lifecycle**:

    ``step_slots``
        ``(n,)`` int64 — the time slot of each arrival step (strictly
        increasing; empty slots produce no step, exactly as
        ``Trace.to_instance`` skips them).
    ``first_slot`` / ``last_slot``
        ``(m,)`` int64 — the first/last slot containing a packet of each
        frame (``-1`` for a frame with no packets in the trace).
    ``admission_slot``
        ``(m,)`` int64 — the slot at which the streaming engine must have
        drawn column ``j``'s priority row: the draw-order contract forces a
        sequential column sweep, so this is the suffix minimum of
        ``first_slot`` over columns ``>= j``.  The gap between
        ``admission_slot`` and ``last_slot`` is each frame's pool residency.

    >>> from repro.network.traffic import AdversarialBurstGenerator
    >>> trace = AdversarialBurstGenerator(burst_size=2, packets_per_frame=2,
    ...                                   gap_slots=1).generate(num_waves=3)
    >>> compiled = compile_trace(trace)
    >>> compiled
    CompiledTrace('trace', frames=6, steps=6, packets=12)
    >>> compiled.set_ids[:2]
    ('w0.m0', 'w0.m1')
    >>> compiled.peak_active_frames()      # one wave resident at a time
    2
    """

    name: str
    set_ids: Tuple[str, ...]
    set_index: Mapping[str, int] = field(repr=False)
    weights: np.ndarray = field(repr=False)
    clamped_weights: np.ndarray = field(repr=False)
    sizes: np.ndarray = field(repr=False)
    step_indptr: np.ndarray = field(repr=False)
    step_parents: np.ndarray = field(repr=False)
    step_capacities: np.ndarray = field(repr=False)
    weight_class: np.ndarray = field(repr=False)
    priority_exponents: np.ndarray = field(repr=False)
    step_slots: np.ndarray = field(repr=False)
    first_slot: np.ndarray = field(repr=False)
    last_slot: np.ndarray = field(repr=False)
    admission_slot: np.ndarray = field(repr=False)
    num_slots: int = 0
    num_packets: int = 0
    link_capacity: int = 1

    @property
    def num_sets(self) -> int:
        """The number of frames ``m`` (columns)."""
        return len(self.set_ids)

    @property
    def num_steps(self) -> int:
        """The number of arrival steps (non-empty slots)."""
        return len(self.step_capacities)

    def peak_active_frames(self, window_slots: Optional[int] = None) -> int:
        """The exact peak of the streaming priority pool, in rows.

        The deterministic memory model of the engine: with windows of
        ``window_slots`` slots (``None``: slot-at-a-time, the tightest
        bound), column ``j`` is admitted at the start of the window
        containing ``admission_slot[j]`` and retired at the end of the
        window containing ``last_slot[j]``; this returns the maximum number
        of simultaneously resident columns.  Multiplied by the trial count
        and 8 bytes it bounds the pool allocation — the benchmark's
        memory-boundedness assertion checks this number stays flat as the
        trace grows, rather than trusting noisy RSS readings alone.
        """
        window = 1 if window_slots is None else int(window_slots)
        if window < 1:
            raise ValueError(f"window_slots must be positive, got {window}")
        pooled = self.last_slot >= 0
        if not pooled.any():
            return 0
        admit = self.admission_slot[pooled] // window
        retire = self.last_slot[pooled] // window
        windows = int(retire.max()) + 2
        delta = np.bincount(admit, minlength=windows)
        delta -= np.bincount(retire + 1, minlength=windows)
        return int(np.cumsum(delta).max())

    def __repr__(self) -> str:
        return (
            f"CompiledTrace({self.name!r}, frames={self.num_sets}, "
            f"steps={self.num_steps}, packets={self.num_packets})"
        )


def compile_trace(trace: "Trace", name: str = "") -> CompiledTrace:
    """Flatten a :class:`~repro.network.traffic.Trace` for the streaming engine.

    Produces exactly the column order, step sequence and per-set constants
    that ``compile_instance(trace.to_instance(name))`` would — without
    building the intermediate :class:`~repro.core.instance.OnlineInstance`
    object graph — plus the lifecycle arrays described on
    :class:`CompiledTrace`.  Validation mirrors the reduction path: a
    non-positive link capacity and packets of unregistered frames raise the
    same way the instance construction would.

    >>> from repro.network.traffic import PoissonBurstGenerator
    >>> import random
    >>> trace = PoissonBurstGenerator().generate(30, random.Random(0))
    >>> compiled = compile_trace(trace)
    >>> from repro.engine.compile import compile_instance
    >>> reference = compile_instance(trace.to_instance())
    >>> compiled.set_ids == reference.set_ids
    True
    >>> bool((compiled.step_parents == reference.step_parents).all())
    True
    """
    capacity = trace.link_capacity
    if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
        # The same rejection Trace.to_instance hits inside SetSystem.
        raise InvalidSetSystemError(
            f"trace link capacity must be a positive integer, got {capacity!r}"
        )

    frame_ids = tuple(sorted(trace.frames, key=repr))
    set_index: Dict[str, int] = {fid: j for j, fid in enumerate(frame_ids)}
    m = len(frame_ids)

    weights = np.fromiter(
        (float(trace.frames[fid].weight or 1.0) for fid in frame_ids),
        dtype=np.float64,
        count=m,
    )
    clamped = np.where(weights > 0.0, weights, ZERO_WEIGHT_CLAMP)

    sizes = np.zeros(m, dtype=np.int64)
    first_slot = np.full(m, -1, dtype=np.int64)
    last_slot = np.full(m, -1, dtype=np.int64)
    step_slots: List[int] = []
    indptr: List[int] = [0]
    parents_flat: List[int] = []
    num_packets = 0
    for slot, packets in enumerate(trace.slots):
        num_packets += len(packets)
        if not packets:
            continue
        columns: List[int] = []
        seen = set()
        for packet in packets:
            fid = packet.frame_id
            if fid in seen:
                continue  # simultaneous same-frame packets collapse
            seen.add(fid)
            column = set_index.get(fid)
            if column is None:
                raise OspError(
                    f"slot {slot} carries a packet of unregistered frame {fid!r}"
                )
            columns.append(column)
        columns.sort()  # ascending column order == repr order of frame ids
        cols = np.asarray(columns, dtype=np.int64)
        sizes[cols] += 1
        last_slot[cols] = slot
        step_slots.append(slot)
        parents_flat.extend(columns)
        indptr.append(len(parents_flat))

    # first_slot = slot of the first step containing the column (backward
    # sweep: the earliest write wins by being applied last).
    for step in range(len(step_slots) - 1, -1, -1):
        cols = parents_flat[indptr[step] : indptr[step + 1]]
        first_slot[cols] = step_slots[step]

    unique_weights = np.unique(weights)
    weight_class = (len(unique_weights) - 1) - np.searchsorted(unique_weights, weights)

    # Sequential-sweep admission bound: column j must be drawn when the
    # first packet of ANY column >= j arrives (suffix minimum; columns with
    # no packets inherit the bound of their successors and hold no row).
    admission = np.full(m, np.iinfo(np.int64).max, dtype=np.int64)
    suffix = np.iinfo(np.int64).max
    for j in range(m - 1, -1, -1):
        if first_slot[j] >= 0:
            suffix = min(suffix, int(first_slot[j]))
        admission[j] = suffix

    n = len(step_slots)
    return CompiledTrace(
        name=name or "trace",
        set_ids=frame_ids,
        set_index=set_index,
        weights=weights,
        clamped_weights=clamped,
        sizes=sizes,
        step_indptr=np.asarray(indptr, dtype=np.int64),
        step_parents=np.asarray(parents_flat, dtype=np.int64),
        step_capacities=np.full(n, capacity, dtype=np.int64),
        weight_class=weight_class.astype(np.int64),
        priority_exponents=1.0 / clamped,
        step_slots=np.asarray(step_slots, dtype=np.int64),
        first_slot=first_slot,
        last_slot=last_slot,
        admission_slot=admission,
        num_slots=len(trace.slots),
        num_packets=num_packets,
        link_capacity=capacity,
    )


class _StaticKeySource:
    """Sequential column-chunk supplier of negated static-priority rows.

    ``draw(start, count)`` returns the ``(rows, count)`` *negated* priority
    block of columns ``start .. start+count-1`` ("lower key wins", matching
    the batch engine's ``_run_static(-priorities)`` convention).  Randomized
    kinds consume the per-trial ``random()`` streams strictly in column
    order, which is what makes the chunked draws bit-equal to the one-shot
    ``priority_matrix`` table; ``zero_trials`` collects the trials whose
    uniforms hit exactly 0.0 (randPr redraws those, desynchronizing the
    stream — such trials are replayed scalar at the end).
    """

    def __init__(
        self, spec: AlgorithmSpec, compiled: CompiledTrace, rows: int, seed: int
    ) -> None:
        self._spec = spec
        self._compiled = compiled
        self._rows = rows
        self.zero_trials: set = set()
        kind = spec.kind
        if kind in ("randPr", "uniform-priority"):
            self._uniforms = rng_bridge.UniformStreams(seed, rows)
        elif kind == "randPr-hashed" and spec.salt is None:
            self._salts = [
                f"salt-{value:016x}" for value in rng_bridge.getrandbits64(seed, rows)
            ]
        self._clamped: Optional[List[float]] = None

    def _clamped_floats(self) -> List[float]:
        if self._clamped is None:
            self._clamped = [float(v) for v in self._compiled.clamped_weights]
        return self._clamped

    def draw(self, start: int, count: int) -> np.ndarray:
        compiled = self._compiled
        kind = self._spec.kind
        exponents = compiled.priority_exponents[start : start + count]
        if kind == "randPr":
            uniforms = self._uniforms.next(count)
            zero_rows = np.flatnonzero((uniforms == 0.0).any(axis=1))
            self.zero_trials.update(int(b) for b in zero_rows)
            return -rng_bridge.exact_pow(uniforms, exponents)
        if kind == "uniform-priority":
            return -self._uniforms.next(count)
        if kind == "randPr-hashed":
            clamped = self._clamped_floats()
            if self._spec.salt is not None:
                row = [
                    hash_priority(compiled.set_ids[j], clamped[j], salt=self._spec.salt)
                    for j in range(start, start + count)
                ]
                return -np.asarray(row, dtype=np.float64).reshape(1, count)
            block = np.empty((self._rows, count), dtype=np.float64)
            for offset, j in enumerate(range(start, start + count)):
                set_id = compiled.set_ids[j]
                block[:, offset] = [
                    hash_unit_interval(set_id, salt=salt) for salt in self._salts
                ]
            np.copyto(block, 2.0 ** -64, where=(block == 0.0))
            return -rng_bridge.exact_pow(block, exponents)
        if kind == "static-order":
            salt = self._spec.salt if self._spec.salt is not None else "static-order"
            row = [
                hash_unit_interval(compiled.set_ids[j], salt=salt)
                for j in range(start, start + count)
            ]
            return -np.asarray(row, dtype=np.float64).reshape(1, count)
        if kind == "first-listed":
            return np.arange(start, start + count, dtype=np.float64).reshape(1, count)
        if kind == "largest-set-first":
            return -compiled.sizes[start : start + count].astype(np.float64).reshape(
                1, count
            )
        if kind == "smallest-set-first":
            return compiled.sizes[start : start + count].astype(np.float64).reshape(
                1, count
            )
        raise AssertionError(f"not a static kind: {kind!r}")  # pragma: no cover


class _RowPool:
    """The sliding ``(rows, active)`` key pool with slot recycling."""

    def __init__(self, rows: int, num_columns: int) -> None:
        self._rows = rows
        self.keys = np.empty((rows, 0), dtype=np.float64)
        self.slot_of = np.full(num_columns, -1, dtype=np.int64)
        self._free: List[int] = []
        self._occupied = 0
        self.peak_occupied = 0

    @property
    def capacity(self) -> int:
        return self.keys.shape[1]

    def admit(self, columns: np.ndarray, key_block: np.ndarray) -> None:
        need = len(columns) - len(self._free)
        if need > 0:
            grown = max(self.capacity * 2, self.capacity + need, 16)
            extra = np.empty((self._rows, grown - self.capacity), dtype=np.float64)
            self._free.extend(range(self.capacity, grown))
            self.keys = np.concatenate([self.keys, extra], axis=1)
        slots = np.asarray(
            [self._free.pop() for _ in range(len(columns))], dtype=np.int64
        )
        self.slot_of[columns] = slots
        self.keys[:, slots] = key_block
        self._occupied += len(columns)
        self.peak_occupied = max(self.peak_occupied, self._occupied)

    def retire(self, column: int) -> None:
        slot = int(self.slot_of[column])
        if slot >= 0:
            self._free.append(slot)
            self.slot_of[column] = -1
            self._occupied -= 1


def _apply_contested(
    pool: _RowPool,
    groups: Dict[Tuple[int, int], List[np.ndarray]],
    completed: np.ndarray,
) -> None:
    """Scatter the drops of one window's contested steps into ``completed``.

    The exact grouped-partial-sort arithmetic of the batch engine's
    ``_run_static``, with keys gathered through the pool's slot indirection.
    """
    rows = completed.shape[0]
    contested_columns = []
    dropped_blocks = []
    for (width, step_capacity), column_lists in groups.items():
        stacked = np.stack(column_lists)  # (steps_in_group, width)
        sub = pool.keys[:, pool.slot_of[stacked]]  # (rows, steps, width)
        if step_capacity == 1:
            choice = np.argmin(sub, axis=2)
            assigned = choice[..., np.newaxis] == np.arange(width)
        else:
            order = np.argsort(sub, axis=2, kind="stable")
            assigned = np.zeros(sub.shape, dtype=bool)
            np.put_along_axis(assigned, order[..., :step_capacity], True, axis=2)
        contested_columns.append(stacked.ravel())
        dropped_blocks.append((~assigned).reshape(rows, -1))
    if contested_columns:
        all_columns = np.concatenate(contested_columns)
        all_dropped = np.concatenate(dropped_blocks, axis=1)
        trial_index, incidence_index = np.nonzero(all_dropped)
        completed[trial_index, all_columns[incidence_index]] = False


def _replay_static_trial_scalar(
    compiled: CompiledTrace, keys: np.ndarray, completed_row: np.ndarray
) -> None:
    """One trial's whole-trace static replay from an explicit key row."""
    completed_row[:] = True
    indptr = compiled.step_indptr
    parents = compiled.step_parents
    capacities = compiled.step_capacities
    for step in range(compiled.num_steps):
        columns = parents[indptr[step] : indptr[step + 1]]
        step_capacity = int(capacities[step])
        if len(columns) <= step_capacity:
            continue
        order = np.argsort(keys[columns], kind="stable")
        completed_row[columns[order[step_capacity:]]] = False


def _stream_static(
    compiled: CompiledTrace,
    spec: AlgorithmSpec,
    trials: int,
    seed: int,
    window_slots: int,
    stats: Optional[dict],
) -> np.ndarray:
    """The windowed static-priority replay; returns the completed mask.

    Decisions of a static-priority kind are state-independent, so processing
    arrivals in time order is exact: a frame is completed iff it wins every
    contested step it appears in, and the drops of each window scatter
    straight into the ``(rows, m)`` completed mask — no per-frame alive
    state exists.  The only per-frame state is the pooled priority row,
    admitted by the sequential column sweep and retired after the frame's
    last slot.
    """
    m = compiled.num_sets
    rows = 1 if spec.is_deterministic else trials
    completed = np.ones((rows, m), dtype=bool)
    source = _StaticKeySource(spec, compiled, rows, seed)
    pool = _RowPool(rows, m)

    indptr = compiled.step_indptr
    parents = compiled.step_parents
    capacities = compiled.step_capacities
    step_slots = compiled.step_slots
    last_slot = compiled.last_slot

    # Columns in retirement order (by last slot); pointer advances per window.
    pooled_columns = np.flatnonzero(last_slot >= 0)
    retire_order = pooled_columns[
        np.argsort(last_slot[pooled_columns], kind="stable")
    ]
    retire_ptr = 0
    next_col = 0
    windows = 0

    for window_start in range(0, compiled.num_slots, window_slots):
        windows += 1
        window_end = min(window_start + window_slots, compiled.num_slots)
        s0, s1 = np.searchsorted(step_slots, [window_start, window_end])
        if s0 < s1:
            window_parents = parents[indptr[s0] : indptr[s1]]
            max_needed = int(window_parents.max())
            if max_needed >= next_col:
                block = source.draw(next_col, max_needed + 1 - next_col)
                fresh = np.arange(next_col, max_needed + 1)
                holds_row = last_slot[fresh] >= 0  # packet-less frames: draw,
                pool.admit(fresh[holds_row], block[:, holds_row])  # never pool
                next_col = max_needed + 1
            groups: Dict[Tuple[int, int], List[np.ndarray]] = {}
            for step in range(s0, s1):
                columns = parents[indptr[step] : indptr[step + 1]]
                width = len(columns)
                step_capacity = int(capacities[step])
                if width > step_capacity:
                    groups.setdefault((width, step_capacity), []).append(columns)
            _apply_contested(pool, groups, completed)
        while retire_ptr < len(retire_order) and (
            last_slot[retire_order[retire_ptr]] < window_end
        ):
            pool.retire(int(retire_order[retire_ptr]))
            retire_ptr += 1

    if source.zero_trials:
        # randPr redraws an exactly-zero uniform, so those trials' streams
        # diverged from the chunked draws; replay them whole, scalar.
        clamped = source._clamped_floats()
        for trial in sorted(source.zero_trials):
            replay = random.Random(seed + trial)
            priorities = [sample_priority(weight, replay) for weight in clamped]
            keys = -np.asarray(priorities, dtype=np.float64)
            _replay_static_trial_scalar(compiled, keys, completed[trial])

    if stats is not None:
        stats["windows"] = windows
        stats["priority_rows"] = rows
        stats["peak_pooled_rows"] = pool.peak_occupied
        stats["pool_capacity_rows"] = pool.capacity
    return completed


def simulate_trace_batch(
    trace: Union["Trace", CompiledTrace],
    algorithm: Union[str, AlgorithmSpec, OnlineAlgorithm],
    trials: int,
    seed: int = 0,
    window_slots: Optional[int] = None,
    stats: Optional[dict] = None,
) -> BatchResult:
    """Run ``trials`` trials of ``algorithm`` on a trace, streaming.

    The streaming counterpart of :func:`~repro.engine.batch.simulate_batch`:
    same trial seeding (``random.Random(seed + b)``), same result type, and
    the same exactness contract — trial ``b`` is bit-identical to
    ``simulate(trace.to_instance(), algorithm, rng=random.Random(seed + b))``.
    Accepts a :class:`~repro.network.traffic.Trace` (compiled here) or a
    pre-built :class:`CompiledTrace` (reused across algorithms/seeds).

    ``window_slots`` sets the time-window width (default
    :data:`DEFAULT_WINDOW_SLOTS`); it is a batching knob only — every window
    size produces identical results.  Static-priority kinds hold their
    ``(trials, active_frames)`` row pool only for frames inside the sliding
    admission window; greedy kinds keep a single ``(1, m)`` state pair (no
    trial axis); the per-arrival ``uniform-random`` kind replays over the
    bridge's sliding word streams exactly as the batch engine does (its
    draws are already time-ordered).

    ``stats``, when a dict is passed, is filled with the run's memory model:
    ``windows``, ``priority_rows``, ``peak_pooled_rows`` (the high-water
    active-frame count) and ``pool_capacity_rows``.

    >>> import random
    >>> from repro.core.simulation import simulate
    >>> from repro.algorithms import RandPrAlgorithm
    >>> from repro.network.traffic import PoissonBurstGenerator
    >>> trace = PoissonBurstGenerator().generate(40, random.Random(3))
    >>> result = simulate_trace_batch(trace, "randPr", trials=2, seed=9)
    >>> reference = simulate(trace.to_instance(), RandPrAlgorithm(),
    ...                      rng=random.Random(9 + 1))
    >>> result.completed_sets(1) == reference.completed_sets
    True
    >>> float(result.benefits[1]) == reference.benefit
    True
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    compiled = trace if isinstance(trace, CompiledTrace) else compile_trace(trace)
    spec = resolve_spec(algorithm)
    window = DEFAULT_WINDOW_SLOTS if window_slots is None else int(window_slots)
    if window < 1:
        raise ValueError(f"window_slots must be positive, got {window}")

    if spec.kind in GREEDY_KINDS:
        completed = _run_greedy(compiled, spec.kind)
        if stats is not None:
            stats.update(windows=0, priority_rows=1, peak_pooled_rows=0,
                         pool_capacity_rows=0)
    elif spec.kind in PER_STEP_RANDOM_KINDS:
        completed = _run_uniform_random(compiled, trials, seed)
        if stats is not None:
            stats.update(windows=0, priority_rows=trials, peak_pooled_rows=0,
                         pool_capacity_rows=0)
    else:
        completed = _stream_static(compiled, spec, trials, seed, window, stats)

    # Benefit floats summed in column order — the reference engine's exact
    # arithmetic (mirrors simulate_batch).
    benefits = np.fromiter(
        (sum(compiled.weights[row].tolist()) for row in completed),
        dtype=np.float64,
        count=completed.shape[0],
    )
    counts = completed.sum(axis=1, dtype=np.int64)
    if completed.shape[0] == 1 and trials > 1:
        completed = np.repeat(completed, trials, axis=0)
        benefits = np.repeat(benefits, trials)
        counts = np.repeat(counts, trials)

    return BatchResult(
        algorithm_name=spec.name,
        instance_name=compiled.name,
        trials=trials,
        seed=seed,
        set_ids=compiled.set_ids,
        completed=completed,
        benefits=benefits,
        completed_counts=counts,
    )
