"""The statistical ``engine="fast"`` backend: counter-based PCG64 trials.

Every other engine in this package (reference, batch, streaming) is
*bit-exact*: trial ``b`` replays ``random.Random(seed + b)``'s MT19937
stream draw for draw, which forces the draw-table LRU, the scalar
``exact_pow`` loop and the word-stream replay machinery of
:mod:`repro.engine.rng`.  The fast engine drops that contract for a
**statistical** one — its per-trial benefit *distribution* must match the
exact engines', but individual trials need not — and in exchange gets:

* **counter-based RNG**: trial ``b`` owns a ``numpy.random.Generator``
  over a ``PCG64`` whose raw 128-bit state is a pure function of
  ``seed + b`` through :func:`~repro.experiments.parallel.stable_seed`
  (SHA-256, process- and platform-stable).  No draw table, no shared
  stream, no cache: any subset of trials can be drawn independently, in
  any order, on any worker — trivially parallel by construction, and the
  ``seed + b`` convention keeps chunked runs bit-identical to serial
  *fast* runs (the same invariance the exact engines get from MT19937
  seeding);
* **float32 priorities** over the int32 CSR of
  :class:`~repro.engine.compile.FastCompiledInstance`: priorities only
  *order* sets, so float32 rounding merely perturbs near-ties — a
  statistical effect the equivalence suite budgets for — while halving
  the bandwidth of the dominant ``(trials, m)`` matrix.  Benefits are
  accumulated in float64 (a matmul against the float64 weights), so means
  stay accurate at production trial counts;
* **vectorized ``**``**: the ``R_w`` inverse-CDF transform runs as numpy's
  SIMD power kernel instead of the per-element libm loop the bit-exact
  contract forces on the batch engine.

The contract is enforced, not assumed: ``tests/test_engine_fast_equivalence.py``
runs two-sample KS tests on per-trial benefit distributions and CI-overlap
checks on mean benefits against the exact batch engine (with pre-registered
tolerances, and a deliberately-biased RNG stub that must be *rejected*),
and ``tests/test_engine_fast_statistics.py`` pins the feasibility/OPT/
determinism invariants.  Because results differ from the exact engines at
the bit level, ``engine="fast"`` participates in the persistent store under
its own cache key (see :func:`repro.experiments.store.unit_key`).

Only the randomized static-priority kinds get fast-path draws
(:func:`~repro.engine.specs.is_fast_vectorized`); deterministic specs,
the greedy family and ``uniform-random`` delegate to the exact batch
engine, whose output is trivially the right distribution.

>>> from repro.core import OnlineInstance, SetSystem
>>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
...                    weights={"A": 2.0, "B": 1.0})
>>> result = simulate_fast(OnlineInstance(system, name="demo"),
...                        "randPr", trials=64, seed=0)
>>> result.trials, 0.0 < result.mean_benefit <= 3.0
(64, True)
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.instance import OnlineInstance
from repro.engine.batch import BatchResult, _run_static, simulate_batch
from repro.engine.cache import compiled_for, fast_compiled_for
from repro.engine.compile import CompiledInstance, FastCompiledInstance
from repro.engine.specs import AlgorithmSpec, is_fast_vectorized, resolve_spec

__all__ = ["simulate_fast", "trial_generator", "fast_uniforms"]

#: Trials are drawn and replayed in blocks of this many rows, bounding the
#: peak float32 priority matrix to a few tens of megabytes regardless of the
#: total trial count (the same blocking discipline as the exact engines).
_FAST_TRIAL_BLOCK = 32_768

#: A float32 uniform draw is exactly 0.0 with probability ``2**-24`` — rare,
#: but a production batch sees billions of draws.  ``0.0 ** (1/w) == 0.0``
#: would pin that set to the worst priority, where the reference algorithms
#: *redraw* zeros; clamping to the smallest positive draw value is
#: statistically indistinguishable from the redraw and stays vectorized.
_ZERO_DRAW_CLAMP = np.float32(2.0 ** -24)

_stable_seed = None


def _seed_mixer():
    """The :func:`~repro.experiments.parallel.stable_seed` mixer, lazily.

    ``repro.experiments.parallel`` is a leaf module, but importing it pulls
    in the ``repro.experiments`` package, which imports this engine back —
    resolving the function at first use instead of at module load keeps the
    layering acyclic.
    """
    global _stable_seed
    if _stable_seed is None:
        from repro.experiments.parallel import stable_seed

        _stable_seed = stable_seed
    return _stable_seed


def _pcg64_state(seed: int, trial: int) -> Tuple[int, int]:
    """The raw PCG64 ``(state, increment)`` of one trial.

    Both words are :func:`~repro.experiments.parallel.stable_seed` digests
    of ``seed + trial`` under distinct domain tags — a *counter-based*
    seeding: the state is a pure SHA-256 function of the trial index, with
    no sequential dependence between trials.  The increment is forced odd
    (PCG's LCG requires it for a full-period stream).
    """
    mix = _seed_mixer()
    counter = seed + trial
    return mix("osp-fast-state", counter), mix("osp-fast-inc", counter) | 1


def _state_dict(state: int, inc: int) -> dict:
    return {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }


def trial_generator(seed: int, trial: int) -> np.random.Generator:
    """The fast engine's RNG for one trial: a counter-seeded PCG64.

    This is the *specification* of the fast engine's randomness — the hot
    path (:func:`fast_uniforms`) replays the same states without
    constructing a generator per trial, and the determinism suite pins the
    two against each other.  Because the state derives from ``seed + trial``
    alone, the generator is reproducible across processes, platforms and
    ``PYTHONHASHSEED`` values, and trials can be drawn in any order.

    >>> a = trial_generator(7, 3).random(4)
    >>> b = trial_generator(7, 3).random(4)       # same trial: same stream
    >>> bool((a == b).all())
    True
    >>> bool((trial_generator(7, 4).random(4) == a).any())   # fresh stream
    False
    >>> c = trial_generator(10, 0).random(4)      # seed+trial is the counter
    >>> bool((trial_generator(7, 3).random(4) == c).all())
    True
    """
    bit_generator = np.random.PCG64(0)
    bit_generator.state = _state_dict(*_pcg64_state(seed, trial))
    return np.random.Generator(bit_generator)


def fast_uniforms(
    seed: int, trials: int, num_draws: int, offset: int = 0
) -> np.ndarray:
    """A ``(trials, num_draws)`` float32 uniform matrix, one trial per row.

    Row ``i`` holds the first ``num_draws`` float32 uniforms of
    :func:`trial_generator` ``(seed, offset + i)`` — the counter-based
    analogue of :func:`repro.engine.rng.uniform_matrix`, with no draw-table
    cache to invalidate and no cross-trial stream to replay in order.  The
    ``offset`` parameter lets blocked and chunked callers address absolute
    trial indices, which is what keeps fast results independent of blocking
    and worker count.

    >>> block = fast_uniforms(7, 4, 3)
    >>> block.shape, block.dtype
    ((4, 3), dtype('float32'))
    >>> bool((block[2] == trial_generator(7, 2).random(3, dtype=np.float32)).all())
    True
    >>> bool((fast_uniforms(7, 2, 3, offset=2) == block[2:]).all())
    True
    """
    matrix = np.empty((trials, num_draws), dtype=np.float32)
    # One bit generator, re-pointed at each trial's counter-derived state:
    # identical streams to per-trial ``trial_generator`` calls without the
    # per-trial SeedSequence construction cost.
    bit_generator = np.random.PCG64(0)
    generator = np.random.Generator(bit_generator)
    template = _state_dict(0, 1)
    inner = template["state"]
    for i in range(trials):
        inner["state"], inner["inc"] = _pcg64_state(seed, offset + i)
        bit_generator.state = template
        generator.random(out=matrix[i], dtype=np.float32)
    return matrix


def _fast_priorities(
    spec: AlgorithmSpec,
    fast: FastCompiledInstance,
    trials: int,
    seed: int,
    offset: int,
) -> np.ndarray:
    """The float32 priority rows of one trial block.

    ``randPr`` (and ``randPr-hashed`` with fresh per-trial salts, whose
    idealized distribution is the same iid-uniform draw the hash family
    emulates) applies the ``R_w`` inverse CDF as a vectorized float32
    power; ``uniform-priority`` uses the uniforms directly.
    """
    # Module-global lookup, deliberately: the equivalence suite's biased-RNG
    # tripwire monkeypatches ``fast_uniforms`` and must bias this path.
    uniforms = fast_uniforms(seed, trials, fast.num_sets, offset)
    if spec.kind == "uniform-priority":
        return uniforms
    np.copyto(uniforms, _ZERO_DRAW_CLAMP, where=(uniforms == 0.0))
    uniforms **= fast.priority_exponents
    return uniforms


def simulate_fast(
    instance: Union[OnlineInstance, CompiledInstance, FastCompiledInstance],
    algorithm: Union[str, AlgorithmSpec, "OnlineAlgorithm"],
    trials: int,
    seed: int = 0,
) -> BatchResult:
    """Run ``trials`` statistically-equivalent trials of ``algorithm``.

    The drop-in sibling of :func:`~repro.engine.batch.simulate_batch` under
    the statistical contract: same argument vocabulary, same
    :class:`~repro.engine.batch.BatchResult` shape, but randomized
    static-priority trials are drawn from counter-based PCG64 streams
    (float32, no MT19937 bridge, no ``exact_pow``) instead of replaying the
    reference draws.  Specs outside :func:`~repro.engine.specs.is_fast_vectorized`
    — deterministic kinds, the greedy family, ``uniform-random`` — delegate
    to the exact engine, whose output trivially has the right distribution.

    Trial ``b`` depends only on ``seed + b``, so chunked and multi-worker
    fast runs are bit-identical to serial fast runs; only the *exact-engine*
    correspondence is statistical.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> instance = OnlineInstance(system, name="demo")
    >>> fast = simulate_fast(instance, "randPr", trials=5, seed=1)
    >>> fast.algorithm_name, fast.trials
    ('randPr', 5)
    >>> deterministic = simulate_fast(instance, "greedy-weight", trials=5)
    >>> from repro.engine.batch import simulate_batch
    >>> deterministic.equals(simulate_batch(instance, "greedy-weight",
    ...                                     trials=5))      # exact delegation
    True
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    spec = resolve_spec(algorithm)
    if not is_fast_vectorized(spec):
        if isinstance(instance, FastCompiledInstance):
            raise ValueError(
                f"spec {spec.kind!r} delegates to the exact engine; pass the "
                "instance or its exact compilation, not the fast variant"
            )
        return simulate_batch(instance, spec, trials=trials, seed=seed)

    fast = fast_compiled_for(instance)
    m = fast.num_sets
    completed = np.empty((trials, m), dtype=bool)
    for start in range(0, trials, _FAST_TRIAL_BLOCK):
        stop = min(start + _FAST_TRIAL_BLOCK, trials)
        priorities = _fast_priorities(spec, fast, stop - start, seed, start)
        # Negate so that "smallest key wins" with stable column tie-breaks —
        # the same deterministic tie order as the exact engines.
        completed[start:stop] = _run_static(fast, -priorities)
    # Float64 accumulation: one matmul against the float64 weights, so the
    # per-trial benefit (and hence every mean) is as accurate as the exact
    # engine's, even though the priorities were float32.
    benefits = completed @ fast.weights
    counts = completed.sum(axis=1, dtype=np.int64)
    return BatchResult(
        algorithm_name=spec.name,
        instance_name=fast.name,
        trials=trials,
        seed=seed,
        set_ids=fast.set_ids,
        completed=completed,
        benefits=benefits,
        completed_counts=counts,
    )
