"""A per-process cache of compiled instances.

Compiling an :class:`~repro.core.instance.OnlineInstance` to numpy arrays is
pure bookkeeping, but a sweep that measures ten algorithms on the same
instance used to pay it ten times — once per ``simulate_batch`` call.  The
cache keys on instance *identity* (instances are immutable after
construction) through a :class:`weakref.WeakKeyDictionary`, so a compiled
instance lives exactly as long as the instance it mirrors and a long-running
process never accumulates arrays for dead instances.

``stats()`` exposes hit/miss counters so tests (and the sweep benchmark) can
prove the single-compilation claim rather than assume it.
"""

from __future__ import annotations

import weakref
from typing import Dict, Union

from repro.core.instance import OnlineInstance
from repro.engine.compile import (
    CompiledInstance,
    FastCompiledInstance,
    compile_instance,
    compile_instance_fast,
)

__all__ = [
    "compiled_for",
    "fast_compiled_for",
    "compile_cache_stats",
    "clear_compile_cache",
]

_CACHE: "weakref.WeakKeyDictionary[OnlineInstance, CompiledInstance]" = (
    weakref.WeakKeyDictionary()
)
#: The float32/int32 variants, keyed by the instance like :data:`_CACHE`
#: (the fast view is derived from the exact compilation, so both caches
#: populate together on a fast-engine miss).
_FAST_CACHE: "weakref.WeakKeyDictionary[OnlineInstance, FastCompiledInstance]" = (
    weakref.WeakKeyDictionary()
)
_HITS = 0
_MISSES = 0


def compiled_for(
    instance: Union[OnlineInstance, CompiledInstance]
) -> CompiledInstance:
    """The compiled form of ``instance``, compiling at most once per object.

    A :class:`CompiledInstance` argument passes straight through, so callers
    that manage their own compilation are unaffected.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> clear_compile_cache()
    >>> instance = OnlineInstance(SetSystem(sets={"A": ["u"], "B": ["u"]}))
    >>> compiled_for(instance) is compiled_for(instance)   # one compilation
    True
    >>> compiled_for(compiled_for(instance)) is compiled_for(instance)
    True
    """
    global _HITS, _MISSES
    if isinstance(instance, CompiledInstance):
        return instance
    try:
        compiled = _CACHE[instance]
    except KeyError:
        _MISSES += 1
        compiled = compile_instance(instance)
        _CACHE[instance] = compiled
        return compiled
    _HITS += 1
    return compiled


def fast_compiled_for(
    instance: Union[OnlineInstance, CompiledInstance, FastCompiledInstance]
) -> FastCompiledInstance:
    """The float32/int32 compilation of ``instance``, derived at most once.

    Mirrors :func:`compiled_for` for the statistical fast engine: an
    :class:`~repro.engine.compile.FastCompiledInstance` passes straight
    through, a :class:`~repro.engine.compile.CompiledInstance` is narrowed
    uncached (callers managing their own compilation manage both views), and
    an :class:`~repro.core.instance.OnlineInstance` goes through the weak
    per-process cache.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> clear_compile_cache()
    >>> instance = OnlineInstance(SetSystem(sets={"A": ["u"], "B": ["u"]}))
    >>> fast_compiled_for(instance) is fast_compiled_for(instance)
    True
    >>> fast_compiled_for(fast_compiled_for(instance)) is fast_compiled_for(instance)
    True
    """
    if isinstance(instance, FastCompiledInstance):
        return instance
    if isinstance(instance, CompiledInstance):
        return compile_instance_fast(instance)
    try:
        return _FAST_CACHE[instance]
    except KeyError:
        fast = compile_instance_fast(compiled_for(instance))
        _FAST_CACHE[instance] = fast
        return fast


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the per-process compile cache.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> clear_compile_cache()
    >>> instance = OnlineInstance(SetSystem(sets={"A": ["u"], "B": ["u"]}))
    >>> _ = compiled_for(instance); _ = compiled_for(instance)
    >>> compile_cache_stats()
    {'hits': 1, 'misses': 1, 'entries': 1}
    """
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_compile_cache() -> None:
    """Drop every cached compilation and reset the counters (test hook).

    >>> clear_compile_cache()
    >>> compile_cache_stats()
    {'hits': 0, 'misses': 0, 'entries': 0}
    """
    global _HITS, _MISSES
    _CACHE.clear()
    _FAST_CACHE.clear()
    _HITS = 0
    _MISSES = 0
