"""Bit-exact numpy replay of CPython ``random.Random`` streams (the RNG bridge).

The batch engine's exactness contract says trial ``b`` of a batch reproduces
``simulate(instance, algorithm, rng=random.Random(seed + b))`` bit for bit.
Until this module existed, that forced :func:`~repro.engine.specs.priority_matrix`
to *draw* its priorities through per-trial Python loops — the last serial
Python stage on the batch hot path.  This module removes it by replaying
CPython's Mersenne Twister in numpy:

* CPython's ``random.Random`` and ``numpy.random.RandomState`` wrap the very
  same MT19937 generator: a 624-word ``uint32`` state vector, the same twist,
  the same tempering, and the same 53-bit double construction
  ``((a >> 5) * 2**26 + (b >> 6)) / 2**53`` over consecutive output pairs.
  Only the *seeding* differs.  :func:`transplant_rng` therefore moves a
  ``random.Random``'s ``getstate()`` vector into a ``RandomState`` verbatim
  (same 624 words, same position), after which ``random_sample`` replays
  ``random()`` bit for bit.
* Per-trial transplanting is exact but slow (``getstate`` materializes 625
  Python ints per trial), so the batch path goes further:
  :func:`state_matrix` re-implements CPython's ``init_by_array`` seeding
  *vectorized across the trials axis* — one numpy op per scalar mixing step,
  operating on all trials at once — and :func:`uniform_matrix` then runs the
  MT19937 twist + tempering + 53-bit pairing on the whole ``(trials, 624)``
  state matrix.  The result is the exact ``(trials, draws)`` table of
  ``random.Random(seed + b).random()`` values with no per-trial Python work.
* :func:`exact_pow` applies the inverse-CDF transform ``u ** (1/w)`` with the
  same C-library ``pow`` the reference algorithms call.  numpy's vectorized
  ``**`` uses a SIMD polynomial that is *not* bit-identical to libm ``pow``
  (off by one ulp on a few percent of inputs on this stack), so the transform
  deliberately stays on scalar ``math.pow`` per element — exactness beats
  vectorization here, and the draws dominate the old cost anyway.
* Algorithms that consume the RNG *during* the arrival loop (uniform-random's
  per-arrival ``sample`` calls) cannot use a precomputed draw table, but their
  draws still bottom out in ``getrandbits`` — one raw 32-bit word per call.
  :func:`word_matrix` exposes the underlying ``(trials, words)`` table of raw
  tempered outputs, and :class:`WordStreams` layers a batched
  ``getrandbits(bits)`` replay on top of it: every trial owns an independent
  read position, a draw advances only the trials named by a mask (so the
  ragged ``_randbelow`` retry loops consume the right number of words per
  trial), and the word table grows past twist boundaries on demand.

``docs/INTERNALS-rng.md`` documents the trick, why ``getstate`` →
``set_state`` is exact, and the draw-order contract a new vectorizable
algorithm kind must satisfy.  ``tests/test_engine_rng.py`` pins every piece
against the CPython originals.

>>> import random
>>> rng = random.Random(7)
>>> bridged = transplant_rng(random.Random(7))
>>> [rng.random() for _ in range(3)] == list(bridged.random_sample(3))
True
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict
from itertools import repeat
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "transplant_rng",
    "state_matrix",
    "uniform_matrix",
    "word_matrix",
    "WordStreams",
    "UniformStreams",
    "getrandbits64",
    "exact_pow",
    "clear_uniform_cache",
    "uniform_cache_stats",
]

#: MT19937 state size in 32-bit words.
MT_N = 624

_UPPER = np.uint32(0x80000000)  # most significant w-r bits
_LOWER = np.uint32(0x7FFFFFFF)  # least significant r bits
_MATRIX_A = np.uint32(0x9908B0DF)
_MIX1 = np.uint32(1664525)
_MIX2 = np.uint32(1566083941)
_TEMPER_B = np.uint32(0x9D2C5680)
_TEMPER_C = np.uint32(0xEFC60000)

#: Trials are processed in blocks of this many rows so the transient
#: ``(MT_N, block)`` state matrices stay a few megabytes regardless of the
#: total trial count.
_TRIAL_BLOCK = 4096

#: ``i`` as a wrapping ``uint32`` scalar, precomputed for the seeding loops.
_U32_INDEX: Tuple[np.uint32, ...] = tuple(np.uint32(i) for i in range(MT_N))

_base_state_cache: List[np.ndarray] = []


def _base_state() -> np.ndarray:
    """The fixed ``init_genrand(19650218)`` state ``init_by_array`` starts from."""
    if not _base_state_cache:
        mt = np.empty(MT_N, dtype=np.uint64)
        mt[0] = 19650218
        for i in range(1, MT_N):
            mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & 0xFFFFFFFF
        _base_state_cache.append(mt.astype(np.uint32))
    return _base_state_cache[0]


def transplant_rng(source: random.Random) -> np.random.RandomState:
    """A ``numpy.random.RandomState`` continuing ``source``'s exact stream.

    Copies the 624-word MT19937 state vector *and* the stream position from
    ``source.getstate()`` into the ``RandomState``, so every subsequent
    ``random_sample`` value equals the ``random()`` value ``source`` would
    have produced — the same words in the same order through the same
    ``(a >> 5) * 2**26 + (b >> 6)`` pairing.  The two generators share no
    state afterwards: advancing one does not advance the other.

    This is the general-purpose (any seedable object, any seed type) form of
    the bridge; the batch hot path uses the vectorized :func:`state_matrix`
    seeding instead, which is an order of magnitude faster per trial.

    >>> import random
    >>> source = random.Random("any hashable seed")
    >>> mirror = transplant_rng(random.Random("any hashable seed"))
    >>> all(source.random() == value for value in mirror.random_sample(1000))
    True
    """
    _version, state, _gauss = source.getstate()
    key, position = state[:-1], state[-1]
    mirror = np.random.RandomState()
    mirror.set_state(("MT19937", np.asarray(key, dtype=np.uint32), position))
    return mirror


def _seed_digits(seed: int) -> Tuple[int, ...]:
    """``abs(seed)`` as little-endian 32-bit digits (CPython's seeding key)."""
    value = abs(int(seed))
    if value == 0:
        return (0,)
    digits = []
    while value:
        digits.append(value & 0xFFFFFFFF)
        value >>= 32
    return tuple(digits)


def _seed_group(keys: Sequence[Tuple[int, ...]]) -> np.ndarray:
    """``init_by_array`` for same-length keys, vectorized across the batch.

    Returns the ``(MT_N, len(keys))`` state matrix (trials are *columns* so
    each scalar mixing step touches one contiguous row).  This is a literal
    transcription of CPython's ``init_by_array``: the loop over the 1247
    mixing steps stays in Python, but each step is one vectorized update of
    all trials, so the per-trial cost is a handful of C operations.
    """
    batch = len(keys)
    key_length = len(keys[0])
    key_matrix = np.array(keys, dtype=np.uint32).T  # (key_length, batch)
    # init_key[j] + j, wrapped to uint32, hoisted out of the mixing loop.
    key_plus_j = [key_matrix[j] + np.uint32(j) for j in range(key_length)]

    mt = np.empty((MT_N, batch), dtype=np.uint32)
    mt[:] = _base_state()[:, np.newaxis]
    tmp = np.empty(batch, dtype=np.uint32)

    # ~6000 small ufunc calls follow; locals keep the dispatch overhead down.
    shift, xor, mul = np.right_shift, np.bitwise_xor, np.multiply
    add, sub = np.add, np.subtract
    i, j = 1, 0
    for _ in range(max(MT_N, key_length)):
        previous = mt[i - 1]
        shift(previous, 30, out=tmp)
        xor(tmp, previous, out=tmp)
        mul(tmp, _MIX1, out=tmp)
        row = mt[i]
        xor(row, tmp, out=row)
        add(row, key_plus_j[j], out=row)
        i += 1
        j += 1
        if i >= MT_N:
            mt[0] = mt[MT_N - 1]
            i = 1
        if j >= key_length:
            j = 0
    for _ in range(MT_N - 1):
        previous = mt[i - 1]
        shift(previous, 30, out=tmp)
        xor(tmp, previous, out=tmp)
        mul(tmp, _MIX2, out=tmp)
        row = mt[i]
        xor(row, tmp, out=row)
        sub(row, _U32_INDEX[i], out=row)
        i += 1
        if i >= MT_N:
            mt[0] = mt[MT_N - 1]
            i = 1
    mt[0] = _UPPER
    return mt


def _state_matrix_T(seeds: Sequence[int]) -> np.ndarray:
    """``(MT_N, len(seeds))`` state matrix, trials as columns (internal layout)."""
    digit_keys = [_seed_digits(seed) for seed in seeds]
    lengths = {len(key) for key in digit_keys}
    if len(lengths) == 1:
        return _seed_group(digit_keys)
    # Mixed digit counts (a trial range straddling a 2**32 boundary): seed
    # each same-length group vectorized, then scatter the columns back.
    mt = np.empty((MT_N, len(seeds)), dtype=np.uint32)
    groups: Dict[int, List[int]] = {}
    for index, key in enumerate(digit_keys):
        groups.setdefault(len(key), []).append(index)
    for _length, indices in groups.items():
        mt[:, indices] = _seed_group([digit_keys[index] for index in indices])
    return mt


def state_matrix(seeds: Iterable[int]) -> np.ndarray:
    """The MT19937 state vectors of ``random.Random(seed)`` for each seed.

    Row ``t`` equals the 624 words of ``random.Random(seeds[t]).getstate()``
    (at stream position 624, i.e. freshly seeded, not a single value drawn):
    the vectorized re-implementation of CPython's ``init_by_array`` produces
    the same states as the C original, word for word.  Accepts any mix of
    int seeds — zero, negative (CPython seeds by absolute value) and
    arbitrarily large values included.

    >>> import random
    >>> reference = random.Random(2024).getstate()[1][:-1]
    >>> tuple(int(w) for w in state_matrix([2024])[0]) == reference
    True
    """
    seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        return np.empty((0, MT_N), dtype=np.uint32)
    return np.ascontiguousarray(_state_matrix_T(seed_list).T)


def _twist(mt: np.ndarray, scratch_a: np.ndarray, scratch_b: np.ndarray) -> None:
    """One in-place MT19937 state regeneration over the ``(MT_N, batch)`` matrix.

    The scalar twist updates word ``i`` from words ``i+1`` and ``i+397``
    (mod 624) *sequentially*, so later words read already-regenerated values.
    The vectorized version reproduces that by splitting the index range at
    the read/write dependency boundaries (397 back-references reach freshly
    written words from index 227 on, and again from 454 on).  The two
    scratch arrays are reusable ``(MT_N - 1, batch)`` buffers.
    """
    old_last = mt[MT_N - 1].copy()
    # y <- (y_i >> 1) ^ mag01[y_i & 1] for y_i = hi(mt[i]) | lo(mt[i+1]), i < 623
    y, tmp = scratch_a, scratch_b
    np.bitwise_and(mt[1:], _LOWER, out=y)
    np.bitwise_and(mt[: MT_N - 1], _UPPER, out=tmp)
    np.bitwise_or(y, tmp, out=y)
    np.right_shift(y, 1, out=tmp)
    np.bitwise_and(y, np.uint32(1), out=y)
    np.multiply(y, _MATRIX_A, out=y)
    np.bitwise_xor(tmp, y, out=y)
    np.bitwise_xor(mt[397:], y[:227], out=mt[:227])
    np.bitwise_xor(mt[:227], y[227:454], out=mt[227:454])
    np.bitwise_xor(mt[227:396], y[454:623], out=mt[454:623])
    y_last = (old_last & _UPPER) | (mt[0] & _LOWER)
    mt[623] = mt[396] ^ (y_last >> 1) ^ ((y_last & np.uint32(1)) * _MATRIX_A)


def _temper(words: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """MT19937 output tempering into ``out`` (elementwise, shape-matched)."""
    scratch = scratch[: len(out)]
    np.right_shift(words, 11, out=out)
    np.bitwise_xor(out, words, out=out)
    np.left_shift(out, 7, out=scratch)
    np.bitwise_and(scratch, _TEMPER_B, out=scratch)
    np.bitwise_xor(out, scratch, out=out)
    np.left_shift(out, 15, out=scratch)
    np.bitwise_and(scratch, _TEMPER_C, out=scratch)
    np.bitwise_xor(out, scratch, out=out)
    np.right_shift(out, 18, out=scratch)
    np.bitwise_xor(out, scratch, out=out)
    return out


def _word_matrix_T(seeds: Sequence[int], num_words: int) -> np.ndarray:
    """``(num_words, batch)`` tempered outputs of each seed's generator.

    Column ``t`` holds the first ``num_words`` values ``genrand_uint32`` would
    return for ``random.Random(seeds[t])`` — the raw 32-bit stream underneath
    ``random()``, ``getrandbits`` and friends.  Tempering is applied only to
    the words actually requested; the untempered remainder of each twist
    block never leaves this function.
    """
    if num_words <= 0 or not seeds:
        return np.empty((max(num_words, 0), len(seeds)), dtype=np.uint32)
    mt = _state_matrix_T(seeds)
    scratch_a = np.empty((MT_N, len(seeds)), dtype=np.uint32)
    scratch_b = np.empty((MT_N - 1, len(seeds)), dtype=np.uint32)
    out = np.empty((num_words, len(seeds)), dtype=np.uint32)
    produced = 0
    while produced < num_words:
        _twist(mt, scratch_a[: MT_N - 1], scratch_b)
        take = min(MT_N, num_words - produced)
        _temper(mt[:take], out[produced : produced + take], scratch_a)
        produced += take
    return out


def word_matrix(seed: int, trials: int, words: int) -> np.ndarray:
    """The exact ``(trials, words)`` table of raw 32-bit generator outputs.

    Entry ``[b, k]`` is the ``k``-th tempered MT19937 word of
    ``random.Random(seed + b)`` — the value ``getrandbits(32)`` would return
    on its ``k``-th call, and the raw stream underneath ``random()``,
    ``getrandbits`` and ``sample``.  This is the static (fixed word count)
    form of the per-trial word stream; :class:`WordStreams` is the dynamic
    one, for consumers whose per-trial word counts are data-dependent.

    >>> import random
    >>> table = word_matrix(99, trials=2, words=4)
    >>> reference = random.Random(99 + 1)          # trial b=1
    >>> [reference.getrandbits(32) for _ in range(4)] == list(table[1])
    True
    """
    if trials < 0 or words < 0:
        raise ValueError(f"trials and words must be non-negative, got {trials}, {words}")
    produced = _word_matrix_T([seed + b for b in range(trials)], words)
    return np.ascontiguousarray(produced.T)


class WordStreams:
    """Per-trial raw MT19937 word streams with independently advancing positions.

    Stream ``b`` replays the tempered 32-bit outputs of
    ``random.Random(seed + b)`` (the batch engine's trial seeding), produced
    by the same vectorized seeding/twist/temper pipeline as
    :func:`uniform_matrix` and grown past twist boundaries on demand.  On top
    of the raw words, :meth:`getrandbits` is a *batched* replay of CPython's
    ``getrandbits(bits)`` for ``bits <= 32`` — one word consumed per call per
    selected trial — and the ``mask`` parameter is what makes data-dependent
    consumption replayable: a ``_randbelow`` retry loop advances only the
    trials that actually redraw, so per-trial positions stay in lockstep with
    the reference streams even when consumption is ragged across the batch.

    >>> import random
    >>> streams = WordStreams(seed=3, trials=2)
    >>> reference = [random.Random(3 + b) for b in range(2)]
    >>> list(streams.getrandbits(5)) == [r.getrandbits(5) for r in reference]
    True
    >>> import numpy as np
    >>> _ = streams.getrandbits(7, mask=np.array([True, False]))  # trial 0 only
    >>> streams.positions.tolist()
    [2, 1]
    """

    def __init__(self, seed: int, trials: int) -> None:
        if trials < 0:
            raise ValueError(f"trials must be non-negative, got {trials}")
        self.trials = trials
        self._mt = _state_matrix_T([seed + b for b in range(trials)])
        #: The number of words each trial has consumed so far (read-only to
        #: callers; advanced by :meth:`getrandbits`).
        self.positions = np.zeros(trials, dtype=np.int64)
        # The word window: rows [_base, _base + len) of the per-trial streams.
        # Rows every trial has consumed are discarded as the window slides
        # (see _ensure), so memory tracks the *spread* between the slowest
        # and fastest trial — not the total stream length — and long arrival
        # sequences never accumulate the whole history.
        self._base = 0
        self._words = np.empty((0, trials), dtype=np.uint32)
        self._scratch_a = np.empty((MT_N, trials), dtype=np.uint32)
        self._scratch_b = np.empty((MT_N - 1, trials), dtype=np.uint32)

    @property
    def words_produced(self) -> int:
        """How many words per trial have been generated (grows in twist blocks)."""
        return self._base + self._words.shape[0]

    def _ensure(self, words: int) -> None:
        if words - self._base <= self._words.shape[0]:
            return
        # Slide the window: rows below every trial's position can never be
        # read again.  Discarding in at-least-block-sized steps keeps the
        # copy amortized against the twist work that produced the rows.
        floor = int(self.positions.min()) if self.trials else 0
        drop = floor - self._base
        if drop >= MT_N:
            self._words = self._words[drop:].copy()
            self._base += drop
        while self._base + self._words.shape[0] < words:
            _twist(self._mt, self._scratch_a[: MT_N - 1], self._scratch_b)
            block = np.empty((MT_N, self.trials), dtype=np.uint32)
            _temper(self._mt, block, self._scratch_a)
            self._words = np.concatenate([self._words, block], axis=0)

    def getrandbits(self, bits: int, mask: "np.ndarray | None" = None) -> np.ndarray:
        """The next ``getrandbits(bits)`` value of each selected trial.

        Replays CPython exactly for ``1 <= bits <= 32``: one raw word is
        consumed and its top ``bits`` bits returned (``word >> (32 - bits)``).
        ``mask`` selects which trials draw (all of them when ``None``); only
        those trials' positions advance.  Returns an ``int64`` array of
        length ``mask.sum()``, in ascending trial order.
        """
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in 1..32, got {bits}")
        if mask is None:
            indices = np.arange(self.trials)
        else:
            indices = np.flatnonzero(mask)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        positions = self.positions[indices]
        self._ensure(int(positions.max()) + 1)
        words = self._words[positions - self._base, indices]
        self.positions[indices] = positions + 1
        return (words >> np.uint32(32 - bits)).astype(np.int64)


class UniformStreams:
    """Sequential per-trial ``random()`` streams, delivered in bounded chunks.

    Stream ``b`` replays the ``random()`` values of ``random.Random(seed + b)``
    (the batch engine's trial seeding) through the same vectorized
    seeding/twist/temper pipeline as :func:`uniform_matrix` — but instead of
    materializing the whole ``(trials, draws)`` table up front, :meth:`next`
    hands out consecutive ``(trials, count)`` chunks on demand.  All trials
    advance in lockstep, so the resident state is one ``(MT_N, trials)``
    generator matrix plus at most one partially consumed twist block — memory
    is bounded by the *chunk* size, never by how many draws the consumer
    eventually takes.  This is what lets the streaming trace engine draw
    priorities for frames as they enter the active window instead of holding
    a draw table proportional to the whole trace.

    Chunk boundaries are invisible: concatenating the chunks reproduces
    :func:`uniform_matrix` bit for bit.

    >>> import random
    >>> streams = UniformStreams(seed=11, trials=2)
    >>> chunk = np.concatenate([streams.next(3), streams.next(2)], axis=1)
    >>> reference = random.Random(11 + 1)          # trial b=1
    >>> [reference.random() for _ in range(5)] == list(chunk[1])
    True
    >>> streams.draws_produced
    5
    """

    def __init__(self, seed: int, trials: int) -> None:
        if trials < 0:
            raise ValueError(f"trials must be non-negative, got {trials}")
        self.trials = trials
        self._mt = _state_matrix_T([seed + b for b in range(trials)])
        self._scratch_a = np.empty((MT_N, trials), dtype=np.uint32)
        self._scratch_b = np.empty((MT_N - 1, trials), dtype=np.uint32)
        # Tempered words produced by the last twist but not yet paired into
        # doubles (at most MT_N - 1 rows — the only carried-over state).
        self._pending = np.empty((0, trials), dtype=np.uint32)
        #: How many ``random()`` values per trial have been handed out.
        self.draws_produced = 0

    def next(self, count: int) -> np.ndarray:
        """The next ``count`` ``random()`` values of every trial.

        Returns a writable ``(trials, count)`` float64 array; entry ``[b, k]``
        is bit-equal to the ``draws_produced + k``-th ``random()`` call of
        ``random.Random(seed + b)``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        needed = 2 * count
        blocks = [self._pending]
        have = self._pending.shape[0]
        while have < needed:
            _twist(self._mt, self._scratch_a[: MT_N - 1], self._scratch_b)
            block = np.empty((MT_N, self.trials), dtype=np.uint32)
            _temper(self._mt, block, self._scratch_a)
            blocks.append(block)
            have += MT_N
        words = np.concatenate(blocks, axis=0) if len(blocks) > 1 else self._pending
        # Copy the remainder (< MT_N rows) so the chunk-sized concatenation
        # above is freed as soon as the chunk is paired.
        self._pending = words[needed:].copy()
        words = words[:needed]
        # genrand_res53 (same arithmetic as uniform_matrix): every step is
        # exact in float64, so the pairing is bit-equal to CPython's.
        out = np.empty((count, self.trials), dtype=np.float64)
        scratch = np.empty((count, self.trials), dtype=np.uint32)
        np.right_shift(words[0::2], 5, out=scratch)
        np.multiply(scratch, 67108864.0, out=out)
        np.right_shift(words[1::2], 6, out=scratch)
        np.add(out, scratch, out=out)
        np.multiply(out, 1.0 / 9007199254740992.0, out=out)
        self.draws_produced += count
        return out.T


# ----------------------------------------------------------------------
# The cached uniform table
# ----------------------------------------------------------------------

#: LRU cache of finished uniform matrices.  A sweep measures several
#: algorithms on one instance with one (seed, trials) pair — randPr and the
#: uniform-priority ablation then share a single draw table instead of
#: re-seeding 2 x trials generators.
_UNIFORM_CACHE: "OrderedDict[Tuple[int, int, int], np.ndarray]" = OrderedDict()
_UNIFORM_CACHE_MAX_ENTRIES = 4
_UNIFORM_CACHE_MAX_BYTES = 32 << 20
_uniform_cache_hits = 0
_uniform_cache_misses = 0


def clear_uniform_cache() -> None:
    """Drop every cached uniform matrix (used by benchmarks for cold timings)."""
    global _uniform_cache_hits, _uniform_cache_misses
    _UNIFORM_CACHE.clear()
    _uniform_cache_hits = 0
    _uniform_cache_misses = 0


def uniform_cache_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the per-process uniform-matrix cache.

    >>> clear_uniform_cache()
    >>> _ = uniform_matrix(99, trials=4, draws=8)
    >>> _ = uniform_matrix(99, trials=4, draws=8)
    >>> stats = uniform_cache_stats()
    >>> stats["hits"], stats["misses"], stats["entries"]
    (1, 1, 1)
    """
    return {
        "hits": _uniform_cache_hits,
        "misses": _uniform_cache_misses,
        "entries": len(_UNIFORM_CACHE),
    }


def uniform_matrix(seed: int, trials: int, draws: int) -> np.ndarray:
    """The exact ``(trials, draws)`` table of per-trial ``random()`` values.

    Entry ``[b, k]`` is bit-equal to the ``k``-th ``random.Random(seed + b)
    .random()`` call — the batch engine's seeding convention — produced
    entirely by vectorized numpy operations (see the module docstring for the
    pipeline).  The returned array is a **read-only view of a cached table**;
    callers that need to mutate it must copy.

    >>> import random
    >>> table = uniform_matrix(123, trials=3, draws=5)
    >>> bool(table.flags.writeable)
    False
    >>> reference = random.Random(123 + 1)          # trial b=1
    >>> [reference.random() for _ in range(5)] == list(table[1])
    True
    """
    if trials < 0 or draws < 0:
        raise ValueError(f"trials and draws must be non-negative, got {trials}, {draws}")
    global _uniform_cache_hits, _uniform_cache_misses
    key = (int(seed), int(trials), int(draws))
    cached = _UNIFORM_CACHE.get(key)
    if cached is not None:
        _uniform_cache_hits += 1
        _UNIFORM_CACHE.move_to_end(key)
        return cached
    _uniform_cache_misses += 1

    # Fortran order: the generator pipeline is (draws, trials)-major, so an
    # F-ordered table makes every transpose below a zero-copy view.  Callers
    # only ever index and compare, which is layout-agnostic.
    out = np.empty((trials, draws), dtype=np.float64, order="F")
    word_scratch = None
    for start in range(0, trials, _TRIAL_BLOCK):
        stop = min(start + _TRIAL_BLOCK, trials)
        block_seeds = [seed + b for b in range(start, stop)]
        words = _word_matrix_T(block_seeds, 2 * draws)
        # genrand_res53: a = next() >> 5 (27 bits), b = next() >> 6 (26 bits),
        # value = (a * 2**26 + b) / 2**53.  Every step is exact in float64
        # (the integers stay below 2**53 and the scale is a power of two), so
        # the result is bit-equal to CPython's regardless of FMA contraction.
        if word_scratch is None or word_scratch.shape != (draws, stop - start):
            word_scratch = np.empty((draws, stop - start), dtype=np.uint32)
        high = out[start:stop].T  # (draws, block) view, C-contiguous
        np.right_shift(words[0::2], 5, out=word_scratch)
        np.multiply(word_scratch, 67108864.0, out=high)
        np.right_shift(words[1::2], 6, out=word_scratch)
        np.add(high, word_scratch, out=high)
        np.multiply(high, 1.0 / 9007199254740992.0, out=high)
    out.setflags(write=False)
    if trials and draws and out.nbytes <= _UNIFORM_CACHE_MAX_BYTES:
        _UNIFORM_CACHE[key] = out
        while len(_UNIFORM_CACHE) > _UNIFORM_CACHE_MAX_ENTRIES:
            _UNIFORM_CACHE.popitem(last=False)
    return out


def getrandbits64(seed: int, trials: int) -> List[int]:
    """Per-trial replay of ``random.Random(seed + b).getrandbits(64)``.

    ``getrandbits(64)`` consumes two 32-bit outputs little-endian (the first
    word is the low half), which is exactly the first generator pair — so the
    salted hashed-randPr variant can draw its per-trial salts from the same
    vectorized stream the priority draws come from.

    >>> import random
    >>> getrandbits64(5, trials=2) == [random.Random(5 + b).getrandbits(64)
    ...                                for b in range(2)]
    True
    """
    if trials <= 0:
        return []
    words = _word_matrix_T([seed + b for b in range(trials)], 2)
    low = words[0].astype(np.uint64)
    high = words[1].astype(np.uint64)
    return [int(value) for value in low | (high << np.uint64(32))]


def exact_pow(base: np.ndarray, exponents: Sequence[float]) -> np.ndarray:
    """Columnwise ``base ** exponents``, bit-equal to CPython's scalar ``**``.

    ``base`` is ``(trials, m)`` with entries in ``[0, 1]`` and ``exponents``
    one positive finite float per column.  numpy's vectorized ``**`` is *not*
    used: its SIMD kernel disagrees with the C library ``pow`` that
    ``float.__pow__`` calls by one ulp on a small fraction of inputs, which
    would silently break the engine's bit-exactness contract.  Instead each
    column runs ``math.pow`` (the identical libm call) in a tight scalar
    loop; columns with exponent exactly 1.0 are copied outright, which C99
    Annex F guarantees is what ``pow`` returns (``pow(x, 1) == x``) — the
    common unweighted-workload case costs nothing.

    >>> import numpy as np
    >>> table = np.array([[0.25, 0.5], [0.81, 0.9]])
    >>> exact_pow(table, [0.5, 1.0]).tolist() == [[0.25 ** 0.5, 0.5],
    ...                                           [0.81 ** 0.5, 0.9]]
    True
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 2:
        raise ValueError(f"expected a (trials, m) matrix, got shape {base.shape}")
    exponent_list = [float(exponent) for exponent in exponents]
    if len(exponent_list) != base.shape[1]:
        raise ValueError(
            f"{base.shape[1]} columns but {len(exponent_list)} exponents"
        )
    trials = base.shape[0]
    # Column-major throughout: a bridge table arrives F-ordered, so both
    # transposes here are zero-copy views; the result is returned F-ordered
    # (callers index and compare, which is layout-agnostic).
    columns = np.ascontiguousarray(base.T)
    out_T = np.empty_like(columns)
    pow_ = math.pow
    for j, exponent in enumerate(exponent_list):
        if exponent == 1.0:
            out_T[j] = columns[j]
        else:
            out_T[j] = np.fromiter(
                map(pow_, columns[j].tolist(), repeat(exponent)),
                np.float64,
                count=trials,
            )
    return out_T.T
