"""The vectorized batch simulation engine.

This subsystem trades the reference simulator's per-element Python loop for
numpy array operations over a whole batch of Monte-Carlo trials:

* :mod:`repro.engine.compile` flattens an instance once into numpy arrays;
* :mod:`repro.engine.specs` describes which algorithms can be vectorized and
  replays their randomness bit-for-bit;
* :mod:`repro.engine.batch` runs the batch and returns a
  :class:`~repro.engine.batch.BatchResult`;
* :mod:`repro.engine.streaming` runs router :class:`~repro.network.traffic.Trace`
  workloads directly, in chunked time windows with bounded memory, skipping
  the intermediate instance and the full priority draw table;
* :mod:`repro.engine.fast` is the opt-in *statistical* backend
  (``engine="fast"``): counter-based PCG64 streams and float32 priorities
  for production trial counts, pinned to the exact engines by a
  KS/CI-overlap equivalence suite instead of bit-identity.

The default engines are *exact*, not approximate: trial ``b`` of a batch
reproduces ``simulate(instance, algorithm, rng=random.Random(seed + b))``
set-for-set.  ``tests/test_engine_differential.py`` enforces that contract
against the reference simulator across every workload generator.  The fast
engine alone trades that for a statistical contract
(``tests/test_engine_fast_equivalence.py``), which is why it — unlike every
other engine — participates in the persistent store under its own cache
key.

Randomized draws run through :mod:`repro.engine.rng` — a bit-exact numpy
replay of CPython's Mersenne Twister: static-priority kinds read a
vectorized ``random()`` draw table, and per-arrival kinds
(``uniform-random``) replay ``random.sample`` over batched per-trial word
streams (``docs/INTERNALS-rng.md`` has the details).
"""

from repro.engine.batch import BatchResult, batch_from_results, simulate_batch
from repro.engine.cache import (
    clear_compile_cache,
    compile_cache_stats,
    compiled_for,
    fast_compiled_for,
)
from repro.engine.compile import (
    CompiledInstance,
    FastCompiledInstance,
    compile_instance,
    compile_instance_fast,
)
from repro.engine.fast import fast_uniforms, simulate_fast, trial_generator
from repro.engine.rng import (
    UniformStreams,
    WordStreams,
    clear_uniform_cache,
    exact_pow,
    state_matrix,
    transplant_rng,
    uniform_cache_stats,
    uniform_matrix,
    word_matrix,
)
from repro.engine.specs import (
    FAST_PRIORITY_KINDS,
    GREEDY_KINDS,
    PER_STEP_RANDOM_KINDS,
    STATIC_PRIORITY_KINDS,
    SUPPORTED_KINDS,
    AlgorithmSpec,
    is_fast_vectorized,
    priority_matrix,
    resolve_spec,
    spec_for_algorithm,
)
from repro.engine.streaming import (
    DEFAULT_WINDOW_SLOTS,
    CompiledTrace,
    compile_trace,
    simulate_trace_batch,
)

__all__ = [
    "BatchResult",
    "batch_from_results",
    "simulate_batch",
    "CompiledInstance",
    "compile_instance",
    "FastCompiledInstance",
    "compile_instance_fast",
    "compiled_for",
    "fast_compiled_for",
    "compile_cache_stats",
    "clear_compile_cache",
    "simulate_fast",
    "trial_generator",
    "fast_uniforms",
    "AlgorithmSpec",
    "FAST_PRIORITY_KINDS",
    "GREEDY_KINDS",
    "PER_STEP_RANDOM_KINDS",
    "STATIC_PRIORITY_KINDS",
    "SUPPORTED_KINDS",
    "is_fast_vectorized",
    "priority_matrix",
    "resolve_spec",
    "spec_for_algorithm",
    "transplant_rng",
    "state_matrix",
    "uniform_matrix",
    "word_matrix",
    "WordStreams",
    "UniformStreams",
    "exact_pow",
    "clear_uniform_cache",
    "uniform_cache_stats",
    "CompiledTrace",
    "compile_trace",
    "simulate_trace_batch",
    "DEFAULT_WINDOW_SLOTS",
]
