"""The vectorized batch simulation engine.

This subsystem trades the reference simulator's per-element Python loop for
numpy array operations over a whole batch of Monte-Carlo trials:

* :mod:`repro.engine.compile` flattens an instance once into numpy arrays;
* :mod:`repro.engine.specs` describes which algorithms can be vectorized and
  replays their randomness bit-for-bit;
* :mod:`repro.engine.batch` runs the batch and returns a
  :class:`~repro.engine.batch.BatchResult`;
* :mod:`repro.engine.streaming` runs router :class:`~repro.network.traffic.Trace`
  workloads directly, in chunked time windows with bounded memory, skipping
  the intermediate instance and the full priority draw table.

The engine is *exact*, not approximate: trial ``b`` of a batch reproduces
``simulate(instance, algorithm, rng=random.Random(seed + b))`` set-for-set.
``tests/test_engine_differential.py`` enforces that contract against the
reference simulator across every workload generator.

Randomized draws run through :mod:`repro.engine.rng` — a bit-exact numpy
replay of CPython's Mersenne Twister: static-priority kinds read a
vectorized ``random()`` draw table, and per-arrival kinds
(``uniform-random``) replay ``random.sample`` over batched per-trial word
streams (``docs/INTERNALS-rng.md`` has the details).
"""

from repro.engine.batch import BatchResult, batch_from_results, simulate_batch
from repro.engine.cache import clear_compile_cache, compile_cache_stats, compiled_for
from repro.engine.compile import CompiledInstance, compile_instance
from repro.engine.rng import (
    UniformStreams,
    WordStreams,
    clear_uniform_cache,
    exact_pow,
    state_matrix,
    transplant_rng,
    uniform_cache_stats,
    uniform_matrix,
    word_matrix,
)
from repro.engine.specs import (
    GREEDY_KINDS,
    PER_STEP_RANDOM_KINDS,
    STATIC_PRIORITY_KINDS,
    SUPPORTED_KINDS,
    AlgorithmSpec,
    priority_matrix,
    resolve_spec,
    spec_for_algorithm,
)
from repro.engine.streaming import (
    DEFAULT_WINDOW_SLOTS,
    CompiledTrace,
    compile_trace,
    simulate_trace_batch,
)

__all__ = [
    "BatchResult",
    "batch_from_results",
    "simulate_batch",
    "CompiledInstance",
    "compile_instance",
    "compiled_for",
    "compile_cache_stats",
    "clear_compile_cache",
    "AlgorithmSpec",
    "GREEDY_KINDS",
    "PER_STEP_RANDOM_KINDS",
    "STATIC_PRIORITY_KINDS",
    "SUPPORTED_KINDS",
    "priority_matrix",
    "resolve_spec",
    "spec_for_algorithm",
    "transplant_rng",
    "state_matrix",
    "uniform_matrix",
    "word_matrix",
    "WordStreams",
    "UniformStreams",
    "exact_pow",
    "clear_uniform_cache",
    "uniform_cache_stats",
    "CompiledTrace",
    "compile_trace",
    "simulate_trace_batch",
    "DEFAULT_WINDOW_SLOTS",
]
