"""Vectorized batch simulation of priority-based OSP algorithms.

:func:`simulate_batch` runs ``B`` independent trials of one algorithm on one
instance as numpy array operations: the per-trial state is a ``(B, m)``
alive mask and a ``(B, m)`` remaining-elements count, and each arrival step
selects the top-``b(u)`` parent sets *per trial* with one partial sort of a
``(B, σ(u))`` priority sub-matrix.  The per-element Python interpreter cost
of the reference simulator (:func:`repro.core.simulation.simulate`) is paid
once per *arrival* instead of once per *arrival per trial*.

Exactness contract (enforced by ``tests/test_engine_differential.py``):
for every supported algorithm, trial ``b`` of
``simulate_batch(instance, algorithm, trials, seed)`` completes **exactly**
the same sets as ``simulate(instance, algorithm, rng=random.Random(seed + b))``
— the randomness is replayed bit-for-bit (static-priority draws through the
vectorized :mod:`repro.engine.rng` draw table, per-step ``sample`` draws
through the bridge's batched word streams; see :mod:`repro.engine.specs` and
``docs/INTERNALS-rng.md``), the tie-breaks coincide with the reference
``(-priority, repr)`` sort key, and even the benefit floats are summed in
the reference order.  The batch engine is therefore a drop-in replacement
for aggregating ``simulate_many`` output, not a statistical approximation
of it.

When to use which engine: use the batch engine for Monte-Carlo estimation
(many trials of a supported algorithm on a fixed instance); use the
reference simulator for unsupported algorithms, for adaptive adversaries,
or when the per-step trace (``record_steps``) is needed.

``simulate_batch`` compiles through the per-process cache of
:mod:`repro.engine.cache`, so measuring many algorithms on one instance
compiles it once, not once per call.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple, Union

import numpy as np

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.core.set_system import SetId
from repro.core.statistics import statistics_from_benefits
from repro.engine import rng as rng_bridge
from repro.engine.cache import compiled_for
from repro.engine.compile import CompiledInstance
from repro.engine.specs import (
    GREEDY_KINDS,
    PER_STEP_RANDOM_KINDS,
    AlgorithmSpec,
    priority_matrix,
    resolve_spec,
)

__all__ = ["BatchResult", "simulate_batch", "batch_from_results"]


@dataclass(frozen=True, eq=False)
class BatchResult:
    """The outcome of a batch of simulation trials.

    The arrays are aligned: row ``b`` of ``completed`` is the completed-set
    mask of trial ``b`` (columns in ``set_ids`` order), ``benefits[b]`` its
    total completed weight and ``completed_counts[b]`` its completed-set
    count.  ``mean_benefit``/``std_benefit`` aggregate exactly the way the
    experiment harness aggregates ``simulate_many`` output (sample standard
    deviation, ``ddof=1``).

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> result = simulate_batch(OnlineInstance(system, name="demo"),
    ...                         "greedy-weight", trials=2, seed=0)
    >>> result
    BatchResult(algorithm='greedy-weight', trials=2, mean_benefit=2.000)
    >>> result.completed_sets(0)
    frozenset({'A'})
    >>> result.completed_count_distribution()
    {1: 2}
    """

    algorithm_name: str
    instance_name: str
    trials: int
    seed: int
    set_ids: Tuple[SetId, ...]
    completed: np.ndarray = field(repr=False)
    benefits: np.ndarray = field(repr=False)
    completed_counts: np.ndarray = field(repr=False)

    @property
    def num_sets(self) -> int:
        """The number of sets (columns of ``completed``)."""
        return len(self.set_ids)

    @property
    def mean_benefit(self) -> float:
        """The empirical mean benefit over the batch.

        Computed by :func:`~repro.core.statistics.statistics_from_benefits` —
        the same numpy reduction (hence the same float) as
        ``expected_benefit`` and ``measure_ratio`` applied to
        ``simulate_many`` output.
        """
        if not self.trials:
            return 0.0
        return statistics_from_benefits(self.benefits)[0]

    @property
    def std_benefit(self) -> float:
        """The sample standard deviation of the benefit (0 for one trial)."""
        return statistics_from_benefits(self.benefits)[1]

    @property
    def mean_completed(self) -> float:
        """The empirical mean number of completed sets."""
        return float(np.mean(self.completed_counts)) if self.trials else 0.0

    def completed_sets(self, trial: int) -> FrozenSet[SetId]:
        """The completed sets of one trial, as the reference engine reports them."""
        row = self.completed[trial]
        return frozenset(self.set_ids[j] for j in np.flatnonzero(row))

    def completed_count_distribution(self) -> Dict[int, int]:
        """Histogram of the completed-set count across trials."""
        values, counts = np.unique(self.completed_counts, return_counts=True)
        return {int(value): int(count) for value, count in zip(values, counts)}

    def equals(self, other: "BatchResult") -> bool:
        """Exact array-level equality (used by the determinism tests)."""
        return (
            self.algorithm_name == other.algorithm_name
            and self.instance_name == other.instance_name
            and self.trials == other.trials
            and self.set_ids == other.set_ids
            and np.array_equal(self.completed, other.completed)
            and np.array_equal(self.benefits, other.benefits)
            and np.array_equal(self.completed_counts, other.completed_counts)
        )

    def __repr__(self) -> str:
        return (
            f"BatchResult(algorithm={self.algorithm_name!r}, trials={self.trials}, "
            f"mean_benefit={self.mean_benefit:.3f})"
        )


def _assign_top(sub: np.ndarray, capacity: int) -> np.ndarray:
    """Boolean mask of the ``capacity`` smallest keys per row of ``sub``.

    ``sub`` holds *ascending-is-better* keys.  A stable argsort breaks ties
    by column index, which (columns being in ``repr`` order) is exactly the
    reference algorithms' ``(-priority, repr(set_id))`` tie-break.
    """
    rows, width = sub.shape
    assigned = np.zeros((rows, width), dtype=bool)
    if capacity == 1:
        # argmin returns the first minimum: the lowest column wins ties.
        choice = np.argmin(sub, axis=1)
        assigned[np.arange(rows), choice] = True
    else:
        order = np.argsort(sub, axis=1, kind="stable")
        np.put_along_axis(assigned, order[:, :capacity], True, axis=1)
    return assigned


def _run_static(compiled: CompiledInstance, keys: np.ndarray) -> np.ndarray:
    """Replay all trials of a static-priority algorithm; keys: lower wins.

    Returns the ``(rows, m)`` completed mask.  Static priorities make every
    decision independent of the simulation state, and a set is completed
    exactly when none of its elements is dropped, so the whole run reduces
    to: find the dropped parents of every *contested* step (more parents
    than capacity) and mark them dead.  Contested steps are grouped by
    (width, capacity) so each group is one batched partial sort plus one
    matmul scatter instead of a Python-level pass per step.
    """
    rows, m = keys.shape
    indptr = compiled.step_indptr
    parents = compiled.step_parents
    capacities = compiled.step_capacities
    groups: Dict[Tuple[int, int], list] = {}
    for step in range(compiled.num_steps):
        columns = parents[indptr[step] : indptr[step + 1]]
        width = len(columns)
        capacity = int(capacities[step])
        if width > capacity:
            groups.setdefault((width, capacity), []).append(columns)

    contested_columns = []
    dropped_blocks = []
    for (width, capacity), column_lists in groups.items():
        stacked = np.stack(column_lists)  # (steps_in_group, width)
        sub = keys[:, stacked]  # (rows, steps_in_group, width)
        if capacity == 1:
            choice = np.argmin(sub, axis=2)
            assigned = choice[..., np.newaxis] == np.arange(width)
        else:
            order = np.argsort(sub, axis=2, kind="stable")
            assigned = np.zeros(sub.shape, dtype=bool)
            np.put_along_axis(assigned, order[..., :capacity], True, axis=2)
        contested_columns.append(stacked.ravel())
        dropped_blocks.append((~assigned).reshape(rows, -1))

    completed = np.ones((rows, m), dtype=bool)
    if contested_columns:
        all_columns = np.concatenate(contested_columns)
        all_dropped = np.concatenate(dropped_blocks, axis=1)  # (rows, nnz)
        trial_index, incidence_index = np.nonzero(all_dropped)
        completed[trial_index, all_columns[incidence_index]] = False
    return completed


def _sample_uses_pool(width: int, take: int) -> bool:
    """Whether ``random.sample(seq_of_len_width, take)`` takes its pool branch.

    Mirrors CPython's ``setsize`` heuristic: an n-length pool list is used
    when it is smaller than a k-length selection set would be.
    """
    setsize = 21
    if take > 5:
        setsize += 4 ** math.ceil(math.log(take * 3, 4))
    return width <= setsize


#: Cap on redraw rounds per vectorized retry loop (the ``_randbelow`` bound
#: rejection and the rejection-set duplicate rejection).  Every round accepts
#: with probability > 1/2, so a trial still retrying after this many rounds
#: has probability < 2**-64 per loop — astronomically unlikely, but the
#: replay must stay exact even then: such trials *bail out* of the batch and
#: are replayed through the scalar per-trial loop instead.
_MAX_REPLAY_ROUNDS = 64

#: Trials are replayed in blocks of this many rows so the per-block word
#: streams stay a few megabytes regardless of the total trial count
#: (mirroring the draw-table blocking in :mod:`repro.engine.rng`).
_UNIFORM_TRIAL_BLOCK = 4096


def _uniform_random_steps(compiled: CompiledInstance) -> list:
    """Per-step constants of the uniform-random replay, shared by all trials.

    Steps where the element fits every parent (``take == width``) consume RNG
    but can never kill a set; steps with no parents consume nothing at all
    (the reference algorithm returns before touching the RNG) and are
    dropped here.
    """
    indptr = compiled.step_indptr
    parents = compiled.step_parents
    capacities = compiled.step_capacities
    steps = []
    for step in range(compiled.num_steps):
        columns = parents[indptr[step] : indptr[step + 1]]
        width = len(columns)
        if width == 0:
            continue
        take = min(int(capacities[step]), width)
        steps.append((columns, width, take, _sample_uses_pool(width, take)))
    return steps


def _masked_randbelow(
    streams: "rng_bridge.WordStreams",
    bound: int,
    bits: int,
    mask: np.ndarray,
    bailed: np.ndarray,
) -> np.ndarray:
    """One ``_randbelow(bound)`` per masked trial, replayed over word streams.

    Vectorizes CPython's rejection loop (``getrandbits(bits)`` until the
    value falls below ``bound``): every round redraws only the trials still
    rejecting, so each trial consumes exactly as many words as its reference
    stream.  Trials that exhaust :data:`_MAX_REPLAY_ROUNDS` are marked in
    ``bailed`` (in place) for the scalar fallback.  Returns a full-batch
    ``int64`` array; entries outside ``mask & ~bailed`` are meaningless
    placeholders (zeros — always a valid index).
    """
    position = np.zeros(streams.trials, dtype=np.int64)
    pending = mask & ~bailed
    for _round in range(_MAX_REPLAY_ROUNDS):
        if not pending.any():
            return position
        position[pending] = streams.getrandbits(bits, pending)
        pending = pending & (position >= bound)
    bailed |= pending
    position[pending] = 0  # last drawn value was rejected (>= bound): replace
    return position


def _replay_uniform_block(steps: list, seed: int, completed: np.ndarray) -> None:
    """Replay one trial block of the uniform-random algorithm, vectorized.

    ``completed`` is the block's ``(batch, m)`` all-``True`` mask, updated in
    place.  Trial ``b`` consumes the stream of ``random.Random(seed + b)``
    through a :class:`~repro.engine.rng.WordStreams` word matrix; both
    ``random.sample`` branches run as array operations over the whole batch
    at once, with masked draws keeping each trial's stream position exact
    through the ragged ``_randbelow`` retry loops.  Trials whose retry tails
    outlive :data:`_MAX_REPLAY_ROUNDS` fall back to the scalar per-trial
    replay at the end.
    """
    batch = completed.shape[0]
    streams = rng_bridge.WordStreams(seed, batch)
    rows = np.arange(batch)
    bailed = np.zeros(batch, dtype=bool)
    for columns, width, take, use_pool in steps:
        if bailed.all():
            break
        # Positions default to 0 (a valid index) wherever a trial is bailed
        # or mid-retry, so the full-batch gathers/scatters below stay in
        # bounds; bailed rows are recomputed wholesale afterwards.
        chosen = np.zeros((batch, take), dtype=np.int64)
        if use_pool:
            # random.sample's pool branch: partial Fisher-Yates over an
            # index pool, one swap per draw, batched across trials.
            pool = np.tile(np.arange(width, dtype=np.int64), (batch, 1))
            for draw in range(take):
                bound = width - draw
                position = _masked_randbelow(
                    streams, bound, bound.bit_length(), ~bailed, bailed
                )
                chosen[:, draw] = pool[rows, position]
                pool[rows, position] = pool[:, bound - 1].copy()
        else:
            # random.sample's rejection-set branch: draw positions below
            # width, redrawing duplicates.  The duplicate check compares
            # against each trial's own earlier draws of this step.
            bits = width.bit_length()
            for draw in range(take):
                position = _masked_randbelow(
                    streams, width, bits, ~bailed, bailed
                )
                if draw:
                    duplicate = ~bailed & (
                        position[:, np.newaxis] == chosen[:, :draw]
                    ).any(axis=1)
                    rounds = 0
                    while duplicate.any():
                        rounds += 1
                        if rounds > _MAX_REPLAY_ROUNDS:
                            bailed |= duplicate
                            break
                        redrawn = _masked_randbelow(
                            streams, width, bits, duplicate, bailed
                        )
                        duplicate &= ~bailed
                        position[duplicate] = redrawn[duplicate]
                        duplicate &= (
                            position[:, np.newaxis] == chosen[:, :draw]
                        ).any(axis=1)
                chosen[:, draw] = position
        if take < width:
            assigned = np.zeros((batch, width), dtype=bool)
            assigned[rows[:, np.newaxis], chosen] = True
            completed[:, columns] &= assigned
    for trial in np.flatnonzero(bailed).tolist():
        completed[trial] = True
        dropped = _replay_uniform_trial_scalar(
            steps, random.Random(seed + trial).getrandbits
        )
        if dropped:
            completed[trial, dropped] = False


def _replay_uniform_trial_scalar(steps: list, getrandbits) -> list:
    """One trial's scalar stream replay; returns the dropped column indices.

    This is the pre-vectorization replay loop, kept as the fallback for
    trials whose retry tails exceed :data:`_MAX_REPLAY_ROUNDS` (and as the
    plainest statement of what the batched version must reproduce).  It
    consumes ``getrandbits`` exactly as ``random.sample`` does: the pool swap
    for small populations, the rejection set for large ones, each index
    drawn through the ``_randbelow`` retry loop.
    """
    dropped = []
    for columns, width, take, use_pool in steps:
        if use_pool:
            pool = list(range(width))
            chosen = []
            for draw in range(take):
                bound = width - draw
                bits = bound.bit_length()
                position = getrandbits(bits)
                while position >= bound:
                    position = getrandbits(bits)
                chosen.append(pool[position])
                pool[position] = pool[bound - 1]
        else:
            bits = width.bit_length()
            selected = set()
            for draw in range(take):
                position = getrandbits(bits)
                while position >= width:
                    position = getrandbits(bits)
                while position in selected:
                    position = getrandbits(bits)
                    while position >= width:
                        position = getrandbits(bits)
                selected.add(position)
            chosen = selected
        if take < width:
            keep = set(chosen)
            dropped.extend(
                column
                for position, column in enumerate(columns.tolist())
                if position not in keep
            )
    return dropped


def _run_uniform_random(
    compiled: CompiledInstance, trials: int, seed: int
) -> np.ndarray:
    """Replay all trials of the uniform-random assignment algorithm.

    Returns the ``(trials, m)`` completed mask.  The algorithm draws fresh
    randomness at every arrival (``rng.sample`` over the parent sets), so
    there is no static priority row to precompute — per-arrival consumption
    disqualifies the kind from the precomputed ``random()`` draw table of
    :mod:`repro.engine.rng`.  But ``random.sample`` selects *positions* that
    depend only on the population size, the draw count and the RNG state,
    and every draw bottoms out in ``getrandbits`` — one raw 32-bit word per
    call — so the selection replays over the bridge's per-trial **word
    streams** instead (:class:`~repro.engine.rng.WordStreams`): the pool-swap
    branch and the rejection-set branch both run as array operations over
    all trials at once, with masked draws advancing each trial's stream
    position independently through the ragged ``_randbelow`` retry loops
    (see ``docs/INTERNALS-rng.md``).  The scalar per-trial replay survives
    only as the fallback for pathological retry tails
    (:data:`_MAX_REPLAY_ROUNDS`).  The differential suite pins the replay
    against the real ``rng.sample`` across every workload family, so a
    change to CPython's selection algorithm would fail loudly, not drift
    silently.
    """
    m = compiled.num_sets
    steps = _uniform_random_steps(compiled)
    completed = np.ones((trials, m), dtype=bool)
    for start in range(0, trials, _UNIFORM_TRIAL_BLOCK):
        stop = min(start + _UNIFORM_TRIAL_BLOCK, trials)
        _replay_uniform_block(steps, seed + start, completed[start:stop])
    return completed


def _run_greedy(compiled: CompiledInstance, kind: str) -> np.ndarray:
    """Replay one run of a state-dependent greedy algorithm (deterministic).

    Returns the ``(1, m)`` completed mask.

    The reference greedy algorithms rank parents by a lexicographic tuple of
    small discrete features; this encodes each tuple as one int64 per parent
    (features weighted by the ranges of the levels below them), so the
    "sort by tuple" becomes "sort by integer" and matches exactly.
    """
    m = compiled.num_sets
    alive = np.ones((1, m), dtype=bool)
    remaining = compiled.sizes[np.newaxis, :].copy()
    weight_class = compiled.weight_class
    sizes = compiled.sizes
    # Level ranges for the integer encoding.
    num_classes = int(weight_class.max(initial=0)) + 1
    size_range = int(sizes.max(initial=0)) + 1
    indptr = compiled.step_indptr
    parents = compiled.step_parents
    capacities = compiled.step_capacities
    for step in range(compiled.num_steps):
        columns = parents[indptr[step] : indptr[step + 1]]
        width = len(columns)
        if width == 0:
            continue
        capacity = int(capacities[step])
        if width <= capacity:
            remaining[:, columns] -= 1
            continue
        dead = (~alive[:, columns]).astype(np.int64)
        classes = weight_class[columns]
        position = np.arange(width, dtype=np.int64)
        if kind == "greedy-weight":
            # (not alive, -weight, repr)
            key = (dead * num_classes + classes) * width + position
        elif kind == "greedy-progress":
            # (not alive, remaining, -weight, repr)
            rem = remaining[:, columns]
            key = ((dead * size_range + rem) * num_classes + classes) * width + position
        else:  # greedy-committed
            # (not alive, never assigned, -weight, remaining, repr)
            rem = remaining[:, columns]
            fresh = (rem == sizes[columns]).astype(np.int64)
            key = (
                ((dead * 2 + fresh) * num_classes + classes) * size_range + rem
            ) * width + position
        assigned = _assign_top(key, capacity)
        remaining[:, columns] -= assigned
        alive[:, columns] &= assigned
    return alive & (remaining == 0)


def simulate_batch(
    instance: Union[OnlineInstance, CompiledInstance],
    algorithm: Union[str, AlgorithmSpec, OnlineAlgorithm],
    trials: int,
    seed: int = 0,
) -> BatchResult:
    """Run ``trials`` independent trials of ``algorithm`` on ``instance``.

    Parameters
    ----------
    instance:
        An :class:`~repro.core.instance.OnlineInstance` (compiled at most
        once per object via the per-process cache), or a pre-built
        :class:`~repro.engine.compile.CompiledInstance`.
    algorithm:
        An :class:`~repro.engine.specs.AlgorithmSpec`, a kind string (e.g.
        ``"randPr"``), or a reference :class:`OnlineAlgorithm` object of a
        supported type.  Unsupported algorithms raise
        :class:`~repro.exceptions.UnsupportedAlgorithmError`.
    trials / seed:
        Trial ``b`` replays the reference run with ``random.Random(seed + b)``
        — the same seeding convention as
        :func:`repro.core.simulation.simulate_many` — so paired comparisons
        agree trial by trial, not just in distribution.

    Trial ``b`` is *bit-identical* to the corresponding reference run:

    >>> import random
    >>> from repro.core import OnlineInstance, SetSystem
    >>> from repro.core.simulation import simulate
    >>> from repro.algorithms import RandPrAlgorithm
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> instance = OnlineInstance(system, name="demo")
    >>> batch = simulate_batch(instance, "randPr", trials=3, seed=7)
    >>> reference = simulate(instance, RandPrAlgorithm(), rng=random.Random(7))
    >>> batch.completed_sets(0) == reference.completed_sets
    True
    >>> float(batch.benefits[0]) == reference.benefit
    True
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    compiled = compiled_for(instance)
    spec = resolve_spec(algorithm)

    if spec.kind in GREEDY_KINDS:
        completed = _run_greedy(compiled, spec.kind)
    elif spec.kind in PER_STEP_RANDOM_KINDS:
        completed = _run_uniform_random(compiled, trials, seed)
    else:
        priorities = priority_matrix(spec, compiled, trials, seed)
        # Negate so that "smallest key wins" with stable index tie-breaks.
        completed = _run_static(compiled, -priorities)
    # Sum the weights sequentially in column order — the exact float
    # arithmetic of the reference engine's ``sum(...)`` over completed sets
    # (``tolist`` yields Python floats; ``sum`` adds them left to right).
    benefits = np.fromiter(
        (sum(compiled.weights[row].tolist()) for row in completed),
        dtype=np.float64,
        count=completed.shape[0],
    )
    counts = completed.sum(axis=1, dtype=np.int64)

    if completed.shape[0] == 1 and trials > 1:
        # Deterministic algorithms: one replayed run stands for the batch.
        completed = np.repeat(completed, trials, axis=0)
        benefits = np.repeat(benefits, trials)
        counts = np.repeat(counts, trials)

    return BatchResult(
        algorithm_name=spec.name,
        instance_name=compiled.name,
        trials=trials,
        seed=seed,
        set_ids=compiled.set_ids,
        completed=completed,
        benefits=benefits,
        completed_counts=counts,
    )


def batch_from_results(
    instance: Union[OnlineInstance, CompiledInstance],
    results: Sequence["SimulationResult"],
    seed: int = 0,
) -> BatchResult:
    """Aggregate reference :func:`simulate_many` output into a :class:`BatchResult`.

    This is the API bridge the differential tests (and engine-agnostic
    callers) rely on: both engines end up in the same result shape, so
    "exactly equal" is a single array comparison.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> from repro.core.simulation import simulate_many
    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> instance = OnlineInstance(system, name="demo")
    >>> runs = simulate_many(instance, GreedyWeightAlgorithm(), trials=2, seed=0)
    >>> bridged = batch_from_results(instance, runs)
    >>> bridged.equals(simulate_batch(instance, "greedy-weight", trials=2, seed=0))
    True
    """
    compiled = compiled_for(instance)
    if not results:
        raise ValueError("need at least one simulation result")
    trials = len(results)
    completed = np.zeros((trials, compiled.num_sets), dtype=bool)
    benefits = np.empty(trials, dtype=np.float64)
    counts = np.empty(trials, dtype=np.int64)
    for row, result in enumerate(results):
        for set_id in result.completed_sets:
            completed[row, compiled.set_index[set_id]] = True
        benefits[row] = result.benefit
        counts[row] = result.num_completed
    return BatchResult(
        algorithm_name=results[0].algorithm_name,
        instance_name=results[0].instance_name,
        trials=trials,
        seed=seed,
        set_ids=compiled.set_ids,
        completed=completed,
        benefits=benefits,
        completed_counts=counts,
    )
