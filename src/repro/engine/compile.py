"""Compile an :class:`~repro.core.instance.OnlineInstance` to numpy arrays.

The reference simulator re-walks the instance's Python object graph on every
trial; the batch engine instead compiles the instance *once* into flat numpy
arrays and then replays any number of trials against them:

* sets become columns ``0..m-1`` in the deterministic ``repr`` order of
  ``SetSystem.set_ids`` — the same order every reference algorithm uses for
  tie-breaking, which is what makes the two engines bit-for-bit comparable;
* the element→parent-set incidence becomes a CSR-style pair
  (``step_indptr``, ``step_parents``) indexed by *arrival step*, so a trial
  is a linear scan over two integer arrays;
* per-step capacities, set sizes and set weights become dense vectors.

Compilation is pure bookkeeping — no randomness, no algorithm state — so a
:class:`CompiledInstance` can be shared freely between algorithm specs,
trials and threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.instance import OnlineInstance
from repro.core.set_system import SetId

__all__ = [
    "CompiledInstance",
    "compile_instance",
    "FastCompiledInstance",
    "compile_instance_fast",
]

#: Weight used for priority draws in place of a zero declared weight; keeps
#: the engine's draws identical to ``RandPrAlgorithm.start``'s clamping.
ZERO_WEIGHT_CLAMP = 1e-12


@dataclass(frozen=True)
class CompiledInstance:
    """An :class:`OnlineInstance` flattened into numpy arrays.

    Attributes
    ----------
    set_ids:
        The set identifiers in column order (``sorted by repr``); column ``j``
        of every per-set array refers to ``set_ids[j]``.
    weights:
        ``(m,)`` float64 — the declared set weights.
    clamped_weights:
        ``(m,)`` float64 — weights with zeros replaced by
        :data:`ZERO_WEIGHT_CLAMP`, matching the reference algorithms' clamp
        for priority sampling.
    sizes:
        ``(m,)`` int64 — declared set sizes ``|S|``.
    step_indptr / step_parents:
        CSR incidence over arrival steps: the parent columns of the element
        arriving at step ``t`` are
        ``step_parents[step_indptr[t]:step_indptr[t+1]]``, in ascending
        column order (equivalently, ``repr`` order of the set identifiers).
    step_capacities:
        ``(n,)`` int64 — the capacity ``b(u)`` of the element at each step.
    weight_class:
        ``(m,)`` int64 — the *dense* rank of each column's weight in
        descending order (0 = heaviest; equal weights share a rank).  The
        greedy algorithms compare ``-weight`` as one level of a lexicographic
        key; a dense rank reproduces that comparison with integers, leaving
        later key levels (progress, identifier) to break weight ties exactly
        as the reference implementations do.
    priority_exponents:
        ``(m,)`` float64 — ``1.0 / clamped_weights``, the per-column
        inverse-CDF exponents of the ``R_w`` priority distribution.  IEEE
        division is correctly rounded, so the elementwise quotient is
        bit-equal to the scalar ``1.0 / weight`` the reference algorithms
        compute per draw (``tests/test_engine_rng.py`` pins this).

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> compiled = compile_instance(OnlineInstance(system, name="demo"))
    >>> compiled
    CompiledInstance('demo', sets=2, steps=3, incidences=4)
    >>> compiled.set_ids
    ('A', 'B')
    >>> compiled.parents_of_step(1)   # element "v" belongs to both sets
    array([0, 1])
    """

    name: str
    set_ids: Tuple[SetId, ...]
    set_index: Mapping[SetId, int] = field(repr=False)
    weights: np.ndarray = field(repr=False)
    clamped_weights: np.ndarray = field(repr=False)
    sizes: np.ndarray = field(repr=False)
    step_indptr: np.ndarray = field(repr=False)
    step_parents: np.ndarray = field(repr=False)
    step_capacities: np.ndarray = field(repr=False)
    weight_class: np.ndarray = field(repr=False)
    priority_exponents: np.ndarray = field(repr=False)

    @property
    def num_sets(self) -> int:
        """The number of sets ``m`` (columns)."""
        return len(self.set_ids)

    @property
    def num_steps(self) -> int:
        """The number of arrival steps ``n``."""
        return len(self.step_capacities)

    @property
    def num_incidences(self) -> int:
        """The total number of element-set incidences."""
        return int(self.step_indptr[-1]) if len(self.step_indptr) else 0

    def parents_of_step(self, step: int) -> np.ndarray:
        """The parent columns of the element arriving at ``step``."""
        return self.step_parents[self.step_indptr[step] : self.step_indptr[step + 1]]

    def __repr__(self) -> str:
        return (
            f"CompiledInstance({self.name!r}, sets={self.num_sets}, "
            f"steps={self.num_steps}, incidences={self.num_incidences})"
        )


def compile_instance(instance: OnlineInstance) -> CompiledInstance:
    """Flatten ``instance`` into a :class:`CompiledInstance`.

    The column order is ``instance.system.set_ids`` (deterministic ``repr``
    order), and the parents of every step are stored in ascending column
    order — so a *stable* sort of a priority row breaks ties exactly like the
    reference algorithms' ``(-priority, repr(set_id))`` sort key.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> compiled = compile_instance(OnlineInstance(system, name="demo"))
    >>> compiled.weights.tolist(), compiled.sizes.tolist()
    ([2.0, 1.0], [2, 2])
    >>> compiled.weight_class.tolist()   # dense descending weight rank
    [0, 1]
    """
    system = instance.system
    set_ids = system.set_ids
    set_index: Dict[SetId, int] = {set_id: j for j, set_id in enumerate(set_ids)}

    m = len(set_ids)
    weights = np.fromiter(
        (system.weight(set_id) for set_id in set_ids), dtype=np.float64, count=m
    )
    clamped = np.where(weights > 0.0, weights, ZERO_WEIGHT_CLAMP)
    sizes = np.fromiter(
        (system.size(set_id) for set_id in set_ids), dtype=np.int64, count=m
    )

    indptr = np.zeros(instance.num_steps + 1, dtype=np.int64)
    parents_flat = []
    capacities = np.ones(instance.num_steps, dtype=np.int64)
    for step, arrival in enumerate(instance.arrivals()):
        columns = [set_index[set_id] for set_id in arrival.parents]
        # ``SetSystem.parents`` already yields repr order == column order;
        # sort defensively so the tie-break guarantee never depends on it.
        columns.sort()
        parents_flat.extend(columns)
        indptr[step + 1] = indptr[step] + len(columns)
        capacities[step] = arrival.capacity

    # Dense descending rank of the weights: heaviest class is 0, equal
    # weights share a class.
    unique_weights = np.unique(weights)  # ascending, deduplicated
    weight_class = (len(unique_weights) - 1) - np.searchsorted(unique_weights, weights)

    return CompiledInstance(
        name=instance.name,
        set_ids=set_ids,
        set_index=set_index,
        weights=weights,
        clamped_weights=clamped,
        sizes=sizes,
        step_indptr=indptr,
        step_parents=np.asarray(parents_flat, dtype=np.int64),
        step_capacities=capacities,
        weight_class=weight_class.astype(np.int64),
        priority_exponents=1.0 / clamped,
    )


@dataclass(frozen=True)
class FastCompiledInstance:
    """The float32/int32 sibling of :class:`CompiledInstance`.

    The statistical ``engine="fast"`` backend does not replay the reference
    draws bit for bit, so it is free to trade float64 for float32 in the
    per-trial priority arithmetic (halving the bandwidth of the dominant
    ``(trials, m)`` matrices) and int64 for int32 in the CSR incidence.  Two
    deliberate exceptions keep the *measurements* trustworthy:

    * ``weights`` stays float64 — per-trial benefits are accumulated in
      float64 (a matmul against this vector), so batch means do not drift
      with the trial count;
    * the column order and the CSR layout are identical to the exact
      compilation, so the fast engine's tie-breaks follow the same
      deterministic column order (only the float32 rounding of near-tied
      priorities differs — a statistical effect, never a structural one).

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> fast = compile_instance_fast(OnlineInstance(system, name="demo"))
    >>> fast
    FastCompiledInstance('demo', sets=2, steps=3, incidences=4)
    >>> fast.priority_exponents.dtype, fast.step_parents.dtype
    (dtype('float32'), dtype('int32'))
    >>> fast.weights.dtype                  # benefits stay float64
    dtype('float64')
    """

    name: str
    set_ids: Tuple[SetId, ...]
    set_index: Mapping[SetId, int] = field(repr=False)
    weights: np.ndarray = field(repr=False)
    clamped_weights: np.ndarray = field(repr=False)
    sizes: np.ndarray = field(repr=False)
    step_indptr: np.ndarray = field(repr=False)
    step_parents: np.ndarray = field(repr=False)
    step_capacities: np.ndarray = field(repr=False)
    weight_class: np.ndarray = field(repr=False)
    priority_exponents: np.ndarray = field(repr=False)

    @property
    def num_sets(self) -> int:
        """The number of sets ``m`` (columns)."""
        return len(self.set_ids)

    @property
    def num_steps(self) -> int:
        """The number of arrival steps ``n``."""
        return len(self.step_capacities)

    @property
    def num_incidences(self) -> int:
        """The total number of element-set incidences."""
        return int(self.step_indptr[-1]) if len(self.step_indptr) else 0

    def __repr__(self) -> str:
        return (
            f"FastCompiledInstance({self.name!r}, sets={self.num_sets}, "
            f"steps={self.num_steps}, incidences={self.num_incidences})"
        )


def compile_instance_fast(compiled: "CompiledInstance") -> FastCompiledInstance:
    """Derive the float32/int32 :class:`FastCompiledInstance` view.

    Takes the exact compilation (so both engines share one instance walk) and
    narrows the priority-arithmetic arrays; see
    :class:`FastCompiledInstance` for which arrays narrow and which must not.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> exact = compile_instance(OnlineInstance(system, name="demo"))
    >>> fast = compile_instance_fast(exact)
    >>> fast.set_ids == exact.set_ids       # identical column order
    True
    >>> fast.clamped_weights.dtype
    dtype('float32')
    """
    if isinstance(compiled, OnlineInstance):
        compiled = compile_instance(compiled)
    return FastCompiledInstance(
        name=compiled.name,
        set_ids=compiled.set_ids,
        set_index=compiled.set_index,
        weights=compiled.weights,
        clamped_weights=compiled.clamped_weights.astype(np.float32),
        sizes=compiled.sizes.astype(np.int32),
        step_indptr=compiled.step_indptr.astype(np.int32),
        step_parents=compiled.step_parents.astype(np.int32),
        step_capacities=compiled.step_capacities.astype(np.int32),
        weight_class=compiled.weight_class.astype(np.int32),
        priority_exponents=compiled.priority_exponents.astype(np.float32),
    )
