"""Algorithm specifications the batch engine knows how to vectorize.

The reference simulator runs arbitrary :class:`~repro.core.algorithm.OnlineAlgorithm`
objects; the batch engine instead runs *specifications* — declarative
descriptions of the priority rule an algorithm applies — so that a whole
batch of trials can be replayed as array operations.  Three families are
supported:

* **static-priority** algorithms (randPr, its hashed variant, the static
  deterministic baselines): each trial is fully described by one priority
  row, drawn up front.  The engine reproduces the reference algorithms'
  draws *bit for bit* — same RNG seeding (``random.Random(seed + trial)``),
  same draw order (``repr`` order of the set identifiers), same zero-weight
  clamp — so a batch trial and the corresponding ``simulate_many`` trial
  make identical decisions.  The randomized kinds draw whole trial rows
  through the :mod:`repro.engine.rng` bridge (a vectorized numpy replay of
  CPython's Mersenne Twister; see ``docs/INTERNALS-rng.md`` for the
  state-transplant trick and the *draw-order contract* a kind must satisfy
  to be vectorizable this way).
* **greedy** algorithms (``greedy-weight``, ``greedy-progress``,
  ``greedy-committed``): the priority of a set depends on its alive/progress
  state, so the engine recomputes an integer sort key per arrival from the
  batch state matrices.  These are deterministic, so every trial of a batch
  is the same run ("degenerate" batches).
* **per-step-random** algorithms (``uniform-random``): a fresh draw happens
  at every arrival, so no static priority row exists — the state-dependent
  ``sample`` calls interleave with the arrival loop, which rules out the
  precomputed ``random()`` draw table (the draw-order contract of
  ``docs/INTERNALS-rng.md``).  The engine instead replays the selection over
  the bridge's per-trial **word streams**
  (:class:`~repro.engine.rng.WordStreams`): every ``sample`` draw bottoms
  out in ``getrandbits`` — one raw 32-bit word per call — so both ``sample``
  branches run as array operations over all trials at once, with masked
  draws advancing each trial's stream position independently through the
  ragged ``_randbelow`` retry loops.  A scalar per-trial replay survives
  only as the fallback for pathological retry tails.

:func:`spec_for_algorithm` maps a reference algorithm object to its spec
(or ``None`` when the algorithm cannot be vectorized — e.g. a custom hash
family), and :func:`resolve_spec` normalizes everything callers may pass to
:func:`~repro.engine.batch.simulate_batch`.

The three families partition the supported kind vocabulary:

>>> sorted(GREEDY_KINDS)
['greedy-committed', 'greedy-progress', 'greedy-weight']
>>> sorted(PER_STEP_RANDOM_KINDS)
['uniform-random']
>>> sorted(STATIC_PRIORITY_KINDS)  # doctest: +NORMALIZE_WHITESPACE
['first-listed', 'largest-set-first', 'randPr', 'randPr-hashed',
 'smallest-set-first', 'static-order', 'uniform-priority']
>>> SUPPORTED_KINDS == STATIC_PRIORITY_KINDS | GREEDY_KINDS | PER_STEP_RANDOM_KINDS
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.algorithm import OnlineAlgorithm
from repro.core.priorities import hash_priority, hash_unit_interval, sample_priority
# Submodule import (not a package-attribute read): repro.engine.rng has no
# engine-internal imports, so this resolves even while repro.engine itself is
# still initializing.
from repro.engine import rng as rng_bridge
from repro.engine.compile import CompiledInstance
from repro.exceptions import UnsupportedAlgorithmError

__all__ = [
    "AlgorithmSpec",
    "STATIC_PRIORITY_KINDS",
    "GREEDY_KINDS",
    "PER_STEP_RANDOM_KINDS",
    "SUPPORTED_KINDS",
    "FAST_PRIORITY_KINDS",
    "spec_for_algorithm",
    "resolve_spec",
    "priority_matrix",
    "is_fast_vectorized",
]

#: Kinds whose per-trial behaviour is one static priority row.
STATIC_PRIORITY_KINDS = frozenset(
    {
        "randPr",
        "uniform-priority",
        "randPr-hashed",
        "static-order",
        "first-listed",
        "largest-set-first",
        "smallest-set-first",
    }
)

#: Kinds whose priority depends on the evolving alive/progress state.
GREEDY_KINDS = frozenset({"greedy-weight", "greedy-progress", "greedy-committed"})

#: Kinds that draw fresh randomness at every arrival (no static priority row
#: exists); the engine replays the per-step draws over batched per-trial
#: word streams (:class:`repro.engine.rng.WordStreams`) instead.
PER_STEP_RANDOM_KINDS = frozenset({"uniform-random"})

SUPPORTED_KINDS = STATIC_PRIORITY_KINDS | GREEDY_KINDS | PER_STEP_RANDOM_KINDS

#: Kinds that draw fresh randomness per trial (everything else is
#: deterministic: one decision sequence shared by the whole batch).
_RANDOMIZED_KINDS = frozenset({"randPr", "uniform-priority", "uniform-random"})

#: Static-priority kinds whose randomized trials the statistical
#: ``engine="fast"`` backend (:mod:`repro.engine.fast`) draws from its own
#: counter-based PCG64 streams instead of the bit-exact MT19937 bridge.
#: Membership is necessary, not sufficient — a spec of one of these kinds is
#: only fast-vectorizable when it is actually randomized (see
#: :func:`is_fast_vectorized`): a salted ``randPr-hashed`` spec is
#: deterministic, and a deterministic spec's distribution is a point mass
#: the exact engine already produces at no extra cost.
FAST_PRIORITY_KINDS = frozenset({"randPr", "uniform-priority", "randPr-hashed"})


@dataclass(frozen=True)
class AlgorithmSpec:
    """A declarative description of a batch-runnable algorithm.

    Parameters
    ----------
    kind:
        One of :data:`SUPPORTED_KINDS`; matches the reference algorithm's
        ``name`` attribute.
    salt:
        For ``randPr-hashed``: the fixed system-wide hash salt, or ``None``
        to draw a fresh salt per trial from the trial RNG (mirroring
        ``HashedRandPrAlgorithm(salt=None)``).  For ``static-order``: the
        salt of the static hash order (default ``"static-order"``).

    >>> AlgorithmSpec("randPr").is_deterministic
    False
    >>> AlgorithmSpec("greedy-weight").is_deterministic
    True
    >>> AlgorithmSpec("warp-drive")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.exceptions.UnsupportedAlgorithmError: unknown batch algorithm kind 'warp-drive'; ...
    """

    kind: str
    salt: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SUPPORTED_KINDS:
            raise UnsupportedAlgorithmError(
                f"unknown batch algorithm kind {self.kind!r}; "
                f"supported: {sorted(SUPPORTED_KINDS)}"
            )

    @property
    def name(self) -> str:
        """The display name (matches the reference algorithm's ``name``)."""
        return self.kind

    @property
    def is_deterministic(self) -> bool:
        """Whether every trial of a batch produces the same run."""
        if self.kind == "randPr-hashed":
            return self.salt is not None
        return self.kind not in _RANDOMIZED_KINDS


def spec_for_algorithm(algorithm: OnlineAlgorithm) -> Optional[AlgorithmSpec]:
    """The :class:`AlgorithmSpec` replaying ``algorithm``, or ``None``.

    ``None`` means the algorithm cannot be vectorized (a custom hash family,
    or an algorithm type the engine does not know); callers should fall back
    to the reference simulator.

    >>> from repro.algorithms import RandPrAlgorithm
    >>> spec_for_algorithm(RandPrAlgorithm())
    AlgorithmSpec(kind='randPr', salt=None)
    >>> class CustomAlgorithm(RandPrAlgorithm):
    ...     pass                          # subclasses may override behaviour,
    >>> spec_for_algorithm(CustomAlgorithm()) is None    # so: not replayable
    True
    """
    # Imported here: the algorithm modules import repro.core, which in turn
    # re-exports the engine, so a module-level import would be circular.
    from repro.algorithms.deterministic import (
        FirstListedAlgorithm,
        LargestSetFirstAlgorithm,
        SmallestSetFirstAlgorithm,
        StaticOrderAlgorithm,
    )
    from repro.algorithms.greedy import (
        GreedyCommittedAlgorithm,
        GreedyProgressAlgorithm,
        GreedyWeightAlgorithm,
    )
    from repro.algorithms.hashed import HashedRandPrAlgorithm
    from repro.algorithms.randpr import RandPrAlgorithm
    from repro.algorithms.random_assign import (
        UniformRandomAlgorithm,
        UnweightedPriorityAlgorithm,
    )

    # Exact-type checks, not isinstance: a subclass may override start/decide,
    # and replaying it as its base class would silently produce the base
    # algorithm's results.  Unknown subclasses fall back to the reference
    # simulator instead.
    algorithm_type = type(algorithm)
    if algorithm_type is RandPrAlgorithm:
        return AlgorithmSpec("randPr")
    if algorithm_type is HashedRandPrAlgorithm:
        if getattr(algorithm, "_hash_family", None) is not None:
            return None
        return AlgorithmSpec(
            "randPr-hashed", salt=getattr(algorithm, "_configured_salt", None)
        )
    if algorithm_type is UnweightedPriorityAlgorithm:
        return AlgorithmSpec("uniform-priority")
    if algorithm_type is UniformRandomAlgorithm:
        return AlgorithmSpec("uniform-random")
    if algorithm_type is StaticOrderAlgorithm:
        return AlgorithmSpec(
            "static-order", salt=getattr(algorithm, "_salt", "static-order")
        )
    if algorithm_type is FirstListedAlgorithm:
        return AlgorithmSpec("first-listed")
    if algorithm_type is LargestSetFirstAlgorithm:
        return AlgorithmSpec("largest-set-first")
    if algorithm_type is SmallestSetFirstAlgorithm:
        return AlgorithmSpec("smallest-set-first")
    if algorithm_type is GreedyWeightAlgorithm:
        return AlgorithmSpec("greedy-weight")
    if algorithm_type is GreedyProgressAlgorithm:
        return AlgorithmSpec("greedy-progress")
    if algorithm_type is GreedyCommittedAlgorithm:
        return AlgorithmSpec("greedy-committed")
    return None


def resolve_spec(
    algorithm: Union[str, AlgorithmSpec, OnlineAlgorithm]
) -> AlgorithmSpec:
    """Normalize an algorithm argument to an :class:`AlgorithmSpec`.

    Accepts a spec, a kind string, or a reference algorithm object.  Raises
    :class:`~repro.exceptions.UnsupportedAlgorithmError` when the algorithm
    has no vectorized equivalent.

    >>> resolve_spec("greedy-weight")
    AlgorithmSpec(kind='greedy-weight', salt=None)
    >>> from repro.algorithms import RandPrAlgorithm
    >>> resolve_spec(RandPrAlgorithm()) == resolve_spec("randPr")
    True
    """
    if isinstance(algorithm, AlgorithmSpec):
        return algorithm
    if isinstance(algorithm, str):
        return AlgorithmSpec(algorithm)
    if isinstance(algorithm, OnlineAlgorithm):
        spec = spec_for_algorithm(algorithm)
        if spec is None:
            raise UnsupportedAlgorithmError(
                f"algorithm {algorithm.name!r} ({type(algorithm).__name__}) "
                "cannot run on the batch engine; use the reference simulator"
            )
        return spec
    raise UnsupportedAlgorithmError(
        f"cannot interpret {algorithm!r} as a batch algorithm"
    )


def is_fast_vectorized(spec: AlgorithmSpec) -> bool:
    """Whether the fast engine draws ``spec``'s trials from PCG64 streams.

    True exactly for the *randomized* static-priority specs — the kinds
    whose production Monte-Carlo cost is dominated by per-trial priority
    generation.  Every other supported spec (the deterministic kinds, the
    greedy family, the per-step-random ``uniform-random``) is delegated by
    :func:`repro.engine.fast.simulate_fast` to the exact batch engine,
    which trivially satisfies the statistical contract.

    >>> is_fast_vectorized(AlgorithmSpec("randPr"))
    True
    >>> is_fast_vectorized(AlgorithmSpec("randPr-hashed"))       # fresh salts
    True
    >>> is_fast_vectorized(AlgorithmSpec("randPr-hashed", salt="s"))  # fixed
    False
    >>> is_fast_vectorized(AlgorithmSpec("greedy-weight"))
    False
    """
    return spec.kind in FAST_PRIORITY_KINDS and not spec.is_deterministic


def priority_matrix(
    spec: AlgorithmSpec, compiled: CompiledInstance, trials: int, seed: int
) -> np.ndarray:
    """The per-trial priority rows for a static-priority spec.

    Returns shape ``(trials, m)`` for randomized kinds and ``(1, m)`` for
    deterministic ones (the single row broadcasts over the batch).  The
    randomized draws replay the reference algorithms exactly: trial ``b``
    uses the stream of ``random.Random(seed + b)`` and draws per set in
    column (``repr``) order, which is precisely what ``simulate_many`` +
    ``RandPrAlgorithm.start`` do.  The draws themselves come from the
    :mod:`repro.engine.rng` bridge — a vectorized, bit-exact numpy replay of
    CPython's Mersenne Twister — and the ``R_w`` inverse-CDF transform goes
    through :func:`~repro.engine.rng.exact_pow` (the same C-library ``pow``
    the scalar helpers call), so the values are bit-identical, not merely
    statistically equivalent.  ``docs/INTERNALS-rng.md`` documents the
    replay and the draw-order contract a new vectorizable kind must satisfy.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> from repro.engine.compile import compile_instance
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> compiled = compile_instance(OnlineInstance(system, name="demo"))
    >>> priority_matrix(AlgorithmSpec("randPr"), compiled, trials=3, seed=0).shape
    (3, 2)
    >>> priority_matrix(AlgorithmSpec("first-listed"), compiled, trials=3, seed=0)
    array([[-0., -1.]])
    """
    m = compiled.num_sets
    # Python floats, so the arithmetic inside the scalar helpers is the very
    # same arithmetic the reference algorithms perform.
    clamped = [float(value) for value in compiled.clamped_weights]

    if spec.kind == "randPr":
        # One vectorized draw table + the exact inverse-CDF transform.  The
        # reference draw for column j of trial b is the j-th
        # ``random.Random(seed + b).random()`` value raised to 1/w_j —
        # uniform_matrix replays the former bit for bit and exact_pow applies
        # the very libm ``pow`` the reference ``**`` calls.  sample_priority
        # additionally *redraws* a 0.0 uniform; a zero draw (probability
        # ~2^-53 per entry) desynchronizes that trial's stream from the
        # precomputed row, so such trials are replayed through the scalar
        # helper instead.
        uniforms = rng_bridge.uniform_matrix(seed, trials, m)
        matrix = rng_bridge.exact_pow(uniforms, compiled.priority_exponents)
        zero_rows = np.flatnonzero((uniforms == 0.0).any(axis=1))
        for trial in zero_rows.tolist():
            replay = random.Random(seed + trial)
            matrix[trial] = [sample_priority(weight, replay) for weight in clamped]
        return matrix

    if spec.kind == "uniform-priority":
        # The draw table *is* the priority matrix (randPr with R_1 applies
        # no transform at all).  Copy: the cached bridge table is read-only.
        return rng_bridge.uniform_matrix(seed, trials, m).copy()

    if spec.kind == "randPr-hashed":
        if spec.salt is not None:
            row = [
                hash_priority(set_id, weight, salt=spec.salt)
                for set_id, weight in zip(compiled.set_ids, clamped)
            ]
            return np.asarray(row, dtype=np.float64).reshape(1, m)
        # Fresh salt per trial, replayed through the bridge
        # (``getrandbits(64)`` is the first generator pair); the per-set
        # SHA-256 evaluations dominate and have no vectorized form, so the
        # hash loop stays scalar while the inverse-CDF transform shares
        # exact_pow with the randPr path.
        salts = rng_bridge.getrandbits64(seed, trials)
        uniforms = np.empty((trials, m), dtype=np.float64)
        for trial, salt_value in enumerate(salts):
            salt = f"salt-{salt_value:016x}"
            uniforms[trial] = [
                hash_unit_interval(set_id, salt=salt) for set_id in compiled.set_ids
            ]
        # hash_priority nudges an exactly-zero hash away from the origin.
        np.copyto(uniforms, 2.0 ** -64, where=(uniforms == 0.0))
        return rng_bridge.exact_pow(uniforms, compiled.priority_exponents)

    if spec.kind == "static-order":
        salt = spec.salt if spec.salt is not None else "static-order"
        row = [hash_unit_interval(set_id, salt=salt) for set_id in compiled.set_ids]
        return np.asarray(row, dtype=np.float64).reshape(1, m)

    if spec.kind == "first-listed":
        # Parents arrive in column order; preferring low columns reproduces
        # "take the first b(u) parents as announced".
        return (-np.arange(m, dtype=np.float64)).reshape(1, m)

    if spec.kind == "largest-set-first":
        return compiled.sizes.astype(np.float64).reshape(1, m)

    if spec.kind == "smallest-set-first":
        return (-compiled.sizes.astype(np.float64)).reshape(1, m)

    raise UnsupportedAlgorithmError(
        f"kind {spec.kind!r} has no static priority matrix"
    )
