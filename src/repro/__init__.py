"""Online Set Packing and Competitive Scheduling of Multi-Part Tasks.

A full reproduction of Emek, Halldórsson, Mansour, Patt-Shamir,
Radhakrishnan and Rawitz, PODC 2010: the online set packing problem, the
randomized priority algorithm randPr with its distributed (hash-based)
implementation, the deterministic and randomized lower-bound constructions,
the offline solvers needed to measure competitive ratios, and the
bottleneck-router / multi-hop networking substrates that motivate the model.

Quickstart::

    import random
    from repro import RandPrAlgorithm, simulate
    from repro.workloads import random_online_instance

    instance = random_online_instance(
        num_sets=40, num_elements=80, set_size_range=(2, 4), rng=random.Random(1)
    )
    result = simulate(instance, RandPrAlgorithm(), rng=random.Random(2))
    print(result.benefit, "of", instance.system.total_weight())
"""

from repro.algorithms import (
    FirstListedAlgorithm,
    GreedyCommittedAlgorithm,
    GreedyProgressAlgorithm,
    GreedyWeightAlgorithm,
    HashedRandPrAlgorithm,
    HedgingAlgorithm,
    LargestSetFirstAlgorithm,
    ProportionalShareAlgorithm,
    RandPrAlgorithm,
    SmallestSetFirstAlgorithm,
    StaticOrderAlgorithm,
    UniformRandomAlgorithm,
    UnweightedPriorityAlgorithm,
    default_algorithm_suite,
)
from repro.core import (
    ElementArrival,
    InstanceBuilder,
    OnlineAlgorithm,
    OnlineInstance,
    SetInfo,
    SetSystem,
    SimulationResult,
    BatchResult,
    CompiledInstance,
    bound_report,
    compile_instance,
    compute_statistics,
    corollary6_upper_bound,
    instance_from_bursts,
    simulate,
    simulate_batch,
    simulate_many,
    theorem1_upper_bound,
    theorem3_lower_bound,
)
from repro.exceptions import (
    AlgorithmProtocolError,
    ConstructionError,
    InvalidInstanceError,
    InvalidSetSystemError,
    OspError,
    SolverError,
    UnsupportedAlgorithmError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "FirstListedAlgorithm",
    "GreedyCommittedAlgorithm",
    "GreedyProgressAlgorithm",
    "GreedyWeightAlgorithm",
    "HashedRandPrAlgorithm",
    "HedgingAlgorithm",
    "LargestSetFirstAlgorithm",
    "ProportionalShareAlgorithm",
    "RandPrAlgorithm",
    "SmallestSetFirstAlgorithm",
    "StaticOrderAlgorithm",
    "UniformRandomAlgorithm",
    "UnweightedPriorityAlgorithm",
    "default_algorithm_suite",
    # core
    "ElementArrival",
    "InstanceBuilder",
    "OnlineAlgorithm",
    "OnlineInstance",
    "SetInfo",
    "SetSystem",
    "SimulationResult",
    "BatchResult",
    "CompiledInstance",
    "bound_report",
    "compile_instance",
    "compute_statistics",
    "corollary6_upper_bound",
    "instance_from_bursts",
    "simulate",
    "simulate_batch",
    "simulate_many",
    "theorem1_upper_bound",
    "theorem3_lower_bound",
    # exceptions
    "AlgorithmProtocolError",
    "ConstructionError",
    "InvalidInstanceError",
    "InvalidSetSystemError",
    "OspError",
    "SolverError",
    "UnsupportedAlgorithmError",
]
