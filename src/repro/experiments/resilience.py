"""Fault-tolerant execution of independent work units: the supervised pool.

:func:`~repro.experiments.parallel.map_ordered` is the right primitive when
nothing fails: it is thin, deterministic and exact.  But one OOM-killed
worker turns a whole sweep into a ``BrokenProcessPool`` crash, a transient
exception aborts instead of retrying, and a hung unit stalls everything —
there is no timeout.  This module adds the supervised variant,
:func:`map_resilient`, which keeps the two properties that matter —
**submission-order results** and **bit-identical values** — while surviving
arbitrary fault schedules:

* **Worker crashes** (``BrokenProcessPool``): the pool is rebuilt and only
  the *lost in-flight* units are requeued; completed results are kept.
  Because the crashed worker cannot be identified among its siblings, every
  unit that was in flight at the moment of collapse is charged one
  ``worker-crash`` attempt — a safe upper bound on work, never on results.
* **Transient per-unit failures**: an attempt that raises is retried up to
  :attr:`RetryPolicy.max_attempts` times with exponential backoff.  The
  backoff jitter is derived via
  :func:`~repro.experiments.parallel.stable_seed` — never ``random.random()``
  or the wall clock — so a retried schedule is itself deterministic and can
  never perturb results (units are pure functions of their inputs; retrying
  one recomputes the identical value).
* **Hung units**: a per-unit wall-clock timeout (pool mode only — an
  in-process unit cannot be preempted).  The deadline is measured from
  submission; in-flight work is capped at the pool size so submission and
  execution start coincide.  On expiry the pool is killed and rebuilt, the
  timed-out unit is charged a ``timeout`` attempt, and its innocent
  in-flight siblings are requeued *without* an attempt charge.
* **Poison units**: a unit that fails ``max_attempts`` times is quarantined
  into a structured :class:`FailureReport` instead of aborting the map —
  the healthy units complete and the caller decides what a partial result
  means (the sweep harness completes with the healthy rows; the runner CLI
  exits nonzero with a JSON failure summary).
* **Repeated pool collapse**: after :attr:`RetryPolicy.max_pool_rebuilds`
  rebuilds the map degrades gracefully to in-process execution for the
  remaining units — slower, but immune to pool pathology.

Fault injection for the chaos tests lives in
:mod:`repro.experiments.faults`; every attempt routes through
:func:`~repro.experiments.faults.maybe_inject`, which is a no-op unless the
``OSP_FAULT_PLAN`` environment variable carries a plan (the env var is what
crosses the process boundary into pool workers).

>>> policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
>>> outcome = map_resilient(len, ["a", "bb", "ccc"], policy=policy)
>>> outcome.results
[1, 2, 3]
>>> outcome.ok
True
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.experiments import faults
from repro.experiments.parallel import resolve_workers, stable_seed

__all__ = [
    "RetryPolicy",
    "AttemptFailure",
    "FailureReport",
    "ResilientMapResult",
    "map_resilient",
]

T = TypeVar("T")
R = TypeVar("R")

#: Supervisor tick: the longest the event loop blocks before re-checking
#: per-unit deadlines and backoff release times.
_TICK_SECONDS = 0.25


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised pool retries, times out and degrades.

    ``max_attempts`` bounds the tries per unit (1 = no retry).  ``timeout``
    is the per-unit wall-clock budget in seconds (``None`` disables it;
    enforced in pool mode only).  The backoff before attempt ``n`` is
    ``backoff_base * 2**(n - 2)`` capped at ``backoff_cap``, scaled by a
    deterministic jitter in ``[0.5, 1.0)`` derived from
    :func:`~repro.experiments.parallel.stable_seed` — retries never consult
    the wall clock or a global RNG, so a faulted schedule stays a pure
    function of ``(jitter_seed, unit, attempt)``.  After
    ``max_pool_rebuilds`` pool collapses the remaining units run in-process.

    >>> policy = RetryPolicy(max_attempts=3)
    >>> policy.backoff_seconds(unit_index=4, attempt=2) == \\
    ...     policy.backoff_seconds(unit_index=4, attempt=2)
    True
    >>> 0.0 <= policy.backoff_seconds(0, 2) < policy.backoff_cap
    True
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter_seed: int = 0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be non-negative")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_seconds(self, unit_index: int, attempt: int) -> float:
        """The deterministic pause before running ``attempt`` of one unit.

        ``attempt`` counts from 1; the first attempt never waits.
        """
        if attempt <= 1 or self.backoff_base == 0.0:
            return 0.0
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 2)))
        jitter = (
            stable_seed("retry-jitter", self.jitter_seed, unit_index, attempt) % 1024
        ) / 1024.0
        return base * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt of one unit: what went wrong, on which try.

    ``kind`` is ``"exception"`` (the unit raised), ``"timeout"`` (the unit
    exceeded the policy's wall-clock budget) or ``"worker-crash"`` (the unit
    was in flight when its process pool collapsed).
    """

    attempt: int
    kind: str
    error: str

    def as_dict(self) -> Dict[str, object]:
        return {"attempt": self.attempt, "kind": self.kind, "error": self.error}


@dataclass(frozen=True)
class FailureReport:
    """A quarantined unit: every attempt failed, here is the evidence.

    >>> report = FailureReport(index=3, label="n=40[instance 1]", attempts=(
    ...     AttemptFailure(1, "exception", "ValueError('boom')"),))
    >>> report.as_dict()["label"]
    'n=40[instance 1]'
    """

    index: int
    label: str
    attempts: Tuple[AttemptFailure, ...]

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable rendering (the runner's failure summary)."""
        return {
            "index": self.index,
            "label": self.label,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
        }


@dataclass
class ResilientMapResult:
    """Everything :func:`map_resilient` observed, aligned with the items.

    ``results[i]`` is the value of item ``i``, or ``None`` when the unit was
    quarantined (its :class:`FailureReport` is in ``failures``).  ``ok`` is
    the no-failures predicate; ``pool_rebuilds``/``degraded``/``retries``
    describe the fault schedule the map survived.
    """

    results: List[Optional[object]]
    failures: List[FailureReport] = field(default_factory=list)
    pool_rebuilds: int = 0
    degraded: bool = False
    retries: int = 0

    @property
    def ok(self) -> bool:
        """Whether every unit produced a result."""
        return not self.failures


def _call_unit(function: Callable[[T], R], index: int, attempt: int, item: T) -> R:
    """Run one attempt of one unit, with fault-injection hooks around it.

    Top-level (not a closure) so process-pool workers can unpickle it.  The
    hooks are no-ops unless ``OSP_FAULT_PLAN`` is set — the chaos tests use
    them to kill this very process, raise transient errors, sleep past the
    timeout or garble store bytes, at deterministic ``(unit, attempt)``
    coordinates.
    """
    faults.maybe_inject(index, attempt, stage="start")
    result = function(item)
    faults.maybe_inject(index, attempt, stage="end")
    return result


class _UnitState:
    """Supervisor-side bookkeeping for one unit."""

    __slots__ = ("index", "attempts", "failures")

    def __init__(self, index: int) -> None:
        self.index = index
        self.attempts = 0  # failed attempts charged so far
        self.failures: List[AttemptFailure] = []


def _run_in_process(
    function: Callable[[T], R],
    items: Sequence[T],
    pending: Sequence[Tuple[int, int]],
    states: Dict[int, _UnitState],
    labels: Sequence[str],
    policy: RetryPolicy,
    outcome: ResilientMapResult,
) -> None:
    """Serial retry loop for ``pending`` ``(index, attempt)`` units.

    Used for ``workers=1`` maps and as the degraded fallback after repeated
    pool collapse.  No timeout is enforced — an in-process unit cannot be
    preempted — but retries and quarantine behave exactly as in pool mode.
    """
    for index, attempt in pending:
        state = states[index]
        while True:
            delay = policy.backoff_seconds(index, attempt)
            if delay > 0.0:
                time.sleep(delay)
            try:
                outcome.results[index] = _call_unit(
                    function, index, attempt, items[index]
                )
                break
            except Exception as exc:  # noqa: BLE001 — every failure is recorded
                state.attempts += 1
                state.failures.append(
                    AttemptFailure(attempt=attempt, kind="exception", error=repr(exc))
                )
                if state.attempts >= policy.max_attempts:
                    outcome.failures.append(
                        FailureReport(
                            index=index,
                            label=labels[index],
                            attempts=tuple(state.failures),
                        )
                    )
                    break
                outcome.retries += 1
                attempt = state.attempts + 1


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly stuck or broken) pool down without waiting on it.

    ``shutdown(wait=False)`` alone would leave a hung worker running
    forever; the worker processes are terminated explicitly (SIGTERM, then
    SIGKILL for survivors).  Touching ``_processes`` is deliberate — the
    executor API offers no other way to reap a stuck child — and guarded,
    so a stdlib that renames the attribute degrades to a plain shutdown.
    """
    processes_map = getattr(pool, "_processes", None)
    processes = list(processes_map.values()) if isinstance(processes_map, dict) else []
    for process in processes:
        try:
            process.terminate()
        except Exception:  # already dead / already reaped
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.join(timeout=1.0)
        if process.is_alive():
            try:
                process.kill()
            except Exception:
                pass
            process.join(timeout=1.0)


def map_resilient(
    function: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    labels: Optional[Sequence[str]] = None,
) -> ResilientMapResult:
    """Apply ``function`` to every item under supervision; never crash whole.

    The resilient sibling of
    :func:`~repro.experiments.parallel.map_ordered`: results come back in
    item order and are bit-identical to an unsupervised run — retries
    recompute pure functions, and the deterministic backoff jitter never
    touches a global RNG — but worker crashes, transient exceptions and
    hung units are survived per the :class:`RetryPolicy` instead of
    aborting the map.  Units that exhaust their attempts are quarantined
    into :class:`FailureReport` records; everything else completes.

    ``labels`` (optional, aligned with ``items``) names units in failure
    reports; it defaults to ``unit[i]``.

    >>> outcome = map_resilient(abs, [-2, 3], workers=1)
    >>> (outcome.results, outcome.ok, outcome.pool_rebuilds)
    ([2, 3], True, 0)
    """
    policy = policy or RetryPolicy()
    workers = resolve_workers(workers)
    items = list(items)
    if labels is None:
        labels = [f"unit[{index}]" for index in range(len(items))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(items):
            raise ValueError(
                f"labels must align with items: {len(labels)} != {len(items)}"
            )

    outcome = ResilientMapResult(results=[None] * len(items))
    states = {index: _UnitState(index) for index in range(len(items))}

    if workers == 1 or len(items) <= 1:
        _run_in_process(
            function,
            items,
            [(index, 1) for index in range(len(items))],
            states,
            labels,
            policy,
            outcome,
        )
        return outcome

    pool_size = min(workers, len(items))
    # (index, attempt, ready_at): ready_at is a time.monotonic() release
    # time implementing backoff without blocking the supervisor.
    pending = deque((index, 1, 0.0) for index in range(len(items)))
    in_flight: Dict[object, Tuple[int, int, float]] = {}
    pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(max_workers=pool_size)
    outstanding = len(items)

    def _charge(index: int, attempt: int, kind: str, error: str, now: float) -> bool:
        """Record a failed attempt; requeue or quarantine.  True if requeued."""
        nonlocal outstanding
        state = states[index]
        state.attempts += 1
        state.failures.append(AttemptFailure(attempt=attempt, kind=kind, error=error))
        if state.attempts >= policy.max_attempts:
            outcome.failures.append(
                FailureReport(
                    index=index, label=labels[index], attempts=tuple(state.failures)
                )
            )
            outstanding -= 1
            return False
        outcome.retries += 1
        next_attempt = state.attempts + 1
        pending.append(
            (index, next_attempt, now + policy.backoff_seconds(index, next_attempt))
        )
        return True

    try:
        while outstanding > 0:
            # Degrade: repeated pool collapse means pooling itself is the
            # hazard; finish the remaining units serially in this process.
            if pool is None:
                outcome.degraded = True
                remaining = sorted(
                    ((index, attempt) for index, attempt, _ready in pending),
                    key=lambda entry: entry[0],
                )
                pending.clear()
                _run_in_process(
                    function, items, remaining, states, labels, policy, outcome
                )
                return outcome

            now = time.monotonic()
            # Submit ready work, capping in-flight at the pool size so a
            # submitted unit starts (approximately) immediately — that is
            # what lets the timeout deadline be measured from submission.
            for _ in range(len(pending)):
                if len(in_flight) >= pool_size:
                    break
                index, attempt, ready_at = pending[0]
                if ready_at > now:
                    pending.rotate(-1)
                    continue
                pending.popleft()
                future = pool.submit(_call_unit, function, index, attempt, items[index])
                deadline = (
                    now + policy.timeout if policy.timeout is not None else math.inf
                )
                in_flight[future] = (index, attempt, deadline)

            if not in_flight:
                # Everything runnable is in a backoff window; sleep to the
                # earliest release.
                next_ready = min(ready for _i, _a, ready in pending)
                time.sleep(min(_TICK_SECONDS, max(0.0, next_ready - now)) or 0.001)
                continue

            nearest_deadline = min(deadline for _i, _a, deadline in in_flight.values())
            tick = _TICK_SECONDS
            if math.isfinite(nearest_deadline):
                tick = min(tick, max(0.01, nearest_deadline - now))
            done, _running = wait(
                set(in_flight), timeout=tick, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            now = time.monotonic()
            for future in done:
                index, attempt, _deadline = in_flight.pop(future)
                try:
                    outcome.results[index] = future.result()
                    outstanding -= 1
                except BrokenProcessPool as exc:
                    pool_broken = True
                    _charge(index, attempt, "worker-crash", repr(exc), now)
                except Exception as exc:  # noqa: BLE001 — recorded + retried
                    _charge(index, attempt, "exception", repr(exc), now)

            # Timeouts: a unit past its deadline is charged a failed attempt
            # and its (stuck) pool is recycled below.
            timed_out = [
                future
                for future, (_i, _a, deadline) in in_flight.items()
                if deadline <= now
            ]
            for future in timed_out:
                index, attempt, deadline = in_flight.pop(future)
                pool_broken = True
                _charge(
                    index,
                    attempt,
                    "timeout",
                    f"unit exceeded the {policy.timeout}s wall-clock budget",
                    now,
                )

            if pool_broken:
                # The surviving in-flight units were *lost*, not failed:
                # requeue them at the same attempt, with no charge.
                for future, (index, attempt, _deadline) in in_flight.items():
                    pending.append((index, attempt, now))
                in_flight.clear()
                _terminate_pool(pool)
                outcome.pool_rebuilds += 1
                if outcome.pool_rebuilds > policy.max_pool_rebuilds:
                    pool = None
                else:
                    pool = ProcessPoolExecutor(max_workers=pool_size)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return outcome
