"""Measuring competitive ratios: OPT estimation and ratio computation.

The competitive ratio of an algorithm on an instance is
``w(OPT) / E[w(ALG)]``.  ``E[w(ALG)]`` is estimated by repeated simulation;
``w(OPT)`` is computed exactly when the instance is small enough and
otherwise bounded from above by the LP relaxation (which can only make the
measured ratio *larger*, keeping upper-bound experiments honest).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.core.set_system import SetSystem
from repro.core.simulation import simulate_many
from repro.engine.batch import simulate_batch
from repro.engine.specs import spec_for_algorithm
from repro.exceptions import SolverError, UnsupportedAlgorithmError
from repro.offline.exact import solve_exact
from repro.offline.local_search import local_search_packing
from repro.offline.lp import lp_relaxation_bound

__all__ = [
    "OptEstimate",
    "estimate_opt",
    "RatioMeasurement",
    "measure_ratio",
    "simulation_benefits",
    "validate_engine",
]

#: The accepted values of every ``engine=`` parameter in this package.
ENGINE_CHOICES = ("reference", "batch", "auto")


def validate_engine(engine: str) -> str:
    """Validate an engine selector, returning it unchanged.

    The single source of truth for the ``"reference" | "batch" | "auto"``
    vocabulary used by the measurement helpers, the sweep harness, the
    runner CLI and the ``OSP_BENCH_ENGINE`` benchmark flag.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; use one of {', '.join(ENGINE_CHOICES)}"
        )
    return engine

#: Instances with at most this many sets are solved exactly by default.
EXACT_SOLVER_SET_LIMIT = 60


@dataclass(frozen=True)
class OptEstimate:
    """An estimate (or exact value / upper bound) of the offline optimum."""

    value: float
    method: str
    is_exact: bool
    lower_bound: float

    def __repr__(self) -> str:
        kind = "exact" if self.is_exact else "upper-bound"
        return f"OptEstimate({self.value:.4f}, {self.method}, {kind})"


def estimate_opt(
    system: SetSystem,
    method: str = "auto",
    exact_set_limit: int = EXACT_SOLVER_SET_LIMIT,
) -> OptEstimate:
    """Estimate the offline optimum of a set system.

    ``method`` is one of ``"auto"``, ``"exact"``, ``"lp"`` or ``"local-search"``.
    ``auto`` solves exactly up to ``exact_set_limit`` sets and otherwise
    reports the LP bound (with a local-search lower bound attached so callers
    can see how tight the relaxation is).
    """
    if method not in ("auto", "exact", "lp", "local-search"):
        raise SolverError(f"unknown OPT estimation method {method!r}")

    if method == "exact" or (method == "auto" and system.num_sets <= exact_set_limit):
        solution = solve_exact(system)
        if solution.is_optimal:
            return OptEstimate(
                value=solution.weight,
                method="exact",
                is_exact=True,
                lower_bound=solution.weight,
            )
        # Node budget exhausted: fall through to the LP bound, keeping the
        # incumbent as the lower bound.
        lp = lp_relaxation_bound(system)
        return OptEstimate(
            value=lp.value,
            method=f"lp (exact search truncated at {solution.nodes_explored} nodes)",
            is_exact=False,
            lower_bound=solution.weight,
        )

    if method == "local-search":
        solution = local_search_packing(system)
        return OptEstimate(
            value=solution.weight,
            method="local-search",
            is_exact=False,
            lower_bound=solution.weight,
        )

    lp = lp_relaxation_bound(system)
    heuristic = local_search_packing(system)
    return OptEstimate(
        value=lp.value,
        method=lp.method,
        is_exact=False,
        lower_bound=heuristic.weight,
    )


@dataclass(frozen=True)
class RatioMeasurement:
    """A measured competitive ratio for one algorithm on one instance."""

    algorithm_name: str
    instance_name: str
    trials: int
    mean_benefit: float
    std_benefit: float
    opt: OptEstimate
    ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm_name,
            "instance": self.instance_name,
            "trials": self.trials,
            "mean_benefit": self.mean_benefit,
            "std_benefit": self.std_benefit,
            "opt": self.opt.value,
            "ratio": self.ratio,
        }


def simulation_benefits(
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    trials: int,
    seed: int = 0,
    engine: str = "reference",
) -> Sequence[float]:
    """Per-trial benefits of ``trials`` shared-seed simulations.

    ``engine`` selects the simulator:

    * ``"reference"`` — the per-arrival Python loop (:func:`simulate_many`);
      works for every algorithm.
    * ``"batch"`` — the vectorized engine (:func:`simulate_batch`); raises
      :class:`~repro.exceptions.UnsupportedAlgorithmError` for algorithms it
      cannot replay.
    * ``"auto"`` — the batch engine when the algorithm is supported, the
      reference simulator otherwise.

    The two engines agree trial by trial (the differential test suite pins
    this), so the choice affects runtime only, never the measurement.
    """
    validate_engine(engine)
    if engine != "reference":
        spec = spec_for_algorithm(algorithm)
        if spec is not None:
            result = simulate_batch(instance, spec, trials=trials, seed=seed)
            return [float(value) for value in result.benefits]
        if engine == "batch":
            raise UnsupportedAlgorithmError(
                f"algorithm {algorithm.name!r} cannot run on the batch engine; "
                "use engine='reference' or engine='auto'"
            )
    results = simulate_many(instance, algorithm, trials=trials, seed=seed)
    return [result.benefit for result in results]


def measure_ratio(
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    trials: int = 20,
    seed: int = 0,
    opt: Optional[OptEstimate] = None,
    opt_method: str = "auto",
    engine: str = "reference",
) -> RatioMeasurement:
    """Measure the empirical competitive ratio of one algorithm on one instance.

    The ratio is ``opt / mean_benefit``; a zero mean benefit yields ``inf``.
    A precomputed ``opt`` may be supplied to avoid repeating the (expensive)
    offline solve when several algorithms run on the same instance.
    ``engine`` routes the simulations (see :func:`simulation_benefits`).
    """
    if opt is None:
        opt = estimate_opt(instance.system, method=opt_method)
    effective_trials = 1 if algorithm.is_deterministic else trials
    benefits = list(
        simulation_benefits(
            instance, algorithm, trials=effective_trials, seed=seed, engine=engine
        )
    )
    mean = sum(benefits) / len(benefits)
    if len(benefits) > 1:
        variance = sum((value - mean) ** 2 for value in benefits) / (len(benefits) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    ratio = float("inf") if mean <= 0 else opt.value / mean
    return RatioMeasurement(
        algorithm_name=algorithm.name,
        instance_name=instance.name,
        trials=effective_trials,
        mean_benefit=mean,
        std_benefit=std,
        opt=opt,
        ratio=ratio,
    )


def measure_suite(
    instance: OnlineInstance,
    algorithms: Sequence[OnlineAlgorithm],
    trials: int = 20,
    seed: int = 0,
    opt_method: str = "auto",
    engine: str = "reference",
) -> Dict[str, RatioMeasurement]:
    """Measure every algorithm on the same instance, sharing the OPT estimate."""
    opt = estimate_opt(instance.system, method=opt_method)
    return {
        algorithm.name: measure_ratio(
            instance, algorithm, trials=trials, seed=seed, opt=opt, engine=engine
        )
        for algorithm in algorithms
    }
