"""Measuring competitive ratios: OPT estimation and ratio computation.

The competitive ratio of an algorithm on an instance is
``w(OPT) / E[w(ALG)]``.  ``E[w(ALG)]`` is estimated by repeated simulation;
``w(OPT)`` is computed exactly when the instance is small enough and
otherwise bounded from above by the LP relaxation (which can only make the
measured ratio *larger*, keeping upper-bound experiments honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.core.set_system import SetSystem
from repro.core.simulation import simulate_many
from repro.core.statistics import statistics_from_benefits
from repro.engine.batch import simulate_batch
from repro.engine.fast import simulate_fast
from repro.engine.specs import spec_for_algorithm
from repro.engine.streaming import simulate_trace_batch

if TYPE_CHECKING:  # repro.network imports this package back
    from repro.network.traffic import Trace


def _trace_or_none(instance) -> "Optional[Trace]":
    """``instance`` if it is a router trace, else ``None`` (lazy import:
    ``repro.network`` imports the experiment layer back)."""
    from repro.network.traffic import Trace

    return instance if isinstance(instance, Trace) else None
from repro.exceptions import (
    MeasurementFailedError,
    SolverError,
    UnsupportedAlgorithmError,
)
from repro.experiments.opt_cache import OptCache, default_opt_cache
from repro.experiments.parallel import map_ordered, partition_trials, resolve_workers
from repro.experiments.resilience import RetryPolicy, map_resilient
from repro.offline.exact import solve_exact
from repro.offline.local_search import local_search_packing
from repro.offline.lp import lp_relaxation_bound

__all__ = [
    "OptEstimate",
    "estimate_opt",
    "RatioMeasurement",
    "measure_ratio",
    "measure_suite",
    "simulation_benefits",
    "validate_engine",
]

#: The accepted values of every ``engine=`` parameter in this package.
#: ``reference``, ``batch`` and ``auto`` are *exact* (bit-identical trial for
#: trial); ``fast`` is the opt-in statistical backend
#: (:func:`~repro.engine.fast.simulate_fast`), which matches the exact
#: engines in distribution but not bit for bit.
ENGINE_CHOICES = ("reference", "batch", "auto", "fast")


def validate_engine(engine: str) -> str:
    """Validate an engine selector, returning it unchanged.

    The single source of truth for the
    ``"reference" | "batch" | "auto" | "fast"`` vocabulary used by the
    measurement helpers, the sweep harness, the runner CLI and the
    ``OSP_BENCH_ENGINE`` benchmark flag.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; use one of {', '.join(ENGINE_CHOICES)}"
        )
    return engine

#: Instances with at most this many sets are solved exactly by default.
EXACT_SOLVER_SET_LIMIT = 60


@dataclass(frozen=True)
class OptEstimate:
    """An estimate (or exact value / upper bound) of the offline optimum."""

    value: float
    method: str
    is_exact: bool
    lower_bound: float

    def __repr__(self) -> str:
        kind = "exact" if self.is_exact else "upper-bound"
        return f"OptEstimate({self.value:.4f}, {self.method}, {kind})"


def estimate_opt(
    system: SetSystem,
    method: str = "auto",
    exact_set_limit: int = EXACT_SOLVER_SET_LIMIT,
    cache: Optional[OptCache] = None,
) -> OptEstimate:
    """Estimate the offline optimum of a set system.

    ``method`` is one of ``"auto"``, ``"exact"``, ``"lp"`` or ``"local-search"``.
    ``auto`` solves exactly up to ``exact_set_limit`` sets and otherwise
    reports the LP bound (with a local-search lower bound attached so callers
    can see how tight the relaxation is).

    ``cache`` is an optional :class:`~repro.experiments.opt_cache.OptCache`:
    the estimate is keyed by the system's *content* fingerprint together with
    ``(method, exact_set_limit)``, so repeated solves of equal systems —
    across algorithms, sweep points or processes that regenerated the same
    instance — are answered from the cache.  The returned ``OptEstimate`` is
    immutable, so sharing the cached record is safe.
    """
    if method not in ("auto", "exact", "lp", "local-search"):
        raise SolverError(f"unknown OPT estimation method {method!r}")
    if cache is not None:
        key = cache.key(system, method, exact_set_limit)
        return cache.get_or_compute(
            key, partial(_estimate_opt_uncached, system, method, exact_set_limit)
        )
    return _estimate_opt_uncached(system, method, exact_set_limit)


def _estimate_opt_uncached(
    system: SetSystem, method: str, exact_set_limit: int
) -> OptEstimate:
    """The cache-free estimation body behind :func:`estimate_opt`."""
    if method == "exact" or (method == "auto" and system.num_sets <= exact_set_limit):
        solution = solve_exact(system)
        if solution.is_optimal:
            return OptEstimate(
                value=solution.weight,
                method="exact",
                is_exact=True,
                lower_bound=solution.weight,
            )
        # Node budget exhausted: fall through to the LP bound, keeping the
        # incumbent as the lower bound.
        lp = lp_relaxation_bound(system)
        return OptEstimate(
            value=lp.value,
            method=f"lp (exact search truncated at {solution.nodes_explored} nodes)",
            is_exact=False,
            lower_bound=solution.weight,
        )

    if method == "local-search":
        solution = local_search_packing(system)
        return OptEstimate(
            value=solution.weight,
            method="local-search",
            is_exact=False,
            lower_bound=solution.weight,
        )

    lp = lp_relaxation_bound(system)
    heuristic = local_search_packing(system)
    return OptEstimate(
        value=lp.value,
        method=lp.method,
        is_exact=False,
        lower_bound=heuristic.weight,
    )


@dataclass(frozen=True)
class RatioMeasurement:
    """A measured competitive ratio for one algorithm on one instance."""

    algorithm_name: str
    instance_name: str
    trials: int
    mean_benefit: float
    std_benefit: float
    opt: OptEstimate
    ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm_name,
            "instance": self.instance_name,
            "trials": self.trials,
            "mean_benefit": self.mean_benefit,
            "std_benefit": self.std_benefit,
            "opt": self.opt.value,
            "ratio": self.ratio,
        }


def _benefits_chunk(
    chunk: Tuple[int, int],
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    seed: int,
    engine: str,
    trace: "Optional[Trace]" = None,
) -> List[float]:
    """Benefits of the contiguous trial chunk ``(offset, count)``.

    Every engine seeds trial ``b`` as ``seed + b``, so running a chunk with
    ``seed + offset`` reproduces exactly trials ``offset..offset+count-1``
    of the unchunked run — for the statistical ``fast`` engine that is the
    counter-based invariance of :func:`~repro.engine.fast.simulate_fast`,
    so even fast runs are bit-identical across worker counts (only the
    *exact-engine* correspondence is statistical).  When a router ``trace``
    is attached and a non-reference engine requested, the chunk runs on the
    streaming engine (same exact contract, bounded memory; ``fast`` has no
    trace path and uses it too).  Top-level (not a closure) so process-pool
    workers can unpickle it.
    """
    offset, count = chunk
    if engine != "reference":
        spec = spec_for_algorithm(algorithm)
        if spec is not None:
            if trace is not None:
                result = simulate_trace_batch(
                    trace, spec, trials=count, seed=seed + offset
                )
            elif engine == "fast":
                result = simulate_fast(
                    instance, spec, trials=count, seed=seed + offset
                )
            else:
                result = simulate_batch(
                    instance, spec, trials=count, seed=seed + offset
                )
            return [float(value) for value in result.benefits]
        if engine in ("batch", "fast"):
            raise UnsupportedAlgorithmError(
                f"algorithm {algorithm.name!r} cannot run on the "
                f"{engine} engine; use engine='reference' or engine='auto'"
            )
    results = simulate_many(instance, algorithm, trials=count, seed=seed + offset)
    return [result.benefit for result in results]


def simulation_benefits(
    instance: "OnlineInstance | Trace",
    algorithm: OnlineAlgorithm,
    trials: int,
    seed: int = 0,
    engine: str = "reference",
    workers: "int | str" = 1,
    policy: Optional[RetryPolicy] = None,
) -> Sequence[float]:
    """Per-trial benefits of ``trials`` shared-seed simulations.

    ``instance`` may also be a router :class:`~repro.network.traffic.Trace`:
    the reference engine then simulates ``trace.to_instance()`` and the
    batch engines stream the trace directly
    (:func:`~repro.engine.streaming.simulate_trace_batch`), with identical
    results trial for trial.

    ``engine`` selects the simulator:

    * ``"reference"`` — the per-arrival Python loop (:func:`simulate_many`);
      works for every algorithm.
    * ``"batch"`` — the vectorized engine (:func:`simulate_batch`); raises
      :class:`~repro.exceptions.UnsupportedAlgorithmError` for algorithms it
      cannot replay.
    * ``"auto"`` — the batch engine when the algorithm is supported, the
      reference simulator otherwise.
    * ``"fast"`` — the opt-in *statistical* backend
      (:func:`~repro.engine.fast.simulate_fast`): counter-based PCG64
      draws, equivalent to the exact engines in distribution but not bit
      for bit.  Raises for unsupported algorithms like ``"batch"``; trace
      inputs run on the (exact) streaming engine.

    ``workers`` splits the trials into contiguous chunks executed across a
    process pool (``workers=1`` runs in-process).  Chunk ``(offset, count)``
    replays exactly trials ``offset..offset+count-1`` of the serial run, and
    the chunks are concatenated in order, so the returned benefit sequence
    is *bit-identical* for every worker count.  The worker count never
    changes the measurement, and neither does the choice *among the exact
    engines*; ``engine="fast"`` alone trades bit-identity for throughput —
    its numbers agree statistically (``tests/test_engine_fast_equivalence.py``)
    but not bit for bit, which is why it is opt-in everywhere.

    ``policy`` routes the chunk fan-out through the supervised pool of
    :func:`~repro.experiments.resilience.map_resilient` (crash recovery,
    retry with deterministic backoff).  Unlike a sweep, a measurement cannot
    *quarantine* a chunk — dropping trials would change the benefit
    sequence — so a chunk that exhausts its retry budget raises
    :class:`~repro.exceptions.MeasurementFailedError`.  Retried chunks
    recompute the same bits, so the policy too is a runtime-only knob.
    """
    validate_engine(engine)
    workers = resolve_workers(workers)
    trace = _trace_or_none(instance)
    if trace is not None:
        instance = trace.to_instance()
    task = partial(
        _benefits_chunk,
        instance=instance,
        algorithm=algorithm,
        seed=seed,
        engine=engine,
        trace=trace,
    )
    if workers == 1 and policy is None:
        return task((0, trials))
    chunks = partition_trials(trials, workers)
    benefits: List[float] = []
    if policy is not None:
        outcome = map_resilient(
            task,
            chunks,
            workers=workers,
            policy=policy,
            labels=[f"trials[{offset}:{offset + count}]" for offset, count in chunks],
        )
        if outcome.failures:
            raise MeasurementFailedError(
                f"{len(outcome.failures)} trial chunk(s) failed after retries: "
                + ", ".join(report.label for report in outcome.failures),
                failures=outcome.failures,
            )
        for chunk_benefits in outcome.results:
            benefits.extend(chunk_benefits)
        return benefits
    for chunk_benefits in map_ordered(task, chunks, workers=workers):
        benefits.extend(chunk_benefits)
    return benefits


def measure_ratio(
    instance: "OnlineInstance | Trace",
    algorithm: OnlineAlgorithm,
    trials: int = 20,
    seed: int = 0,
    opt: Optional[OptEstimate] = None,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: "int | str" = 1,
    opt_cache: Optional[OptCache] = None,
    policy: Optional[RetryPolicy] = None,
) -> RatioMeasurement:
    """Measure the empirical competitive ratio of one algorithm on one instance.

    The ratio is ``opt / mean_benefit``; a zero mean benefit yields ``inf``.
    A precomputed ``opt`` may be supplied to avoid repeating the (expensive)
    offline solve when several algorithms run on the same instance, or an
    ``opt_cache`` to share solves by system content.  ``instance`` may be a
    router :class:`~repro.network.traffic.Trace` (OPT is estimated on its
    reduction; the batch engines stream the trace).  ``engine``,
    ``workers`` and ``policy`` route the simulations (see
    :func:`simulation_benefits`); ``workers``, ``policy`` and the exact
    engines never change the measured numbers, while the statistical
    ``engine="fast"`` changes them within its pre-registered equivalence
    tolerances.
    """
    trace = _trace_or_none(instance)
    if trace is not None:
        instance = trace.to_instance()
    if opt is None:
        opt = estimate_opt(instance.system, method=opt_method, cache=opt_cache)
    effective_trials = 1 if algorithm.is_deterministic else trials
    benefits = list(
        simulation_benefits(
            trace if trace is not None else instance,
            algorithm,
            trials=effective_trials,
            seed=seed,
            engine=engine,
            workers=workers,
            policy=policy,
        )
    )
    mean, std = statistics_from_benefits(benefits)
    ratio = float("inf") if mean <= 0 else opt.value / mean
    return RatioMeasurement(
        algorithm_name=algorithm.name,
        instance_name=instance.name,
        trials=effective_trials,
        mean_benefit=mean,
        std_benefit=std,
        opt=opt,
        ratio=ratio,
    )


def _measure_for_suite(
    algorithm: OnlineAlgorithm,
    instance: OnlineInstance,
    trials: int,
    seed: int,
    opt: OptEstimate,
    engine: str,
) -> RatioMeasurement:
    """One suite measurement (top-level so process-pool workers can run it)."""
    return measure_ratio(
        instance, algorithm, trials=trials, seed=seed, opt=opt, engine=engine
    )


def measure_suite(
    instance: OnlineInstance,
    algorithms: Sequence[OnlineAlgorithm],
    trials: int = 20,
    seed: int = 0,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: "int | str" = 1,
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, RatioMeasurement]:
    """Measure every algorithm on the same instance, sharing the OPT estimate.

    The offline solve happens once (answered from the per-process
    :func:`~repro.experiments.opt_cache.default_opt_cache` when the same
    system was measured before); the per-algorithm measurements are the
    independent work units, fanned out across ``workers`` processes and
    merged back in ``algorithms`` order.  The result dictionary is identical
    for every worker count — all algorithms share the same seeds either way.

    ``policy`` supervises the fan-out (crash recovery, deterministic-backoff
    retries); an algorithm whose measurement exhausts its retry budget
    raises :class:`~repro.exceptions.MeasurementFailedError` — a suite, like
    a benefit sequence, is complete or failed, never partial.
    """
    opt = estimate_opt(instance.system, method=opt_method, cache=default_opt_cache())
    task = partial(
        _measure_for_suite,
        instance=instance,
        trials=trials,
        seed=seed,
        opt=opt,
        engine=engine,
    )
    if policy is not None:
        outcome = map_resilient(
            task,
            list(algorithms),
            workers=workers,
            policy=policy,
            labels=[algorithm.name for algorithm in algorithms],
        )
        if outcome.failures:
            raise MeasurementFailedError(
                f"{len(outcome.failures)} suite measurement(s) failed after "
                "retries: "
                + ", ".join(report.label for report in outcome.failures),
                failures=outcome.failures,
            )
        measurements = outcome.results
    else:
        measurements = map_ordered(task, list(algorithms), workers=workers)
    return {
        measurement.algorithm_name: measurement for measurement in measurements
    }
