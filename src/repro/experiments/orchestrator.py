"""Parallel sweep orchestration: decompose, execute, merge deterministically.

A parameter sweep is an embarrassingly parallel computation hiding inside a
serial loop: every ``(parameter point, instance)`` pair needs an offline OPT
solve, instance statistics and one measurement per algorithm — and none of
that work depends on any other pair.  This module makes the decomposition
explicit, in the PRAM style of the related parallel-algorithms literature:

1. **Decompose** (:func:`build_sweep_units`): the parent process draws every
   instance up front — instance generation is cheap and keeping it in one
   place pins the RNG stream — and wraps each ``(point, instance)`` pair in
   a self-contained, picklable :class:`SweepUnit`.
2. **Execute** (:func:`run_units`): the units are mapped over a process pool
   (:func:`~repro.experiments.parallel.map_ordered`; ``workers=1`` stays
   in-process).  Each worker solves OPT through its per-process
   :func:`~repro.experiments.opt_cache.default_opt_cache`, compiles the
   instance once through the engine's compile cache, and measures every
   algorithm on it.
3. **Merge** (:func:`merge_sweep`): unit results come back aligned with the
   submission order, and the merge aggregates them point by point with the
   same float arithmetic — the same summation order — as the serial loop.

**Determinism contract:** for fixed inputs, ``run_sweep(..., workers=n)``
returns *bit-identical* rows for every ``n``.  Per-unit seeds are derived
with :func:`~repro.experiments.parallel.stable_seed` (not ``hash()``), every
simulation seed is a pure function of the unit, and the merge never consumes
results in completion order.  ``tests/test_orchestrator.py`` enforces the
contract at workers ∈ {1, 2, 4}.
"""

from __future__ import annotations

import os
import random
import socket
import time
from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm
from repro.core.bounds import BoundReport, bound_report
from repro.core.instance import OnlineInstance
from repro.core.statistics import InstanceStatistics, compute_statistics
from repro.experiments.competitive_ratio import (
    EXACT_SOLVER_SET_LIMIT,
    OptEstimate,
    RatioMeasurement,
    _trace_or_none,
    estimate_opt,
    measure_ratio,
    validate_engine,
)
from repro.experiments.opt_cache import attached_store, default_opt_cache
from repro.experiments.parallel import map_ordered, resolve_workers, stable_seed
from repro.experiments.resilience import (
    FailureReport,
    ResilientMapResult,
    RetryPolicy,
    map_resilient,
)
from repro.experiments.store import store_for_path, unit_key
from repro.exceptions import MeasurementFailedError

if TYPE_CHECKING:  # repro.network imports the experiment layer back
    from repro.network.traffic import Trace

__all__ = [
    "SweepUnit",
    "SweepUnitResult",
    "build_sweep_units",
    "run_units",
    "run_units_resilient",
    "instance_seed",
]

#: A sweep point's generator: draws either an :class:`OnlineInstance` or a
#: router :class:`~repro.network.traffic.Trace` (reduced to its instance for
#: OPT/statistics/keys; streamed directly by the batch engines).
InstanceFactory = Callable[[random.Random], "OnlineInstance | Trace"]


def instance_seed(base_seed: int, point_index: int, instance_index: int) -> int:
    """The RNG seed for one drawn instance of a sweep.

    A documented, stable replacement for the historical
    ``(seed, point_index, instance_index).__hash__() & 0x7FFFFFFF`` idiom:
    tuple hashing varies across interpreters and ``PYTHONHASHSEED`` values,
    so seeds derived from it were not reproducible guarantees.  The mix is
    :func:`~repro.experiments.parallel.stable_seed` over a tagged component
    list, so any process — including a pool worker regenerating an instance
    from its indices — derives the identical RNG stream.

    >>> instance_seed(0, 0, 0)   # frozen: same value on every platform
    5463517088171824964
    >>> instance_seed(0, 0, 1) != instance_seed(0, 0, 0)
    True
    """
    return stable_seed("sweep-instance", base_seed, point_index, instance_index)


@dataclass(frozen=True)
class SweepUnit:
    """One independent work unit of a sweep: one instance at one point.

    Units are self-contained and picklable: a worker process needs nothing
    beyond the unit, the algorithm list and the measurement parameters.  The
    instance is shipped with the unit (drawn in the parent, so factories may
    be lambdas/closures — only the *instance* crosses the process boundary).
    ``measure_seed`` is the simulation seed shared by every algorithm on
    this unit, preserving the harness's paired-comparison convention.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> unit = SweepUnit(point_index=0, instance_index=1, label="demo-point",
    ...                  instance=OnlineInstance(system), measure_seed=5)
    >>> (unit.point_index, unit.instance_index, unit.measure_seed)
    (0, 1, 5)
    """

    point_index: int
    instance_index: int
    label: str
    instance: OnlineInstance
    measure_seed: int
    #: The router trace behind ``instance``, when the factory drew one.  The
    #: reduction (``trace.to_instance()``) stays the source of OPT,
    #: statistics and store keys; the batch engines stream the trace itself.
    trace: "Optional[Trace]" = None


@dataclass(frozen=True)
class SweepUnitResult:
    """Everything a sweep needs from one executed unit.

    ``measurements`` is aligned with the algorithm list passed to
    :func:`run_units`.  The record carries the unit's indices so the merge
    can re-group by point without trusting arrival order.

    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> units = build_sweep_units(
    ...     [("demo", lambda rng: OnlineInstance(system, name="demo"))],
    ...     instances_per_point=1, seed=0)
    >>> result = run_units(units, [GreedyWeightAlgorithm()], trials=1)[0]
    >>> result.opt
    OptEstimate(2.0000, exact, exact)
    >>> result.measurements[0].ratio
    1.0
    """

    point_index: int
    instance_index: int
    opt: OptEstimate
    stats: InstanceStatistics
    bounds: BoundReport
    measurements: Tuple[RatioMeasurement, ...]


def build_sweep_units(
    parameter_points: Sequence[Tuple[str, InstanceFactory]],
    instances_per_point: int,
    seed: int,
) -> List[SweepUnit]:
    """Draw every instance of the sweep and wrap it in a work unit.

    Instances are generated here, in the parent process, in deterministic
    ``(point, instance)`` order; each draw gets its own RNG seeded by
    :func:`instance_seed`, so the stream consumed by one factory can never
    leak into the next draw.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> units = build_sweep_units(
    ...     [("demo-point", lambda rng: OnlineInstance(system, name="demo"))],
    ...     instances_per_point=2, seed=0)
    >>> [(u.point_index, u.instance_index, u.label) for u in units]
    [(0, 0, 'demo-point'), (0, 1, 'demo-point')]
    >>> units[0].measure_seed    # seed + point_index, shared by the point
    0
    """
    if instances_per_point < 1:
        raise ValueError(
            f"instances_per_point must be at least 1, got {instances_per_point}"
        )
    units: List[SweepUnit] = []
    for point_index, (label, factory) in enumerate(parameter_points):
        for instance_index in range(instances_per_point):
            rng = random.Random(instance_seed(seed, point_index, instance_index))
            drawn = factory(rng)
            trace = _trace_or_none(drawn)
            if trace is not None:
                drawn = trace.to_instance()
            units.append(
                SweepUnit(
                    point_index=point_index,
                    instance_index=instance_index,
                    label=label,
                    instance=drawn,
                    measure_seed=seed + point_index,
                    trace=trace,
                )
            )
    return units


def _lease_owner() -> str:
    """The advisory-lease owner token for this process: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _await_or_claim(store, key: str, owner: str, lease_ttl: float):
    """Wait for a leased unit's result, or steal the lease after its TTL.

    Called when another process already holds the lease on ``key``.  Polls
    the store for the holder's result; if none appears within ``lease_ttl``
    seconds and the lease cannot be re-claimed (the holder keeps renewing),
    returns ``None`` and the caller computes the unit anyway — duplicated
    work is merely wasted wall-clock, and ``INSERT OR IGNORE`` first-writer-
    wins keeps the stored bytes convergent no matter how many processes
    race.  Returns the stored :class:`SweepUnitResult` when one appears.
    """
    deadline = time.monotonic() + lease_ttl
    poll = min(0.05, max(lease_ttl / 10.0, 0.005))
    while time.monotonic() < deadline:
        time.sleep(poll)
        stored = store.get_unit(key)
        if stored is not None:
            return stored
        if store.claim_lease(key, owner, lease_ttl):
            return None  # stolen: the holder expired without writing a result
    return None


def _execute_unit(
    unit: SweepUnit,
    algorithms: Sequence[OnlineAlgorithm],
    trials: int,
    opt_method: str,
    engine: str,
    store_path: Optional[str] = None,
    lease_ttl: float = 0.0,
) -> SweepUnitResult:
    """Execute one work unit (runs in a worker process when ``workers > 1``).

    The OPT solve goes through the worker's per-process
    :func:`~repro.experiments.opt_cache.default_opt_cache` (shared across
    every algorithm and point the worker sees), and all algorithms reuse one
    compiled instance via the engine's compile cache — the two caches the
    serial pipeline used to miss.

    With ``store_path`` set, the whole unit is additionally checked against
    the persistent :class:`~repro.experiments.store.SolutionStore` first: a
    unit whose content-addressed :func:`~repro.experiments.store.unit_key`
    is already stored is *skipped* (its stored result is returned with this
    unit's indices), which is what makes an interrupted sweep resumable —
    a re-run recomputes only the units the crash left unfinished.  Stored
    results are bit-identical to recomputed ones, so the store can never
    change a sweep's rows; the statistical ``engine="fast"`` keeps that
    property by living under its own engine-tagged key, so fast and exact
    sweeps can share one store file without warming each other.  The store
    is also attached below the worker's OPT cache, so even a unit-level
    miss reuses persisted offline solves.

    With ``lease_ttl > 0`` (and a store), the unit is additionally *claimed*
    through the store's advisory lease table before computing, so several
    independent processes pointed at one manifest mostly avoid duplicating
    work.  Leases are strictly advisory: a denied claim waits for the
    holder's result, steals the lease once the TTL expires, and ultimately
    computes the unit anyway — correctness never depends on the lease.
    """
    store = store_for_path(store_path) if store_path else None
    key = None
    if store is not None:
        key = unit_key(
            unit.instance,
            unit.measure_seed,
            algorithms,
            trials,
            opt_method,
            EXACT_SOLVER_SET_LIMIT,
            engine=engine,
        )
        if key is not None:
            stored = store.get_unit(key)
            if stored is not None:
                # The key excludes the unit's position in its sweep, so an
                # equal-content unit from another sweep shape can be reused;
                # only the indices are rewritten for this sweep's merge.
                return replace(
                    stored,
                    point_index=unit.point_index,
                    instance_index=unit.instance_index,
                )
            if lease_ttl > 0:
                owner = _lease_owner()
                if not store.claim_lease(key, owner, lease_ttl):
                    stored = _await_or_claim(store, key, owner, lease_ttl)
                    if stored is not None:
                        return replace(
                            stored,
                            point_index=unit.point_index,
                            instance_index=unit.instance_index,
                        )
    # For the duration of this unit the sweep's store (or its absence) wins
    # over whatever the cache had attached — a store=None sweep must not
    # keep writing OPT solves into a previous sweep's file.
    with attached_store(default_opt_cache(), store) as cache:
        system = unit.instance.system
        opt = estimate_opt(system, method=opt_method, cache=cache)
        stats = compute_statistics(system)
        bounds = bound_report(stats)
        measurements = tuple(
            measure_ratio(
                unit.trace if unit.trace is not None else unit.instance,
                algorithm,
                trials=trials,
                seed=unit.measure_seed,
                opt=opt,
                engine=engine,
            )
            for algorithm in algorithms
        )
    result = SweepUnitResult(
        point_index=unit.point_index,
        instance_index=unit.instance_index,
        opt=opt,
        stats=stats,
        bounds=bounds,
        measurements=measurements,
    )
    if store is not None and key is not None:
        store.put_unit(key, result)
        if lease_ttl > 0:
            store.release_lease(key, _lease_owner())
    return result


def run_units(
    units: Sequence[SweepUnit],
    algorithms: Sequence[OnlineAlgorithm],
    trials: int,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: "int | str" = 1,
    store: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    lease_ttl: float = 0.0,
) -> List[SweepUnitResult]:
    """Execute the work units across ``workers`` processes, in unit order.

    The returned list is aligned with ``units`` regardless of which worker
    finished first (``map_ordered`` guarantees submission-order results), so
    downstream merging is deterministic.  A unit that raises — a protocol
    violation, a solver error — propagates its original exception to the
    caller, from worker processes included.

    ``store`` optionally names a persistent
    :class:`~repro.experiments.store.SolutionStore` file (the *path* is
    shipped to workers; each process opens its own connection).  Stored
    units are skipped and every freshly computed unit is persisted, making
    the sweep resumable across crashes and re-invocations.  Like ``workers``
    and the choice among the exact engines, the store is a wall-clock knob
    only: the results are bit-identical with the store enabled, disabled,
    warm or cold.  The statistical ``engine="fast"`` *does* change the
    numbers (within its equivalence tolerances), which is why its units are
    stored under engine-tagged keys that never collide with exact runs.

    >>> from repro.algorithms import GreedyWeightAlgorithm, RandPrAlgorithm
    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> units = build_sweep_units(
    ...     [("demo", lambda rng: OnlineInstance(system, name="demo"))],
    ...     instances_per_point=1, seed=0)
    >>> results = run_units(units, [GreedyWeightAlgorithm(), RandPrAlgorithm()],
    ...                     trials=4, engine="auto")
    >>> len(results), len(results[0].measurements)   # one unit, two algorithms
    (1, 2)
    >>> results[0].measurements[0].algorithm_name
    'greedy-weight'

    With ``policy`` set, execution routes through the supervised
    :func:`~repro.experiments.resilience.map_resilient` pool instead — but
    this entry point still promises a *complete* result list, so any unit
    that exhausts its retry budget raises
    :class:`~repro.exceptions.MeasurementFailedError` (callers that want to
    keep the healthy units use :func:`run_units_resilient`).
    """
    if policy is not None:
        outcome = run_units_resilient(
            units,
            algorithms,
            trials,
            opt_method=opt_method,
            engine=engine,
            workers=workers,
            store=store,
            policy=policy,
            lease_ttl=lease_ttl,
        )
        results, failures = outcome
        if failures:
            raise MeasurementFailedError(
                f"{len(failures)} sweep unit(s) failed after retries: "
                + ", ".join(report.label for report in failures),
                failures=failures,
            )
        return [result for result in results if result is not None]
    validate_engine(engine)
    resolve_workers(workers)
    task = partial(
        _execute_unit,
        algorithms=list(algorithms),
        trials=trials,
        opt_method=opt_method,
        engine=engine,
        store_path=str(store) if store is not None else None,
        lease_ttl=lease_ttl,
    )
    return map_ordered(task, list(units), workers=workers)


def run_units_resilient(
    units: Sequence[SweepUnit],
    algorithms: Sequence[OnlineAlgorithm],
    trials: int,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: "int | str" = 1,
    store: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    lease_ttl: float = 0.0,
) -> Tuple[List[Optional[SweepUnitResult]], List[FailureReport]]:
    """Execute the units under a supervised, fault-tolerant process pool.

    Like :func:`run_units`, but routed through
    :func:`~repro.experiments.resilience.map_resilient`: worker crashes
    rebuild the pool and requeue only the lost units, transient exceptions
    retry with deterministic backoff, and a unit that fails
    ``policy.max_attempts`` times is *quarantined* rather than sinking the
    sweep.  Returns ``(results, failures)`` where ``results`` is aligned
    with ``units`` (``None`` at quarantined slots) and ``failures`` carries
    one structured :class:`~repro.experiments.resilience.FailureReport` per
    quarantined unit.

    Because every unit is a pure function of its content (seeds derive from
    :func:`~repro.experiments.parallel.stable_seed`, never from wall clock
    or process identity), a retried unit recomputes the *same bits* the
    first attempt would have produced — fault schedules join the worker
    count, the store and the choice among exact engines as wall-clock-only
    knobs.  (This holds under ``engine="fast"`` too — fast trials are a
    pure function of ``seed + trial`` — only the fast-vs-exact
    correspondence is statistical.)

    >>> from repro.algorithms import GreedyWeightAlgorithm
    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"], "B": ["v", "w"]},
    ...                    weights={"A": 2.0, "B": 1.0})
    >>> units = build_sweep_units(
    ...     [("demo", lambda rng: OnlineInstance(system, name="demo"))],
    ...     instances_per_point=1, seed=0)
    >>> results, failures = run_units_resilient(
    ...     units, [GreedyWeightAlgorithm()], trials=2)
    >>> (len(results), failures)
    (1, [])
    """
    validate_engine(engine)
    resolve_workers(workers)
    if policy is None:
        policy = RetryPolicy()
    task = partial(
        _execute_unit,
        algorithms=list(algorithms),
        trials=trials,
        opt_method=opt_method,
        engine=engine,
        store_path=str(store) if store is not None else None,
        lease_ttl=lease_ttl,
    )
    labels = [
        f"{unit.label}[instance {unit.instance_index}]" for unit in units
    ]
    outcome: ResilientMapResult = map_resilient(
        task, list(units), workers=workers, policy=policy, labels=labels
    )
    return list(outcome.results), list(outcome.failures)
