"""Parallel sweep orchestration: decompose, execute, merge deterministically.

A parameter sweep is an embarrassingly parallel computation hiding inside a
serial loop: every ``(parameter point, instance)`` pair needs an offline OPT
solve, instance statistics and one measurement per algorithm — and none of
that work depends on any other pair.  This module makes the decomposition
explicit, in the PRAM style of the related parallel-algorithms literature:

1. **Decompose** (:func:`build_sweep_units`): the parent process draws every
   instance up front — instance generation is cheap and keeping it in one
   place pins the RNG stream — and wraps each ``(point, instance)`` pair in
   a self-contained, picklable :class:`SweepUnit`.
2. **Execute** (:func:`run_units`): the units are mapped over a process pool
   (:func:`~repro.experiments.parallel.map_ordered`; ``workers=1`` stays
   in-process).  Each worker solves OPT through its per-process
   :func:`~repro.experiments.opt_cache.default_opt_cache`, compiles the
   instance once through the engine's compile cache, and measures every
   algorithm on it.
3. **Merge** (:func:`merge_sweep`): unit results come back aligned with the
   submission order, and the merge aggregates them point by point with the
   same float arithmetic — the same summation order — as the serial loop.

**Determinism contract:** for fixed inputs, ``run_sweep(..., workers=n)``
returns *bit-identical* rows for every ``n``.  Per-unit seeds are derived
with :func:`~repro.experiments.parallel.stable_seed` (not ``hash()``), every
simulation seed is a pure function of the unit, and the merge never consumes
results in completion order.  ``tests/test_orchestrator.py`` enforces the
contract at workers ∈ {1, 2, 4}.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm
from repro.core.bounds import BoundReport, bound_report
from repro.core.instance import OnlineInstance
from repro.core.statistics import InstanceStatistics, compute_statistics
from repro.experiments.competitive_ratio import (
    OptEstimate,
    RatioMeasurement,
    estimate_opt,
    measure_ratio,
    validate_engine,
)
from repro.experiments.opt_cache import default_opt_cache
from repro.experiments.parallel import map_ordered, resolve_workers, stable_seed

__all__ = [
    "SweepUnit",
    "SweepUnitResult",
    "build_sweep_units",
    "run_units",
    "instance_seed",
]

InstanceFactory = Callable[[random.Random], OnlineInstance]


def instance_seed(base_seed: int, point_index: int, instance_index: int) -> int:
    """The RNG seed for one drawn instance of a sweep.

    A documented, stable replacement for the historical
    ``(seed, point_index, instance_index).__hash__() & 0x7FFFFFFF`` idiom:
    tuple hashing varies across interpreters and ``PYTHONHASHSEED`` values,
    so seeds derived from it were not reproducible guarantees.  The mix is
    :func:`~repro.experiments.parallel.stable_seed` over a tagged component
    list, so any process — including a pool worker regenerating an instance
    from its indices — derives the identical RNG stream.
    """
    return stable_seed("sweep-instance", base_seed, point_index, instance_index)


@dataclass(frozen=True)
class SweepUnit:
    """One independent work unit of a sweep: one instance at one point.

    Units are self-contained and picklable: a worker process needs nothing
    beyond the unit, the algorithm list and the measurement parameters.  The
    instance is shipped with the unit (drawn in the parent, so factories may
    be lambdas/closures — only the *instance* crosses the process boundary).
    ``measure_seed`` is the simulation seed shared by every algorithm on
    this unit, preserving the harness's paired-comparison convention.
    """

    point_index: int
    instance_index: int
    label: str
    instance: OnlineInstance
    measure_seed: int


@dataclass(frozen=True)
class SweepUnitResult:
    """Everything a sweep needs from one executed unit.

    ``measurements`` is aligned with the algorithm list passed to
    :func:`run_units`.  The record carries the unit's indices so the merge
    can re-group by point without trusting arrival order.
    """

    point_index: int
    instance_index: int
    opt: OptEstimate
    stats: InstanceStatistics
    bounds: BoundReport
    measurements: Tuple[RatioMeasurement, ...]


def build_sweep_units(
    parameter_points: Sequence[Tuple[str, InstanceFactory]],
    instances_per_point: int,
    seed: int,
) -> List[SweepUnit]:
    """Draw every instance of the sweep and wrap it in a work unit.

    Instances are generated here, in the parent process, in deterministic
    ``(point, instance)`` order; each draw gets its own RNG seeded by
    :func:`instance_seed`, so the stream consumed by one factory can never
    leak into the next draw.
    """
    if instances_per_point < 1:
        raise ValueError(
            f"instances_per_point must be at least 1, got {instances_per_point}"
        )
    units: List[SweepUnit] = []
    for point_index, (label, factory) in enumerate(parameter_points):
        for instance_index in range(instances_per_point):
            rng = random.Random(instance_seed(seed, point_index, instance_index))
            units.append(
                SweepUnit(
                    point_index=point_index,
                    instance_index=instance_index,
                    label=label,
                    instance=factory(rng),
                    measure_seed=seed + point_index,
                )
            )
    return units


def _execute_unit(
    unit: SweepUnit,
    algorithms: Sequence[OnlineAlgorithm],
    trials: int,
    opt_method: str,
    engine: str,
) -> SweepUnitResult:
    """Execute one work unit (runs in a worker process when ``workers > 1``).

    The OPT solve goes through the worker's per-process
    :func:`~repro.experiments.opt_cache.default_opt_cache` (shared across
    every algorithm and point the worker sees), and all algorithms reuse one
    compiled instance via the engine's compile cache — the two caches the
    serial pipeline used to miss.
    """
    system = unit.instance.system
    opt = estimate_opt(system, method=opt_method, cache=default_opt_cache())
    stats = compute_statistics(system)
    bounds = bound_report(stats)
    measurements = tuple(
        measure_ratio(
            unit.instance,
            algorithm,
            trials=trials,
            seed=unit.measure_seed,
            opt=opt,
            engine=engine,
        )
        for algorithm in algorithms
    )
    return SweepUnitResult(
        point_index=unit.point_index,
        instance_index=unit.instance_index,
        opt=opt,
        stats=stats,
        bounds=bounds,
        measurements=measurements,
    )


def run_units(
    units: Sequence[SweepUnit],
    algorithms: Sequence[OnlineAlgorithm],
    trials: int,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: int = 1,
) -> List[SweepUnitResult]:
    """Execute the work units across ``workers`` processes, in unit order.

    The returned list is aligned with ``units`` regardless of which worker
    finished first (``map_ordered`` guarantees submission-order results), so
    downstream merging is deterministic.  A unit that raises — a protocol
    violation, a solver error — propagates its original exception to the
    caller, from worker processes included.
    """
    validate_engine(engine)
    resolve_workers(workers)
    task = partial(
        _execute_unit,
        algorithms=list(algorithms),
        trials=trials,
        opt_method=opt_method,
        engine=engine,
    )
    return map_ordered(task, list(units), workers=workers)
