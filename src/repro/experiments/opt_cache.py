"""Caching of offline-optimum estimates, keyed by set-system *content*.

A sweep measures many algorithms against the same instances, and benchmark
suites re-solve structurally identical systems across parameter points and
invocations.  The offline solve (branch and bound or LP) dominates that cost,
and its result depends only on the set system — not on which algorithm asked,
and not on which ``SetSystem`` *object* happens to hold the data.  The cache
therefore keys on a canonical fingerprint of the system's content (sets,
weights, capacities) plus the estimation parameters, so two equal systems
built independently — e.g. regenerated from the same seed in another worker
process — share one solve.

The cache is a plain LRU with hit/miss counters (pinned by
``tests/test_orchestrator.py``).  Each worker process owns one
:func:`default_opt_cache` instance; cached values are immutable
``OptEstimate`` records, so sharing them between callers is safe.

Below the in-memory LRU sits an optional *persistent* tier: a
:class:`~repro.experiments.store.SolutionStore` attached via the ``store``
parameter (or automatically from the ``OSP_STORE`` environment variable for
the default cache).  A memory miss then consults the store before computing,
and every computed value is written back to both tiers — so repeated
benchmark invocations, and all worker processes of a pool, share one durable
set of OPT solves.  The store never changes a value, only where it comes
from; ``store_hits`` counts the middle-tier answers.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Optional, TypeVar

from repro.core.set_system import SetSystem

__all__ = ["OptCache", "attached_store", "default_opt_cache", "system_fingerprint"]

V = TypeVar("V")


def system_fingerprint(system: SetSystem) -> str:
    """A canonical content hash of a set system.

    Two systems with the same sets (ids and members), weights and capacities
    produce the same fingerprint regardless of construction order or object
    identity.  Identifiers are rendered with ``repr`` — the same rendering
    the package uses for deterministic ordering — and floats with ``repr``
    as well, which round-trips every distinct float64 to a distinct string.
    """
    digest = hashlib.sha256()
    for set_id in system.set_ids:
        digest.update(repr(set_id).encode("utf-8"))
        digest.update(b"\x1e")
        digest.update(repr(system.weight(set_id)).encode("utf-8"))
        digest.update(b"\x1e")
        for element in sorted(system.members(set_id), key=repr):
            digest.update(repr(element).encode("utf-8"))
            digest.update(b"\x1f")
        digest.update(b"\x1d")
    for element in system.element_ids:
        digest.update(repr(element).encode("utf-8"))
        digest.update(b"\x1e")
        digest.update(str(system.capacity(element)).encode("utf-8"))
        digest.update(b"\x1d")
    return digest.hexdigest()


class OptCache:
    """An LRU cache for offline-optimum estimates.

    ``maxsize`` bounds the entry count (least-recently-used eviction);
    ``hits`` / ``misses`` count lookups for tests and benchmark reports.
    The cache itself is value-agnostic — :func:`repro.experiments.competitive_ratio.estimate_opt`
    stores its ``OptEstimate`` records here under a key that includes the
    estimation method and the exact-solver set limit, so estimates computed
    under different policies never alias.

    ``store`` optionally attaches a persistent
    :class:`~repro.experiments.store.SolutionStore` as a read-through /
    write-back tier below the LRU: a memory miss consults the store before
    computing, and computed values are written to both.  ``store_hits``
    counts lookups the store answered (these still increment ``misses`` —
    the memory tier did miss).
    """

    def __init__(self, maxsize: int = 256, store=None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be at least 1, got {maxsize}")
        self.maxsize = maxsize
        self.store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, system: SetSystem, method: str, exact_set_limit: int) -> str:
        """The cache key for one (system content, estimation policy) pair."""
        return f"{system_fingerprint(system)}|{method}|{exact_set_limit}"

    def get_or_compute(self, key: str, compute: Callable[[], V]) -> V:
        """Return the cached value for ``key``, computing and storing on miss.

        Lookup order: memory LRU, then the attached persistent store (if
        any), then ``compute()``.  Values found in the store are promoted to
        memory; computed values are written back to both tiers.
        """
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            stored = self.store.get_opt(key) if self.store is not None else None
            if stored is not None:
                self.store_hits += 1
                value = stored
            else:
                value = compute()
                if self.store is not None:
                    self.store.put_opt(key, value)
            self._entries[key] = value
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return value
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters.

        The persistent store (if attached) is left untouched — clearing the
        memory tier is what simulates a fresh process in tests/benchmarks.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def __repr__(self) -> str:
        return (
            f"OptCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, maxsize={self.maxsize})"
        )


@contextmanager
def attached_store(cache: OptCache, store):
    """Temporarily attach ``store`` (or ``None``) as ``cache``'s durable tier.

    For the duration of the ``with`` block the caller's store choice — or its
    explicit absence — wins over whatever the cache had attached; the previous
    attachment (e.g. the ``OSP_STORE`` default) is restored afterwards, so one
    caller's explicit store never shadows the environment store for later
    callers in the same process.  Both the sweep orchestrator and the battle
    harness scope their per-unit store attachments through this.

    >>> cache = OptCache()
    >>> with attached_store(cache, None):
    ...     cache.store is None
    True
    >>> cache.store is None     # the previous attachment is restored
    True
    """
    previous = cache.store
    cache.store = store
    try:
        yield cache
    finally:
        cache.store = previous


#: The per-process shared cache (one per worker; created lazily), with the
#: PID it was configured in — a fork-started worker must re-attach its own
#: store connection rather than reuse the parent's.
_DEFAULT_CACHE: Optional[OptCache] = None
_DEFAULT_CACHE_PID: Optional[int] = None
#: The OSP_STORE path behind the cache's current store attachment, or ``None``
#: when the attachment is explicit (or absent).  Tracked so that *clearing*
#: the environment default detaches the store again — without it, OPT solves
#: would keep flowing into a store file the caller already disabled.
_DEFAULT_CACHE_ENV_ATTACHMENT: Optional[str] = None


def default_opt_cache() -> OptCache:
    """The process-wide shared :class:`OptCache`.

    Worker processes each materialize their own copy on first use, so a
    parallel sweep gets per-worker OPT reuse without any cross-process
    synchronization (cache contents never influence results, only runtime).

    When the ``OSP_STORE`` environment variable names a store file, the
    per-process :class:`~repro.experiments.store.SolutionStore` for that
    path is attached as the cache's persistent tier — the environment is
    inherited by pool workers, so one exported variable gives *every*
    process of a sweep the same durable OPT store.
    """
    global _DEFAULT_CACHE, _DEFAULT_CACHE_PID, _DEFAULT_CACHE_ENV_ATTACHMENT
    pid = os.getpid()
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = OptCache()
        _DEFAULT_CACHE_PID = pid
    elif _DEFAULT_CACHE_PID != pid:
        # Fork-started worker: the in-memory entries are plain immutable
        # values and stay valid, but an attached store wraps the *parent's*
        # SQLite connection, which must not be used across fork() — detach
        # so this process re-attaches its own connection below.
        _DEFAULT_CACHE.store = None
        _DEFAULT_CACHE_ENV_ATTACHMENT = None
        _DEFAULT_CACHE_PID = pid
    # Imported lazily: repro.experiments.store fingerprints instances
    # through this module, so a top-level import would be circular.
    from repro.experiments.store import active_store, store_path_from_env

    if _DEFAULT_CACHE_ENV_ATTACHMENT is not None:
        expected = os.path.abspath(_DEFAULT_CACHE_ENV_ATTACHMENT)
        current = _DEFAULT_CACHE.store
        if current is None or current.path != expected:
            # The attachment changed hands (an explicit store was set, or
            # the store was detached): the environment bookkeeping is stale
            # and the explicit choice is left alone.
            _DEFAULT_CACHE_ENV_ATTACHMENT = None
        elif store_path_from_env() != _DEFAULT_CACHE_ENV_ATTACHMENT:
            # The environment default was cleared (or repointed) after this
            # cache attached it: detach, so the new default applies below
            # and a disabled OSP_STORE really stops persisting.
            _DEFAULT_CACHE.store = None
            _DEFAULT_CACHE_ENV_ATTACHMENT = None
    if _DEFAULT_CACHE.store is None:
        _DEFAULT_CACHE.store = active_store()
        if _DEFAULT_CACHE.store is not None:
            _DEFAULT_CACHE_ENV_ATTACHMENT = store_path_from_env()
    return _DEFAULT_CACHE
