"""Experiment harness: parameter sweeps with repetitions and summary rows.

The benchmarks build their tables with this harness: an experiment is a
family of instances indexed by a parameter point, each instance is solved
offline (for OPT) and simulated online for every algorithm under test, and
the harness aggregates mean benefit, measured ratio and the applicable
theoretical bounds into one row per (parameter point, algorithm).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm
from repro.core.bounds import bound_report
from repro.core.instance import OnlineInstance
from repro.core.statistics import compute_statistics
from repro.experiments.competitive_ratio import OptEstimate, estimate_opt, measure_ratio

__all__ = ["ExperimentRow", "SweepResult", "run_sweep", "summarize_rows"]

InstanceFactory = Callable[[random.Random], OnlineInstance]


@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated row of an experiment table."""

    parameter_label: str
    algorithm_name: str
    num_instances: int
    mean_benefit: float
    mean_opt: float
    mean_ratio: float
    max_ratio: float
    theorem1_bound: float
    corollary6_bound: float
    best_bound: float
    k_max: float
    sigma_max: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "parameter": self.parameter_label,
            "algorithm": self.algorithm_name,
            "instances": self.num_instances,
            "mean_benefit": round(self.mean_benefit, 4),
            "mean_opt": round(self.mean_opt, 4),
            "mean_ratio": round(self.mean_ratio, 4),
            "max_ratio": round(self.max_ratio, 4),
            "thm1_bound": round(self.theorem1_bound, 4),
            "cor6_bound": round(self.corollary6_bound, 4),
            "best_bound": round(self.best_bound, 4),
            "k_max": self.k_max,
            "sigma_max": self.sigma_max,
        }
        for key, value in self.extra.items():
            row[key] = round(value, 4) if isinstance(value, float) else value
        return row

    @property
    def within_theorem1(self) -> bool:
        """Whether the measured mean ratio respects the Theorem 1 bound."""
        return self.mean_ratio <= self.theorem1_bound + 1e-9

    @property
    def within_corollary6(self) -> bool:
        """Whether the measured mean ratio respects the Corollary 6 bound."""
        return self.mean_ratio <= self.corollary6_bound + 1e-9


@dataclass
class SweepResult:
    """All rows of one parameter sweep."""

    name: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def rows_for(self, algorithm_name: str) -> List[ExperimentRow]:
        """The rows belonging to one algorithm, in sweep order."""
        return [row for row in self.rows if row.algorithm_name == algorithm_name]

    def algorithms(self) -> List[str]:
        """The distinct algorithm names, in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.algorithm_name not in seen:
                seen.append(row.algorithm_name)
        return seen


def run_sweep(
    name: str,
    parameter_points: Sequence[Tuple[str, InstanceFactory]],
    algorithms: Sequence[OnlineAlgorithm],
    instances_per_point: int = 3,
    trials_per_instance: int = 10,
    seed: int = 0,
    opt_method: str = "auto",
    engine: str = "reference",
) -> SweepResult:
    """Run a parameter sweep.

    Parameters
    ----------
    parameter_points:
        Pairs ``(label, factory)``; the factory receives an RNG and returns a
        fresh instance for that parameter point.
    algorithms:
        The algorithms to evaluate at every point.
    instances_per_point:
        How many independent instances to draw per point.
    trials_per_instance:
        Simulation repetitions per instance for randomized algorithms.
    engine:
        Simulation engine routed to :func:`measure_ratio` — ``"reference"``,
        ``"batch"`` or ``"auto"``.  The engines agree trial for trial, so the
        sweep's numbers do not depend on this; only its runtime does.
    """
    sweep = SweepResult(name=name)
    for point_index, (label, factory) in enumerate(parameter_points):
        instances: List[OnlineInstance] = []
        opts: List[OptEstimate] = []
        bounds = []
        stats_list = []
        for instance_index in range(instances_per_point):
            rng = random.Random((seed, point_index, instance_index).__hash__() & 0x7FFFFFFF)
            instance = factory(rng)
            instances.append(instance)
            opts.append(estimate_opt(instance.system, method=opt_method))
            stats = compute_statistics(instance.system)
            stats_list.append(stats)
            bounds.append(bound_report(stats))

        mean_opt = sum(opt.value for opt in opts) / len(opts)
        mean_theorem1 = sum(report.theorem1 for report in bounds) / len(bounds)
        mean_corollary6 = sum(report.corollary6 for report in bounds) / len(bounds)
        mean_best = sum(report.best for report in bounds) / len(bounds)
        mean_k_max = sum(stats.k_max for stats in stats_list) / len(stats_list)
        mean_sigma_max = sum(stats.sigma_max for stats in stats_list) / len(stats_list)

        for algorithm in algorithms:
            benefits = []
            ratios = []
            for instance, opt in zip(instances, opts):
                measurement = measure_ratio(
                    instance,
                    algorithm,
                    trials=trials_per_instance,
                    seed=seed + point_index,
                    opt=opt,
                    engine=engine,
                )
                benefits.append(measurement.mean_benefit)
                ratios.append(measurement.ratio)
            finite_ratios = [value for value in ratios if math.isfinite(value)]
            mean_ratio = (
                sum(finite_ratios) / len(finite_ratios) if finite_ratios else float("inf")
            )
            max_ratio = max(ratios) if ratios else float("inf")
            sweep.rows.append(
                ExperimentRow(
                    parameter_label=label,
                    algorithm_name=algorithm.name,
                    num_instances=len(instances),
                    mean_benefit=sum(benefits) / len(benefits),
                    mean_opt=mean_opt,
                    mean_ratio=mean_ratio,
                    max_ratio=max_ratio,
                    theorem1_bound=mean_theorem1,
                    corollary6_bound=mean_corollary6,
                    best_bound=mean_best,
                    k_max=mean_k_max,
                    sigma_max=mean_sigma_max,
                )
            )
    return sweep


def summarize_rows(rows: Iterable[ExperimentRow]) -> Dict[str, float]:
    """Aggregate check over many rows: worst measured ratio vs. worst bound."""
    rows = list(rows)
    if not rows:
        return {"rows": 0, "max_ratio": 0.0, "max_bound": 0.0, "all_within_cor6": 1.0}
    finite = [row.mean_ratio for row in rows if math.isfinite(row.mean_ratio)]
    return {
        "rows": float(len(rows)),
        "max_ratio": max(finite) if finite else float("inf"),
        "max_bound": max(row.corollary6_bound for row in rows),
        "all_within_cor6": 1.0 if all(row.within_corollary6 for row in rows) else 0.0,
    }
