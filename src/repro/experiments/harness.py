"""Experiment harness: parameter sweeps with repetitions and summary rows.

The benchmarks build their tables with this harness: an experiment is a
family of instances indexed by a parameter point, each instance is solved
offline (for OPT) and simulated online for every algorithm under test, and
the harness aggregates mean benefit, measured ratio and the applicable
theoretical bounds into one row per (parameter point, algorithm).

Since the orchestrator refactor the sweep body lives in
:mod:`repro.experiments.orchestrator`: the harness decomposes the sweep into
independent ``(point, instance)`` work units, executes them across
``workers`` processes, and merges the results here in deterministic sweep
order.  A parallel sweep is bit-identical to a serial one — same seeds, same
float summation order — so ``workers`` is purely a wall-clock knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.algorithm import OnlineAlgorithm
from repro.experiments.orchestrator import (
    InstanceFactory,
    SweepUnitResult,
    build_sweep_units,
    run_units,
    run_units_resilient,
)
from repro.experiments.resilience import FailureReport, RetryPolicy
from repro.experiments.store import store_path_from_env

__all__ = ["ExperimentRow", "SweepResult", "run_sweep", "summarize_rows"]



@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated row of an experiment table."""

    parameter_label: str
    algorithm_name: str
    num_instances: int
    mean_benefit: float
    mean_opt: float
    mean_ratio: float
    max_ratio: float
    theorem1_bound: float
    corollary6_bound: float
    best_bound: float
    k_max: float
    sigma_max: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "parameter": self.parameter_label,
            "algorithm": self.algorithm_name,
            "instances": self.num_instances,
            "mean_benefit": round(self.mean_benefit, 4),
            "mean_opt": round(self.mean_opt, 4),
            "mean_ratio": round(self.mean_ratio, 4),
            "max_ratio": round(self.max_ratio, 4),
            "thm1_bound": round(self.theorem1_bound, 4),
            "cor6_bound": round(self.corollary6_bound, 4),
            "best_bound": round(self.best_bound, 4),
            "k_max": self.k_max,
            "sigma_max": self.sigma_max,
        }
        for key, value in self.extra.items():
            row[key] = round(value, 4) if isinstance(value, float) else value
        return row

    @property
    def within_theorem1(self) -> bool:
        """Whether the measured mean ratio respects the Theorem 1 bound."""
        return self.mean_ratio <= self.theorem1_bound + 1e-9

    @property
    def within_corollary6(self) -> bool:
        """Whether the measured mean ratio respects the Corollary 6 bound."""
        return self.mean_ratio <= self.corollary6_bound + 1e-9


@dataclass
class SweepResult:
    """All rows of one parameter sweep.

    ``failures`` is empty unless the sweep ran under a
    :class:`~repro.experiments.resilience.RetryPolicy` and some units
    exhausted their retry budget; those units' instances are then missing
    from the affected rows (``num_instances`` says how many survived) and
    each casualty is described by a structured
    :class:`~repro.experiments.resilience.FailureReport`.
    """

    name: str
    rows: List[ExperimentRow] = field(default_factory=list)
    failures: List[FailureReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every unit of the sweep completed (no quarantined units)."""
        return not self.failures

    def rows_for(self, algorithm_name: str) -> List[ExperimentRow]:
        """The rows belonging to one algorithm, in sweep order."""
        return [row for row in self.rows if row.algorithm_name == algorithm_name]

    def algorithms(self) -> List[str]:
        """The distinct algorithm names, in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.algorithm_name not in seen:
                seen.append(row.algorithm_name)
        return seen


def _merge_point(
    label: str,
    point_results: Sequence[SweepUnitResult],
    algorithms: Sequence[OnlineAlgorithm],
    sweep: SweepResult,
) -> None:
    """Fold one point's unit results into sweep rows.

    The aggregation arithmetic — which values are summed, in which order —
    is exactly the serial harness's historical loop, applied to results that
    arrive pre-sorted in instance order; this is what makes a parallel sweep
    reproduce a serial one float for float.

    A point whose every instance was quarantined by the resilient executor
    contributes no rows (the sweep-level ``failures`` list names the
    casualties); points with any surviving instance aggregate over the
    survivors.
    """
    count = len(point_results)
    if count == 0:
        return
    mean_opt = sum(result.opt.value for result in point_results) / count
    mean_theorem1 = sum(result.bounds.theorem1 for result in point_results) / count
    mean_corollary6 = sum(result.bounds.corollary6 for result in point_results) / count
    mean_best = sum(result.bounds.best for result in point_results) / count
    mean_k_max = sum(result.stats.k_max for result in point_results) / count
    mean_sigma_max = sum(result.stats.sigma_max for result in point_results) / count

    for algorithm_index, algorithm in enumerate(algorithms):
        benefits = [
            result.measurements[algorithm_index].mean_benefit
            for result in point_results
        ]
        ratios = [
            result.measurements[algorithm_index].ratio for result in point_results
        ]
        finite_ratios = [value for value in ratios if math.isfinite(value)]
        mean_ratio = (
            sum(finite_ratios) / len(finite_ratios) if finite_ratios else float("inf")
        )
        max_ratio = max(ratios) if ratios else float("inf")
        sweep.rows.append(
            ExperimentRow(
                parameter_label=label,
                algorithm_name=algorithm.name,
                num_instances=count,
                mean_benefit=sum(benefits) / len(benefits),
                mean_opt=mean_opt,
                mean_ratio=mean_ratio,
                max_ratio=max_ratio,
                theorem1_bound=mean_theorem1,
                corollary6_bound=mean_corollary6,
                best_bound=mean_best,
                k_max=mean_k_max,
                sigma_max=mean_sigma_max,
            )
        )


def run_sweep(
    name: str,
    parameter_points: Sequence[Tuple[str, InstanceFactory]],
    algorithms: Sequence[OnlineAlgorithm],
    instances_per_point: int = 3,
    trials_per_instance: int = 10,
    seed: int = 0,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: Union[int, str] = 1,
    store: Union[str, bool, None] = None,
    policy: Optional[RetryPolicy] = None,
    lease_ttl: float = 0.0,
) -> SweepResult:
    """Run a parameter sweep.

    Parameters
    ----------
    parameter_points:
        Pairs ``(label, factory)``; the factory receives an RNG and returns a
        fresh instance for that parameter point.  A factory may also return
        a router :class:`~repro.network.traffic.Trace`: OPT, statistics and
        store keys come from its reduction (``trace.to_instance()``), while
        the batch engines stream the trace directly in bounded memory —
        identical numbers either way.
    algorithms:
        The algorithms to evaluate at every point.
    instances_per_point:
        How many independent instances to draw per point.
    trials_per_instance:
        Simulation repetitions per instance for randomized algorithms.
    engine:
        Simulation engine routed to :func:`measure_ratio` — ``"reference"``,
        ``"batch"``, ``"auto"`` or ``"fast"``.  The exact engines (first
        three) agree trial for trial, so the sweep's numbers do not depend
        on choosing among them; ``"fast"`` is the opt-in statistical
        backend, whose rows agree within pre-registered tolerances but not
        bit for bit (its store units live under their own engine-tagged
        keys for the same reason).
    workers:
        Worker processes for the ``(point, instance)`` work units.
        ``workers=1`` runs everything in-process; any other count produces
        **bit-identical** rows (the orchestrator merges unit results in
        sweep order with the serial summation arithmetic), so this too is a
        runtime knob only.
    store:
        Optional path of a persistent
        :class:`~repro.experiments.store.SolutionStore` file.  Completed
        ``(point, instance)`` units found in the store are skipped and fresh
        ones are persisted, so an interrupted sweep resumes where it stopped
        and a repeated invocation answers from disk.  When omitted
        (``None``), the ``OSP_STORE`` environment variable supplies the
        default; pass ``False`` to force persistence off even when
        ``OSP_STORE`` is set (benchmarks use this for their store-off
        baselines).  A third runtime-only knob: rows are bit-identical with
        the store on, off, warm or cold.
    policy:
        Optional :class:`~repro.experiments.resilience.RetryPolicy`.  When
        set, units execute under the supervised pool of
        :func:`~repro.experiments.orchestrator.run_units_resilient`: worker
        crashes rebuild the pool and requeue only the lost units, transient
        exceptions retry with deterministic backoff, and a unit that fails
        ``max_attempts`` times is quarantined into ``SweepResult.failures``
        while the healthy units complete.  Because every unit is a pure
        function of its content, retries reproduce the exact bits a
        fault-free run yields — a fourth runtime-only knob.
    lease_ttl:
        With a store and ``lease_ttl > 0``, each unit is claimed through
        the store's advisory lease table before computing, letting several
        independent processes share one manifest without (mostly)
        duplicating work.  Purely advisory: results stay first-writer-wins
        and bit-identical whether or not leases are used.
    """
    if store is None:
        store = store_path_from_env()
    elif store is False:
        store = None
    elif store is True:
        raise ValueError(
            "store=True is not a store path; pass a path, None (OSP_STORE "
            "default) or False (force off)"
        )
    units = build_sweep_units(parameter_points, instances_per_point, seed)
    failures: List[FailureReport] = []
    if policy is not None:
        maybe_results, failures = run_units_resilient(
            units,
            algorithms,
            trials=trials_per_instance,
            opt_method=opt_method,
            engine=engine,
            workers=workers,
            store=store,
            policy=policy,
            lease_ttl=lease_ttl,
        )
        results = [result for result in maybe_results if result is not None]
    else:
        results = run_units(
            units,
            algorithms,
            trials=trials_per_instance,
            opt_method=opt_method,
            engine=engine,
            workers=workers,
            store=store,
            lease_ttl=lease_ttl,
        )

    sweep = SweepResult(name=name, failures=failures)
    for point_index, (label, _factory) in enumerate(parameter_points):
        point_results = [
            result for result in results if result.point_index == point_index
        ]
        _merge_point(label, point_results, algorithms, sweep)
    return sweep


def summarize_rows(rows: Iterable[ExperimentRow]) -> Dict[str, float]:
    """Aggregate check over many rows: worst measured ratio vs. worst bound."""
    rows = list(rows)
    if not rows:
        return {"rows": 0, "max_ratio": 0.0, "max_bound": 0.0, "all_within_cor6": 1.0}
    finite = [row.mean_ratio for row in rows if math.isfinite(row.mean_ratio)]
    return {
        "rows": float(len(rows)),
        "max_ratio": max(finite) if finite else float("inf"),
        "max_bound": max(row.corollary6_bound for row in rows),
        "all_within_cor6": 1.0 if all(row.within_corollary6 for row in rows) else 0.0,
    }
