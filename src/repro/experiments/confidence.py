"""Confidence intervals for Monte-Carlo benefit and ratio estimates.

Competitive-ratio measurements average a modest number of randomized runs;
the benchmark tables therefore benefit from an uncertainty estimate.  This
module provides a plain bootstrap (no SciPy dependency) over per-trial
benefits, and a convenience wrapper that measures an algorithm with both a
point estimate and an interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.exceptions import OspError
from repro.experiments.competitive_ratio import (
    OptEstimate,
    estimate_opt,
    simulation_benefits,
)
from repro.experiments.opt_cache import default_opt_cache
from repro.experiments.resilience import RetryPolicy

__all__ = [
    "bootstrap_mean_interval",
    "ConfidenceInterval",
    "RatioWithConfidence",
    "measure_ratio_with_confidence",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a scalar estimate."""

    point: float
    low: float
    high: float
    level: float

    @property
    def width(self) -> float:
        """The width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low - 1e-12 <= value <= self.high + 1e-12

    def __repr__(self) -> str:
        return (
            f"ConfidenceInterval({self.point:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @ {self.level:.0%})"
        )


def bootstrap_mean_interval(
    samples: Sequence[float],
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """A percentile-bootstrap confidence interval for the mean of ``samples``."""
    values = [float(value) for value in samples]
    if not values:
        raise OspError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise OspError(f"confidence level must be in (0, 1), got {level}")
    if resamples < 10:
        raise OspError(f"need at least 10 resamples, got {resamples}")
    point = sum(values) / len(values)
    if len(values) == 1:
        return ConfidenceInterval(point=point, low=point, high=point, level=level)
    rng = random.Random(seed)
    means: List[float] = []
    for _ in range(resamples):
        resample = [values[rng.randrange(len(values))] for _ in values]
        means.append(sum(resample) / len(resample))
    means.sort()
    alpha = (1.0 - level) / 2.0
    low_index = max(0, int(math.floor(alpha * resamples)))
    high_index = min(resamples - 1, int(math.ceil((1.0 - alpha) * resamples)) - 1)
    return ConfidenceInterval(
        point=point, low=means[low_index], high=means[high_index], level=level
    )


@dataclass(frozen=True)
class RatioWithConfidence:
    """A competitive-ratio measurement with bootstrap uncertainty."""

    algorithm_name: str
    opt: OptEstimate
    benefit: ConfidenceInterval
    ratio: ConfidenceInterval

    def respects_bound(self, bound: float) -> bool:
        """Whether even the pessimistic end of the ratio interval is below ``bound``."""
        return self.ratio.high <= bound + 1e-9


def measure_ratio_with_confidence(
    instance: OnlineInstance,
    algorithm: OnlineAlgorithm,
    trials: int = 50,
    seed: int = 0,
    level: float = 0.95,
    opt: Optional[OptEstimate] = None,
    opt_method: str = "auto",
    engine: str = "reference",
    workers: "int | str" = 1,
    policy: Optional[RetryPolicy] = None,
) -> RatioWithConfidence:
    """Measure an algorithm's ratio with a bootstrap confidence interval.

    The ratio interval is obtained by transforming the benefit interval
    through ``opt / x`` (OPT is treated as exact; when it comes from the LP
    relaxation the reported ratio is an upper bound either way).  ``engine``,
    ``workers`` and ``policy`` route the simulations exactly as in
    :func:`~repro.experiments.competitive_ratio.simulation_benefits` — this
    is the most trial-hungry entry point, where the batch engine (and trial
    chunking across worker processes) pays off most.  The per-trial benefit
    sequence, and hence the bootstrap, is bit-identical for every engine,
    worker count and retry policy.
    """
    if opt is None:
        opt = estimate_opt(
            instance.system, method=opt_method, cache=default_opt_cache()
        )
    effective_trials = 1 if algorithm.is_deterministic else trials
    benefits = list(
        simulation_benefits(
            instance,
            algorithm,
            trials=effective_trials,
            seed=seed,
            engine=engine,
            workers=workers,
            policy=policy,
        )
    )
    benefit_interval = bootstrap_mean_interval(benefits, level=level, seed=seed)

    def to_ratio(value: float) -> float:
        return float("inf") if value <= 0 else opt.value / value

    ratio_interval = ConfidenceInterval(
        point=to_ratio(benefit_interval.point),
        low=to_ratio(benefit_interval.high),
        high=to_ratio(benefit_interval.low),
        level=level,
    )
    return RatioWithConfidence(
        algorithm_name=algorithm.name,
        opt=opt,
        benefit=benefit_interval,
        ratio=ratio_interval,
    )
