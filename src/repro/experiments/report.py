"""Plain-text and Markdown rendering of experiment tables.

The benchmark harness prints its tables through these helpers so that the
output of ``pytest benchmarks/ --benchmark-only`` doubles as the textual
reproduction of the paper's claims: each experiment's table lands in
``benchmarks/_results/<id>.txt``, with a :func:`format_markdown_table` twin
in ``<id>.md`` for experiments that report raw rows — those Markdown tables
are what EXPERIMENTS.md quotes, section by section.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_markdown_table", "format_sweep", "banner"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[index]), max((len(line[index]) for line in body), default=0))
        for index in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[index].ljust(widths[index]) for index in range(len(header))))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for line in body:
        lines.append("  ".join(line[index].ljust(widths[index]) for index in range(len(header))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows of dictionaries as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    if not rows:
        return f"**{title}**\n\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(column) for column in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_stringify(row.get(column, "")) for column in columns) + " |"
        )
    return "\n".join(lines)


def format_sweep(sweep, columns: Optional[Sequence[str]] = None) -> str:
    """Render a :class:`~repro.experiments.harness.SweepResult` as text."""
    rows = [row.as_dict() for row in sweep.rows]
    return format_table(rows, columns=columns, title=f"== {sweep.name} ==")


def banner(text: str, width: int = 72) -> str:
    """A visually distinct section banner for benchmark output."""
    bar = "=" * width
    return f"\n{bar}\n{text}\n{bar}"
