"""A command-line self-check: verify the paper's headline claims in one run.

``python -m repro.experiments.runner`` runs a compact version of the
benchmark suite (no pytest required): it measures randPr against the
Theorem 1 / Corollary 6 / Corollary 7 bounds on small workloads, plays the
Theorem 3 adversary against a deterministic baseline, Monte-Carlo-checks
Lemma 1, and prints one table with a pass/fail verdict per claim.  The full,
parameter-swept experiments live in ``benchmarks/``; this runner exists so a
user can sanity-check an installation in about a minute.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from typing import Dict, List, Optional, Union

from repro.algorithms import GreedyWeightAlgorithm, RandPrAlgorithm
from repro.core import compute_statistics
from repro.core.analysis import expected_benefit_closed_form
from repro.core.bounds import (
    corollary6_upper_bound,
    corollary7_upper_bound,
    theorem1_upper_bound,
    theorem3_lower_bound,
)
from repro.experiments.competitive_ratio import (
    ENGINE_CHOICES,
    estimate_opt,
    measure_ratio,
    simulation_benefits,
)
from repro.exceptions import MeasurementFailedError
from repro.experiments.opt_cache import default_opt_cache
from repro.experiments.report import format_table
from repro.experiments.resilience import RetryPolicy
from repro.experiments.store import (
    active_store,
    set_default_store_path,
    store_path_from_env,
)
from repro.lowerbounds import run_deterministic_adversary
from repro.workloads import random_weighted_instance, uniform_both_instance

__all__ = ["self_check", "trace_scale_report", "main"]


def _check_theorem1(
    seed: int, trials: int, engine: str, workers: "int | str",
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    instance = random_weighted_instance(
        28, 40, (2, 4), random.Random(seed), weight_range=(1.0, 6.0)
    )
    stats = compute_statistics(instance.system)
    measurement = measure_ratio(
        instance, RandPrAlgorithm(), trials=trials, seed=seed, engine=engine,
        workers=workers, opt_cache=default_opt_cache(), policy=policy,
    )
    bound = theorem1_upper_bound(stats)
    return {
        "claim": "Thm 1: ratio <= kmax*sqrt(E[s*s$]/E[s$])",
        "measured": round(measurement.ratio, 3),
        "bound": round(bound, 3),
        "holds": measurement.ratio <= bound + 1e-9,
    }


def _check_corollary6(
    seed: int, trials: int, engine: str, workers: "int | str",
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    instance = random_weighted_instance(
        36, 30, (2, 4), random.Random(seed + 1), weight_range=(1.0, 6.0)
    )
    stats = compute_statistics(instance.system)
    measurement = measure_ratio(
        instance, RandPrAlgorithm(), trials=trials, seed=seed, engine=engine,
        workers=workers, opt_cache=default_opt_cache(), policy=policy,
    )
    bound = corollary6_upper_bound(stats)
    return {
        "claim": "Cor 6: ratio <= kmax*sqrt(sigma_max)",
        "measured": round(measurement.ratio, 3),
        "bound": round(bound, 3),
        "holds": measurement.ratio <= bound + 1e-9,
    }


def _check_corollary7(
    seed: int, trials: int, engine: str, workers: "int | str",
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    instance = uniform_both_instance(18, 3, 3, random.Random(seed + 2))
    measurement = measure_ratio(
        instance, RandPrAlgorithm(), trials=trials, seed=seed, engine=engine,
        workers=workers, opt_cache=default_opt_cache(), policy=policy,
    )
    bound = corollary7_upper_bound(instance.system)
    return {
        "claim": "Cor 7: uniform k & load -> ratio <= k",
        "measured": round(measurement.ratio, 3),
        "bound": round(bound, 3),
        "holds": measurement.ratio <= bound + 0.25,
    }


def _check_theorem3(
    seed: int, trials: int, engine: str, workers: "int | str",
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    outcome = run_deterministic_adversary(GreedyWeightAlgorithm(), sigma=3, k=3)
    bound = theorem3_lower_bound(3, 3)
    return {
        "claim": "Thm 3: deterministic ratio >= sigma^(k-1)",
        "measured": round(outcome.ratio, 3),
        "bound": round(bound, 3),
        "holds": outcome.ratio >= bound - 1e-9,
    }


def _check_lemma1(
    seed: int, trials: int, engine: str, workers: "int | str",
    policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    instance = random_weighted_instance(
        12, 16, (2, 3), random.Random(seed + 3), weight_range=(1.0, 5.0)
    )
    predicted = expected_benefit_closed_form(instance.system)
    benefits = simulation_benefits(
        instance,
        RandPrAlgorithm(),
        max(trials * 10, 500),
        seed=seed,
        engine=engine,
        workers=workers,
        policy=policy,
    )
    measured = sum(benefits) / len(benefits)
    relative_error = abs(measured - predicted) / max(predicted, 1e-9)
    return {
        "claim": "Lemma 1: E[w(alg)] = sum w(S)^2/w(N[S])",
        "measured": round(measured, 3),
        "bound": round(predicted, 3),
        "holds": relative_error < 0.1,
    }


def self_check(
    seed: int = 0,
    trials: int = 40,
    engine: str = "auto",
    workers: Union[int, str] = 1,
    policy: Optional[RetryPolicy] = None,
) -> List[Dict[str, object]]:
    """Run every quick claim check and return one row per claim.

    ``engine`` selects the simulator for the Monte-Carlo checks (the batch
    engine and the reference simulator agree trial for trial; ``"auto"``
    simply makes the self-check faster).  ``workers`` splits each check's
    simulation trials across worker processes (``"auto"`` ≈ the CPU count) —
    like the engine choice, it changes the wall clock, never the verdicts
    (the trial chunks concatenate to the identical benefit sequence).

    ``policy`` supervises the simulations with retry/crash recovery (see
    :class:`~repro.experiments.resilience.RetryPolicy`); a check whose
    measurement still fails after every retry raises
    :class:`~repro.exceptions.MeasurementFailedError`.
    """
    checks = (
        _check_theorem1,
        _check_corollary6,
        _check_corollary7,
        _check_theorem3,
        _check_lemma1,
    )
    return [check(seed, trials, engine, workers, policy) for check in checks]


def trace_scale_report(
    packets: int, seed: int = 0, trials: int = 32
) -> Dict[str, object]:
    """Exercise the streaming router engine at trace scale and report.

    Builds an adversarial-burst mega trace of roughly ``packets`` packets
    (zero-padded identifiers, so the streaming pool tracks the burst size,
    not the trace length), reports the compiled trace's exact memory model
    and the streaming randPr throughput, and renders a **bit-identity
    verdict**: on a downscaled trace the streaming engine's trials are
    compared set-for-set against the reference per-packet loop
    (``simulate(trace.to_instance(), ...)``).  The verdict — not the
    throughput — decides the exit code of ``--trace-scale``.
    """
    from repro.core.simulation import simulate_many
    from repro.engine.streaming import (
        DEFAULT_WINDOW_SLOTS,
        compile_trace,
        simulate_trace_batch,
    )
    from repro.network.traffic import AdversarialBurstGenerator

    burst, per_frame = 8, 4
    generator = AdversarialBurstGenerator(
        burst_size=burst, packets_per_frame=per_frame, gap_slots=1, id_pad=8
    )
    waves = max(1, packets // (burst * per_frame))
    trace = generator.generate(num_waves=waves)
    compiled = compile_trace(trace)
    stats: Dict[str, object] = {}
    started = time.perf_counter()
    simulate_trace_batch(compiled, "randPr", trials=trials, seed=seed, stats=stats)
    elapsed = time.perf_counter() - started
    throughput = trace.num_packets * trials / max(elapsed, 1e-9)

    small = generator.generate(num_waves=min(waves, 40))
    small_trials = min(trials, 8)
    reference = simulate_many(
        small.to_instance(), RandPrAlgorithm(), trials=small_trials, seed=seed
    )
    identical = True
    for window in (1, 7, None):
        batch = simulate_trace_batch(
            small, "randPr", trials=small_trials, seed=seed, window_slots=window
        )
        for trial, result in enumerate(reference):
            if (
                batch.completed_sets(trial) != result.completed_sets
                or float(batch.benefits[trial]) != result.benefit
            ):
                identical = False
    return {
        "packets": trace.num_packets,
        "frames": trace.num_frames,
        "trials": trials,
        "seconds": round(elapsed, 3),
        "packet_trials_per_second": round(throughput),
        "peak_pooled_rows": stats["peak_pooled_rows"],
        "peak_active_frames_model": compiled.peak_active_frames(DEFAULT_WINDOW_SLOTS),
        "bit_identical": identical,
    }


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a non-zero exit code if any claim check fails."""
    parser = argparse.ArgumentParser(
        description="Quick self-check of the OSP reproduction against the paper's claims.",
        epilog=(
            "examples:\n"
            "  python -m repro.experiments.runner\n"
            "      default self-check (batch engine where supported, one process)\n"
            "  python -m repro.experiments.runner --workers 4\n"
            "      split the Monte-Carlo trials of each check over 4 worker\n"
            "      processes; verdicts and measured numbers are identical\n"
            "  python -m repro.experiments.runner --engine reference --workers 2\n"
            "      exercise the per-arrival reference simulator, two processes\n"
            "  python -m repro.experiments.runner --trials 200 --seed 7\n"
            "      a heavier, reseeded run (more trials per randomized check)\n"
            "  python -m repro.experiments.runner --store .osp-store.sqlite\n"
            "      persist OPT solves to a file-backed store; the second\n"
            "      invocation answers them from disk (identical verdicts)\n"
            "  python -m repro.experiments.runner --workers auto --max-attempts 3\n"
            "      one worker per CPU, supervised: crashed workers are\n"
            "      replaced and their trials retried (identical verdicts)"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--trials", type=int, default=40, help="simulation trials per randomized check"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="simulation engine: the vectorized batch engine ('auto'/'batch'), "
        "the per-arrival reference simulator ('reference'), or the "
        "statistical counter-based backend ('fast': matches the exact "
        "engines in distribution, not bit for bit)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        metavar="N|auto",
        help="worker processes for the simulation trials (default 1: "
        "in-process; 'auto' ≈ the CPU count); any value yields bit-identical "
        "results — this is a wall-clock knob",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="supervise the simulations with up to N attempts per work unit "
        "(crash recovery + deterministic-backoff retries); omitted: "
        "unsupervised, any failure is fatal immediately",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock timeout under --max-attempts supervision "
        "(a stuck unit is charged an attempt and retried)",
    )
    parser.add_argument(
        "--trace-scale",
        type=int,
        default=None,
        metavar="PACKETS",
        help="instead of the claim checks, push a ~PACKETS-packet router "
        "trace through the streaming engine: prints throughput and the "
        "bounded-memory model, and exits non-zero if the streaming results "
        "are not bit-identical to the reference loop on a downscaled trace",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent solution-store file shared by all processes "
        "(default: the OSP_STORE environment variable; unset disables "
        "persistence); like --engine/--workers this never changes results",
    )
    parser.add_argument(
        "--fabric-manifest",
        default=None,
        metavar="PATH",
        help="multi-host fabric manifest (see docs/FABRIC.md); with "
        "--fabric-role this runs one fabric step instead of the self-check",
    )
    parser.add_argument(
        "--fabric-role",
        choices=("plan", "work", "reduce"),
        default=None,
        help="fabric step to run against --fabric-manifest: 'plan' writes "
        "the manifest, 'work' claims and executes units into --store, "
        "'reduce' merges --fabric-shards into --fabric-out and re-emits "
        "the deterministic rows",
    )
    parser.add_argument(
        "--fabric-spec",
        default="smoke",
        metavar="NAME",
        help="named sweep spec for --fabric-role plan (default: smoke)",
    )
    parser.add_argument(
        "--fabric-out",
        default=None,
        metavar="PATH",
        help="canonical output store for --fabric-role reduce",
    )
    parser.add_argument(
        "--fabric-shards",
        nargs="+",
        default=None,
        metavar="PATH",
        help="shard store files for --fabric-role reduce",
    )
    arguments = parser.parse_args(argv)

    if (arguments.fabric_role is None) != (arguments.fabric_manifest is None):
        parser.error("--fabric-role and --fabric-manifest go together")
    if arguments.fabric_role is not None:
        # Delegate to the fabric CLI so exit codes (0 ok / 1 incomplete
        # reduce / 3 exhausted retries) stay identical either way in.
        from repro.experiments import fabric

        if arguments.fabric_role == "plan":
            return fabric.main(
                ["plan", "--spec", arguments.fabric_spec,
                 "--out", arguments.fabric_manifest]
            )
        if arguments.fabric_role == "work":
            if arguments.store is None:
                parser.error("--fabric-role work needs --store (the shard file)")
            fabric_argv = [
                "work", arguments.fabric_manifest,
                "--store", arguments.store,
                "--workers", str(arguments.workers),
            ]
            if arguments.max_attempts is not None:
                fabric_argv += ["--max-attempts", str(arguments.max_attempts)]
            if arguments.unit_timeout is not None:
                fabric_argv += ["--unit-timeout", str(arguments.unit_timeout)]
            return fabric.main(fabric_argv)
        if arguments.fabric_out is None or not arguments.fabric_shards:
            parser.error(
                "--fabric-role reduce needs --fabric-out and --fabric-shards"
            )
        return fabric.main(
            ["reduce", arguments.fabric_manifest, "--out", arguments.fabric_out]
            + list(arguments.fabric_shards)
        )

    workers: Union[int, str] = arguments.workers
    if workers != "auto":
        try:
            workers = int(workers)
        except ValueError:
            parser.error(f"--workers must be an integer or 'auto', got {workers!r}")

    policy = None
    if arguments.max_attempts is not None or arguments.unit_timeout is not None:
        policy = RetryPolicy(
            max_attempts=arguments.max_attempts or 3,
            timeout=arguments.unit_timeout,
        )

    if arguments.trace_scale is not None:
        if arguments.trace_scale < 1:
            parser.error("--trace-scale needs a positive packet count")
        report = trace_scale_report(
            arguments.trace_scale, seed=arguments.seed, trials=arguments.trials
        )
        print(
            format_table(
                [report],
                columns=list(report),
                title=f"Streaming router engine at ~{arguments.trace_scale} packets",
            )
        )
        print()
        print(
            "STREAMING BIT-IDENTICAL TO REFERENCE"
            if report["bit_identical"]
            else "STREAMING DIVERGED FROM REFERENCE"
        )
        return 0 if report["bit_identical"] else 1

    if arguments.store is not None:
        # Published via OSP_STORE so pool workers inherit the same file.
        set_default_store_path(arguments.store)
    store_path = store_path_from_env()
    if store_path is not None:
        print(f"solution store: {store_path}")

    try:
        rows = self_check(
            seed=arguments.seed,
            trials=arguments.trials,
            engine=arguments.engine,
            workers=workers,
            policy=policy,
        )
    except MeasurementFailedError as error:
        # Machine-readable failure summary: which units died, how, per attempt.
        print("MEASUREMENT FAILED — retry budget exhausted")
        print(
            json.dumps(
                {
                    "error": str(error),
                    "failures": [report.as_dict() for report in error.failures],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 3
    print(
        format_table(
            rows,
            columns=["claim", "measured", "bound", "holds"],
            title="Online set packing reproduction — self-check "
            f"(seed={arguments.seed}, trials={arguments.trials})",
        )
    )
    all_hold = all(row["holds"] for row in rows)
    store = active_store()
    if store is not None:
        stats = store.stats()
        print(
            f"\nstore: {stats['opt_hits']} OPT solve(s) answered from disk, "
            f"{stats['opt_misses']} computed fresh; "
            f"{stats['opt_entries']} entries persisted"
        )
    print()
    print("ALL CLAIMS HOLD" if all_hold else "SOME CLAIMS FAILED — see table above")
    return 0 if all_hold else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
