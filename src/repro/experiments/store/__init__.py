"""A persistent, cross-process store for OPT solutions and sweep results.

The in-memory :class:`~repro.experiments.opt_cache.OptCache` dies with its
process, so every benchmark invocation — and every worker process inside one
— re-solves the same branch-and-bound OPT instances from scratch.  This
module adds the missing durable tier: a content-addressed, file-backed
:class:`SolutionStore` shared by all worker processes, layered *under* the
in-memory cache as a read-through/write-back tier.  The lookup order is

    memory ``OptCache``  →  ``SolutionStore`` (SQLite file)  →  compute

and every computed value is written back to both tiers, so a warm second
invocation answers the dominant offline solves (and, for full sweeps, whole
``(point, instance, algorithms)`` work units) from disk.

**Keys are content hashes, not identities.**  An OPT entry is keyed by the
set system's content fingerprint plus the estimation policy
(``sha256(system)|method|exact_set_limit`` — see
:func:`~repro.experiments.opt_cache.system_fingerprint`); a sweep-unit entry
by :func:`unit_key`, a SHA-256 over the instance fingerprint (system content
+ arrival order + name), the measurement seed, the trial count, the OPT
policy, the ordered algorithm identities and — for non-exact engines only
(:data:`NONEXACT_ENGINES`) — an engine tag.  A changed instance therefore
*misses* — it can never silently reuse a stale solution — and every stored
row carries a SHA-256 checksum of its payload, so a garbled row is detected,
warned about and dropped instead of being deserialized.

**Crash safety.**  The store is a single SQLite file: writers go through
SQLite's journal (``synchronous=FULL``, the fsync-on-commit default), and
concurrent writers of the same key converge to one entry via
``INSERT OR IGNORE`` under SQLite's file locking (``busy_timeout`` retries).
A store file that cannot be opened — truncated, overwritten, or from an
incompatible format version — is *quarantined*: renamed to
``<path>.corrupt[-N]`` with a warning, and a fresh store takes its place.
Results are never affected; the store changes wall-clock only.

**Determinism contract.**  Stored payloads are pickled result records
(plain dataclasses of Python floats), so a warm read returns bit-identical
values to the cold compute it replaced.  ``benchmarks/bench_store_warm.py``
and ``tests/test_store.py`` assert sweep rows are bit-identical across
{store on, off} × {cold, warm} × worker counts.

**Command line.**  ``python -m repro.experiments.store`` ships the three
maintenance verbs (see :func:`main` and the README's "Store maintenance"
section): ``inspect`` (read-only summary + optional checksum audit),
``vacuum`` (drop garbled rows, reclaim file space) and ``merge`` (combine
store files, e.g. per-machine stores after a fleet run).

The two module constants are part of the on-disk contract:

>>> STORE_FORMAT_VERSION
2
>>> STORE_ENV_VAR
'OSP_STORE'
"""

from __future__ import annotations

import argparse
import hashlib
import os
import pickle
import sqlite3
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.instance import OnlineInstance
from repro.exceptions import StoreFileError

__all__ = [
    "STORE_FORMAT_VERSION",
    "STORE_ENV_VAR",
    "NONEXACT_ENGINES",
    "LEASE_DEFAULT_TTL",
    "Lease",
    "SolutionStore",
    "StoreCorruptionWarning",
    "StoreFileError",
    "merge_stores",
    "algorithm_identity",
    "instance_fingerprint",
    "unit_key",
    "store_for_path",
    "store_path_from_env",
    "set_default_store_path",
    "active_store",
    "main",
]

#: Bumped whenever the meaning of stored values changes (simulation
#: semantics, key composition, payload encoding).  A store written under a
#: different version is quarantined wholesale rather than partially reused.
#: History: 1 → 2 when the key composition gained the non-exact engine tag
#: (``engine="fast"`` results differ from exact-engine results, so the two
#: may never share a row).
STORE_FORMAT_VERSION = 2

#: Engines whose results are *statistically* equivalent to — but not
#: bit-identical with — the exact engines.  These contribute an engine tag
#: to :func:`unit_key` (and :func:`repro.battles.battle_key`) so their rows
#: never warm-hit exact rows; every exact engine stays untagged and keeps
#: sharing one key.  Adding an engine here is a cache-key semantic change:
#: bump :data:`STORE_FORMAT_VERSION` with it.
NONEXACT_ENGINES = frozenset({"fast"})

#: Environment variable naming the default store file.  Set in the parent
#: process (e.g. by ``runner --store`` or the benchmark suite) it is
#: inherited by pool workers, so every process shares one file.
STORE_ENV_VAR = "OSP_STORE"


#: Default time-to-live (seconds) of an advisory work-unit lease.  Sized for
#: sweep units that take seconds, not minutes: long enough that a healthy
#: claimant finishes well inside it, short enough that a dead claimant's
#: unit is stolen quickly.
LEASE_DEFAULT_TTL = 60.0


@dataclass(frozen=True)
class Lease:
    """An advisory claim on one work unit: who is computing it, until when.

    Leases are **runtime metadata, not results**: they partition a unit
    manifest between concurrent processes so the same unit is rarely
    computed twice, but they never gate correctness — a process that loses
    (or ignores) a lease and computes anyway produces the identical bits,
    and ``INSERT OR IGNORE`` first-writer-wins on the result row remains
    the convergence rule.  That is why the ``leases`` table is excluded
    from the payload tables (``__len__``/``stats`` payload counts, checksum
    audits, ``merge``) and why adding it did **not** bump
    ``STORE_FORMAT_VERSION``.

    >>> lease = Lease(owner="host:123", expires_at=0.0)
    >>> lease.expired(now=1.0)
    True
    """

    owner: str
    expires_at: float

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the lease's TTL has passed (and the unit may be stolen)."""
        return self.expires_at <= (time.time() if now is None else now)


class StoreCorruptionWarning(UserWarning):
    """Warns that a store file or row failed validation and was quarantined.

    Corruption never fails a run — results are recomputed and only warm-start
    time is lost — so the signal is an ordinary :class:`UserWarning`:

    >>> issubclass(StoreCorruptionWarning, UserWarning)
    True
    """


def algorithm_identity(algorithm) -> Optional[str]:
    """A stable identity string for an algorithm, or ``None`` if uncacheable.

    The identity is the algorithm's type (module-qualified) plus its
    ``name``, extended by the algorithm's ``cache_identity`` attribute —
    the explicit opt-in declaring that the attribute (possibly empty)
    captures *all* behaviour-affecting constructor state.  Every library
    algorithm opts in (``RandPrAlgorithm`` exposes its tie-break flag,
    ``HedgingAlgorithm`` its epsilon, the salted algorithms their salt);
    ``cache_identity = None`` — or no attribute at all, the default for
    unknown user algorithms — declares the algorithm **uncacheable**, and
    units measuring it bypass the store entirely.  Defaulting unknown
    algorithms to uncacheable is deliberate: two differently-configured
    instances of the same class must never silently share stored results.

    >>> from repro.algorithms import RandPrAlgorithm
    >>> algorithm_identity(RandPrAlgorithm())
    'repro.algorithms.randpr.RandPrAlgorithm|randPr|tie_break_by_id=True'
    >>> class CustomAlgorithm(RandPrAlgorithm):
    ...     pass                        # no explicit opt-in of its own…
    >>> CustomAlgorithm.cache_identity = None
    >>> algorithm_identity(CustomAlgorithm()) is None     # …is uncacheable
    True
    """
    extra = getattr(algorithm, "cache_identity", None)
    if extra is None:
        return None
    base = (
        f"{type(algorithm).__module__}.{type(algorithm).__qualname__}"
        f"|{algorithm.name}"
    )
    return f"{base}|{extra}" if extra else base


def instance_fingerprint(instance: OnlineInstance) -> str:
    """A content hash of an online instance: system + arrival order + name.

    Extends :func:`~repro.experiments.opt_cache.system_fingerprint` (sets,
    weights, capacities) with the arrival order — simulation results depend
    on it — and the instance name, which is embedded in stored measurement
    records.

    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"]}, weights={"A": 2.0})
    >>> first = instance_fingerprint(OnlineInstance(system, name="demo"))
    >>> len(first)                       # a SHA-256 hex digest
    64
    >>> first == instance_fingerprint(OnlineInstance(system, name="demo"))
    True
    >>> first == instance_fingerprint(OnlineInstance(system, name="renamed"))
    False
    """
    # Imported here: opt_cache imports this module lazily for the default
    # store attachment, so a top-level import would be circular.
    from repro.experiments.opt_cache import system_fingerprint

    digest = hashlib.sha256()
    digest.update(system_fingerprint(instance.system).encode("ascii"))
    digest.update(b"\x1d")
    digest.update(repr(instance.name).encode("utf-8"))
    digest.update(b"\x1d")
    for element in instance.arrival_order:
        digest.update(repr(element).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def unit_key(
    instance: OnlineInstance,
    measure_seed: int,
    algorithms: Sequence,
    trials: int,
    opt_method: str,
    exact_set_limit: int,
    engine: str = "auto",
) -> Optional[str]:
    """The store key of one sweep work unit, or ``None`` if uncacheable.

    The key is a SHA-256 over every input that determines the unit's result:
    the instance content fingerprint, the shared measurement seed, the trial
    count, the OPT estimation policy and the *ordered* algorithm identities.
    The worker count is deliberately excluded — parallelism is a wall-clock
    knob — and so is the engine *when it is exact*: the exact engines agree
    trial for trial, so keying on them would only split the cache between
    equal results.  A non-exact engine (:data:`NONEXACT_ENGINES`, i.e.
    ``"fast"``) computes *different* bits under a statistical contract, so
    it contributes an explicit engine tag: its rows live under their own
    keys and can never warm-hit — or be warm-hit by — exact rows.

    ``None`` (any algorithm without a stable identity) marks the unit as
    uncacheable; callers must compute it and must not consult the store.

    >>> from repro.algorithms import RandPrAlgorithm, UniformRandomAlgorithm
    >>> from repro.core import OnlineInstance, SetSystem
    >>> system = SetSystem(sets={"A": ["u", "v"]}, weights={"A": 2.0})
    >>> instance = OnlineInstance(system, name="demo")
    >>> key = unit_key(instance, 5, [RandPrAlgorithm()], 10, "auto", 18)
    >>> len(key)
    64
    >>> key == unit_key(instance, 6, [RandPrAlgorithm()], 10, "auto", 18)
    False
    >>> exact_engines_share = unit_key(instance, 5, [RandPrAlgorithm()], 10,
    ...                                "auto", 18, engine="batch")
    >>> exact_engines_share == key
    True
    >>> fast = unit_key(instance, 5, [RandPrAlgorithm()], 10, "auto", 18,
    ...                 engine="fast")
    >>> fast == key                      # statistical engine: own key
    False
    >>> class OpaqueAlgorithm(UniformRandomAlgorithm):
    ...     cache_identity = None        # uncacheable: no stable identity
    >>> unit_key(instance, 5, [OpaqueAlgorithm()], 10, "auto", 18) is None
    True
    """
    identities = []
    for algorithm in algorithms:
        identity = algorithm_identity(algorithm)
        if identity is None:
            return None
        identities.append(identity)
    engine_tag = (f"engine={engine}",) if engine in NONEXACT_ENGINES else ()
    digest = hashlib.sha256()
    for part in (
        f"osp-unit-v{STORE_FORMAT_VERSION}",
        instance_fingerprint(instance),
        str(measure_seed),
        str(trials),
        opt_method,
        str(exact_set_limit),
        *engine_tag,
        *identities,
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _quarantine_path(path: str) -> str:
    """The first free ``<path>.corrupt[-N]`` name."""
    candidate = f"{path}.corrupt"
    counter = 1
    while os.path.exists(candidate):
        candidate = f"{path}.corrupt-{counter}"
        counter += 1
    return candidate


#: Every payload table of the store file, in display order.  ``constructions``
#: and ``frontiers`` were added after the first release of format version 1;
#: the verbs that read *foreign* files (CLI inspect/merge sources) therefore
#: tolerate their absence (see :func:`_existing_payload_tables`), while every
#: file this code opens for writing gets all four created on connect.
_PAYLOAD_TABLES = ("opt", "units", "constructions", "frontiers")


class SolutionStore:
    """A file-backed, content-addressed store of computed experiment results.

    One SQLite file holds four payload tables — ``opt`` (offline-optimum
    estimates, keyed by :meth:`~repro.experiments.opt_cache.OptCache.key`),
    ``units`` (whole sweep-unit results, keyed by :func:`unit_key`),
    ``constructions`` (deterministic-per-key instance constructions, e.g.
    the Lemma 9 samples of
    :func:`repro.lowerbounds.stored_lemma9_instance`) and ``frontiers``
    (battle-round outcomes of :mod:`repro.battles`, keyed by
    :func:`repro.battles.battle_key`) — each row a
    pickled payload with a SHA-256 checksum.  The store is safe to share
    between concurrent worker processes: writes use ``INSERT OR IGNORE``
    (first writer wins; every writer computed the identical value) under
    SQLite's locking, and reads that hit a garbled row warn, drop the row and
    report a miss instead of crashing.

    A fifth table, ``leases``, holds *advisory* work-unit claims
    (:meth:`claim_lease` / :meth:`renew_lease` / :meth:`release_lease`,
    steal-after-TTL) so N processes sharing one store partition a unit
    manifest without duplicate work.  It is runtime metadata, not a payload
    table: excluded from payload counts, checksum audits and ``merge``, and
    its addition did not bump ``STORE_FORMAT_VERSION`` (see :class:`Lease`).

    Counters (``opt_hits``/``opt_misses``/``unit_hits``/``unit_misses``/
    ``construction_hits``/``construction_misses``/``frontier_hits``/
    ``frontier_misses``/``integrity_failures``) are per-process and exposed
    via :meth:`stats`.

    >>> import os, tempfile
    >>> path = os.path.join(tempfile.mkdtemp(), "demo.sqlite")
    >>> store = SolutionStore(path)
    >>> store.put_opt("some-content-key", 3.5)
    >>> store.get_opt("some-content-key")
    3.5
    >>> store.get_opt("never-stored") is None
    True
    >>> store                                    # doctest: +ELLIPSIS
    SolutionStore('...demo.sqlite', opt_hits=1, unit_hits=0)
    >>> store.close()
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.opt_hits = 0
        self.opt_misses = 0
        self.unit_hits = 0
        self.unit_misses = 0
        self.construction_hits = 0
        self.construction_misses = 0
        self.frontier_hits = 0
        self.frontier_misses = 0
        self.integrity_failures = 0
        self._connection = self._open()

    # ------------------------------------------------------------------
    # Connection management and quarantine
    # ------------------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        """Open (and validate) the store file, quarantining it on corruption.

        Opening retries a few times because concurrent workers may race on a
        corrupt file: the first worker quarantines it and rebuilds a fresh
        store, and a sibling whose open also failed must then *retry the
        connect* (the file it failed on is gone) rather than crash.  In the
        worst interleaving a sibling can quarantine a just-rebuilt (valid)
        store — that costs warm-start entries, never correctness, since
        every open connection keeps operating on its own (possibly renamed)
        file and results never depend on the store.
        """
        last_error: Optional[sqlite3.DatabaseError] = None
        for _attempt in range(3):
            try:
                return self._connect_and_validate()
            except sqlite3.OperationalError as exc:
                # Cannot-open errors (the path is a directory, permissions,
                # a held lock) are environment problems, not corruption:
                # they are never quarantined — but they *are* retried,
                # because a sibling quarantining the file between this
                # connect and its validation surfaces exactly here, with a
                # flavor that depends on the interleaving ("attempt to
                # write a readonly database" / "disk I/O error" against
                # the renamed-away inode).  The race resolves on the next
                # connect; a genuine environment problem fails every retry
                # and surfaces unchanged, with the user's file untouched.
                last_error = exc
            except sqlite3.DatabaseError as exc:
                last_error = exc
                if os.path.isfile(self.path):
                    # Corrupt content (truncated/garbled file): move it aside.
                    self._quarantine(f"unreadable store file ({exc})")
                # else: a sibling process already quarantined it — retry the
                # connect, which will build (or join) the fresh store.
        raise last_error

    def _connect_and_validate(self) -> sqlite3.Connection:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        connection = sqlite3.connect(self.path, timeout=30.0)
        try:
            connection.execute("PRAGMA busy_timeout = 30000")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS opt "
                "(key TEXT PRIMARY KEY, payload BLOB NOT NULL, checksum TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS units "
                "(key TEXT PRIMARY KEY, payload BLOB NOT NULL, checksum TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS constructions "
                "(key TEXT PRIMARY KEY, payload BLOB NOT NULL, checksum TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS frontiers "
                "(key TEXT PRIMARY KEY, payload BLOB NOT NULL, checksum TEXT NOT NULL)"
            )
            # Advisory work-unit leases: runtime coordination metadata, not a
            # payload table (excluded from _PAYLOAD_TABLES, so from payload
            # counts, checksum audits and merges — see the Lease docstring
            # for why this never bumps STORE_FORMAT_VERSION).
            connection.execute(
                "CREATE TABLE IF NOT EXISTS leases "
                "(key TEXT PRIMARY KEY, owner TEXT NOT NULL, expires_at REAL NOT NULL)"
            )
            connection.execute(
                "INSERT OR IGNORE INTO meta VALUES ('format_version', ?)",
                (str(STORE_FORMAT_VERSION),),
            )
            connection.commit()
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'format_version'"
            ).fetchone()
        except sqlite3.DatabaseError:
            connection.close()
            raise
        if row is None or row[0] != str(STORE_FORMAT_VERSION):
            connection.close()
            found = None if row is None else row[0]
            self._quarantine(
                f"format version {found!r} != {STORE_FORMAT_VERSION} "
                "(written by an incompatible repo revision)"
            )
            return self._connect_and_validate()
        return connection

    def _quarantine(self, reason: str) -> Optional[str]:
        """Move the store file aside with a warning; ``None`` if nothing moved.

        Only regular files are ever quarantined — a directory (or anything
        else) at the path is the user's data, not a corrupt store, and must
        be left untouched.
        """
        self.integrity_failures += 1
        if not os.path.isfile(self.path):
            return None
        destination = _quarantine_path(self.path)
        os.replace(self.path, destination)
        warnings.warn(
            f"quarantined solution store {self.path!r} -> {destination!r}: "
            f"{reason}; starting a fresh store (results are unaffected — "
            "only warm-start time is lost)",
            StoreCorruptionWarning,
            stacklevel=3,
        )
        return destination

    def close(self) -> None:
        """Close the connection and evict this store from the path registry.

        Eviction matters: without it a later :func:`store_for_path` call
        would hand out this dead instance, whose reads silently miss and
        whose counters raise — a fresh open must get a fresh connection.
        """
        self._connection.close()
        if _OPEN_STORES.get(self.path) is self:
            del _OPEN_STORES[self.path]

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def _get(self, table: str, key: str):
        try:
            row = self._connection.execute(
                f"SELECT payload, checksum FROM {table} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            self.integrity_failures += 1
            warnings.warn(
                f"solution store read failed for {table}[{key[:12]}…]: {exc}; "
                "treating as a miss",
                StoreCorruptionWarning,
                stacklevel=4,
            )
            return None
        if row is None:
            return None
        payload, checksum = row
        if _checksum(payload) != checksum:
            self.integrity_failures += 1
            self._delete(table, key)
            warnings.warn(
                f"solution store row {table}[{key[:12]}…] failed its checksum; "
                "dropped the garbled row and recomputing",
                StoreCorruptionWarning,
                stacklevel=4,
            )
            return None
        try:
            return pickle.loads(payload)
        except Exception as exc:  # unpicklable despite a valid checksum
            self.integrity_failures += 1
            self._delete(table, key)
            warnings.warn(
                f"solution store row {table}[{key[:12]}…] failed to deserialize "
                f"({exc}); dropped the row and recomputing",
                StoreCorruptionWarning,
                stacklevel=4,
            )
            return None

    def _delete(self, table: str, key: str) -> None:
        try:
            self._connection.execute(f"DELETE FROM {table} WHERE key = ?", (key,))
            self._connection.commit()
        except sqlite3.DatabaseError:
            pass

    def _put(self, table: str, key: str, value) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            # First writer wins: concurrent writers of one key computed the
            # same value (keys are content hashes over every input), so
            # ignoring the later insert converges to a single entry.
            self._connection.execute(
                f"INSERT OR IGNORE INTO {table} VALUES (?, ?, ?)",
                (key, payload, _checksum(payload)),
            )
            self._connection.commit()
        except sqlite3.DatabaseError as exc:
            warnings.warn(
                f"solution store write failed for {table}[{key[:12]}…]: {exc}; "
                "continuing without persisting",
                StoreCorruptionWarning,
                stacklevel=4,
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get_opt(self, key: str):
        """The stored OPT estimate under ``key``, or ``None`` on miss."""
        value = self._get("opt", key)
        if value is None:
            self.opt_misses += 1
        else:
            self.opt_hits += 1
        return value

    def put_opt(self, key: str, value) -> None:
        """Persist an OPT estimate under its content-addressed key."""
        self._put("opt", key, value)

    def get_unit(self, key: str):
        """The stored sweep-unit result under ``key``, or ``None`` on miss."""
        value = self._get("units", key)
        if value is None:
            self.unit_misses += 1
        else:
            self.unit_hits += 1
        return value

    def put_unit(self, key: str, value) -> None:
        """Persist a completed sweep-unit result under its :func:`unit_key`."""
        self._put("units", key, value)

    def get_construction(self, key: str):
        """The stored instance construction under ``key``, or ``None`` on miss.

        Construction keys are caller-chosen strings that must encode every
        input of the (deterministic) construction — e.g.
        ``"lemma9|ell=2|seed=7"`` for
        :func:`repro.lowerbounds.stored_lemma9_instance`.
        """
        value = self._get("constructions", key)
        if value is None:
            self.construction_misses += 1
        else:
            self.construction_hits += 1
        return value

    def put_construction(self, key: str, value) -> None:
        """Persist a deterministic instance construction under its key."""
        self._put("constructions", key, value)

    def get_frontier(self, key: str):
        """The stored battle-round outcome under ``key``, or ``None`` on miss.

        Frontier keys come from :func:`repro.battles.battle_key`: a SHA-256
        over every input that determines the round's outcome (escalator
        identity, algorithm identity, level, seed, trials, OPT policy), with
        the same ``STORE_FORMAT_VERSION`` discipline as :func:`unit_key`.
        """
        value = self._get("frontiers", key)
        if value is None:
            self.frontier_misses += 1
        else:
            self.frontier_hits += 1
        return value

    def put_frontier(self, key: str, value) -> None:
        """Persist a completed battle round under its content-addressed key."""
        self._put("frontiers", key, value)

    # ------------------------------------------------------------------
    # Advisory work-unit leases (claim / renew / release / steal-after-TTL)
    # ------------------------------------------------------------------
    def claim_lease(
        self, key: str, owner: str, ttl: float = LEASE_DEFAULT_TTL
    ) -> bool:
        """Try to claim the unit ``key`` for ``owner``; ``True`` on success.

        A claim succeeds when the key is unleased, the existing lease has
        **expired** (steal-after-TTL: the previous claimant is presumed
        dead) or ``owner`` already holds it (re-claiming extends the TTL,
        so claim doubles as renew).  An unexpired foreign lease makes the
        claim fail — the caller should poll the store for the claimant's
        result instead of duplicating the work.

        Leases are advisory: on any database error the method *fails open*
        (returns ``True``) so a broken store can cost duplicate work but
        never stall a sweep.

        >>> import os, tempfile
        >>> store = SolutionStore(os.path.join(tempfile.mkdtemp(), "l.sqlite"))
        >>> store.claim_lease("unit-key", owner="a", ttl=60.0)
        True
        >>> store.claim_lease("unit-key", owner="b", ttl=60.0)   # held by a
        False
        >>> store.claim_lease("unit-key", owner="a", ttl=60.0)   # a renews
        True
        >>> store.release_lease("unit-key", owner="a")
        >>> store.claim_lease("unit-key", owner="b", ttl=60.0)   # now free
        True
        >>> store.close()
        """
        now = time.time()
        try:
            self._connection.execute(
                "INSERT INTO leases VALUES (?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET "
                "owner = excluded.owner, expires_at = excluded.expires_at "
                "WHERE leases.expires_at <= ? OR leases.owner = excluded.owner",
                (key, owner, now + ttl, now),
            )
            self._connection.commit()
            lease = self.get_lease(key)
            return lease is None or lease.owner == owner
        except sqlite3.DatabaseError as exc:
            warnings.warn(
                f"lease claim failed for [{key[:12]}…]: {exc}; proceeding "
                "without the lease (duplicate work possible, results "
                "unaffected)",
                StoreCorruptionWarning,
                stacklevel=2,
            )
            return True

    def renew_lease(
        self, key: str, owner: str, ttl: float = LEASE_DEFAULT_TTL
    ) -> bool:
        """Extend a lease ``owner`` holds; ``False`` if it was lost/stolen."""
        try:
            cursor = self._connection.execute(
                "UPDATE leases SET expires_at = ? WHERE key = ? AND owner = ?",
                (time.time() + ttl, key, owner),
            )
            self._connection.commit()
            return cursor.rowcount > 0
        except sqlite3.DatabaseError:
            return False

    def release_lease(self, key: str, owner: str) -> None:
        """Drop ``owner``'s lease on ``key`` (no-op if not held)."""
        try:
            self._connection.execute(
                "DELETE FROM leases WHERE key = ? AND owner = ?", (key, owner)
            )
            self._connection.commit()
        except sqlite3.DatabaseError:
            pass

    def get_lease(self, key: str) -> Optional[Lease]:
        """The current :class:`Lease` on ``key`` (possibly expired), or ``None``."""
        try:
            row = self._connection.execute(
                "SELECT owner, expires_at FROM leases WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError:
            return None
        if row is None:
            return None
        return Lease(owner=row[0], expires_at=float(row[1]))

    def lease_counts(self) -> Tuple[int, int]:
        """``(total, active)`` lease rows — ``inspect`` shows both."""
        try:
            total = self._connection.execute(
                "SELECT COUNT(*) FROM leases"
            ).fetchone()[0]
            active = self._connection.execute(
                "SELECT COUNT(*) FROM leases WHERE expires_at > ?", (time.time(),)
            ).fetchone()[0]
            return int(total), int(active)
        except sqlite3.DatabaseError:
            return 0, 0

    def prune_leases(self) -> int:
        """Delete expired lease rows, returning how many were dropped."""
        try:
            cursor = self._connection.execute(
                "DELETE FROM leases WHERE expires_at <= ?", (time.time(),)
            )
            self._connection.commit()
            return cursor.rowcount
        except sqlite3.DatabaseError:
            return 0

    def __len__(self) -> int:
        counts = 0
        for table in _PAYLOAD_TABLES:
            counts += self._connection.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
        return counts

    def stats(self) -> Dict[str, int]:
        """Per-process hit/miss/integrity counters plus stored-entry counts."""
        counts = {
            table: self._connection.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
            for table in _PAYLOAD_TABLES
        }
        return {
            "opt_hits": self.opt_hits,
            "opt_misses": self.opt_misses,
            "unit_hits": self.unit_hits,
            "unit_misses": self.unit_misses,
            "construction_hits": self.construction_hits,
            "construction_misses": self.construction_misses,
            "frontier_hits": self.frontier_hits,
            "frontier_misses": self.frontier_misses,
            "integrity_failures": self.integrity_failures,
            "opt_entries": int(counts["opt"]),
            "unit_entries": int(counts["units"]),
            "construction_entries": int(counts["constructions"]),
            "frontier_entries": int(counts["frontiers"]),
            "lease_entries": self.lease_counts()[0],
        }

    def integrity_report(self) -> Dict[str, int]:
        """Re-checksum every stored row, dropping (and counting) garbled ones."""
        report = {"checked": 0, "dropped": 0}
        for table in _PAYLOAD_TABLES:
            rows = self._connection.execute(
                f"SELECT key, payload, checksum FROM {table}"
            ).fetchall()
            for key, payload, checksum in rows:
                report["checked"] += 1
                if _checksum(payload) != checksum:
                    report["dropped"] += 1
                    self.integrity_failures += 1
                    self._delete(table, key)
        if report["dropped"]:
            warnings.warn(
                f"solution store {self.path!r}: dropped {report['dropped']} "
                "garbled row(s) during the integrity sweep",
                StoreCorruptionWarning,
                stacklevel=2,
            )
        return report

    def __repr__(self) -> str:
        return (
            f"SolutionStore({self.path!r}, opt_hits={self.opt_hits}, "
            f"unit_hits={self.unit_hits})"
        )


# ----------------------------------------------------------------------
# Per-process store registry and the process-wide default
# ----------------------------------------------------------------------

#: One open store per path per process (SQLite connections are not picklable;
#: worker processes receive the *path* and open their own connection here).
#: The registry is PID-stamped: a fork-started pool worker inherits the dict
#: but must never reuse the parent's connections (SQLite forbids carrying a
#: connection across ``fork()``), so a PID mismatch drops the inherited
#: references — without closing them, they belong to the parent — and the
#: child reopens its own.
_OPEN_STORES: Dict[str, SolutionStore] = {}
_OPEN_STORES_PID = os.getpid()


def store_for_path(path) -> SolutionStore:
    """The per-process :class:`SolutionStore` for ``path`` (opened once).

    >>> import os, tempfile
    >>> path = os.path.join(tempfile.mkdtemp(), "shared.sqlite")
    >>> store_for_path(path) is store_for_path(path)    # one connection/path
    True
    >>> store_for_path(path).close()    # eviction: next call reopens fresh
    """
    global _OPEN_STORES_PID
    if os.getpid() != _OPEN_STORES_PID:
        _OPEN_STORES.clear()
        _OPEN_STORES_PID = os.getpid()
    key = os.path.abspath(str(path))
    store = _OPEN_STORES.get(key)
    if store is None:
        store = SolutionStore(key)
        _OPEN_STORES[key] = store
    return store


def store_path_from_env() -> Optional[str]:
    """The store path named by ``OSP_STORE``, or ``None`` (empty counts as unset).

    >>> import os
    >>> previous = os.environ.get(STORE_ENV_VAR)
    >>> os.environ[STORE_ENV_VAR] = ""
    >>> store_path_from_env() is None       # empty string counts as unset
    True
    >>> os.environ[STORE_ENV_VAR] = "/tmp/example.sqlite"
    >>> store_path_from_env()
    '/tmp/example.sqlite'
    >>> _ = (os.environ.pop(STORE_ENV_VAR, None) if previous is None
    ...      else os.environ.update({STORE_ENV_VAR: previous}))
    """
    raw = os.environ.get(STORE_ENV_VAR)
    return raw if raw else None


def set_default_store_path(path: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide default store path.

    The path is published through the ``OSP_STORE`` environment variable so
    that worker processes forked or spawned afterwards inherit it — that is
    what makes one ``--store`` flag cover a whole process pool.

    >>> import os
    >>> previous = os.environ.get(STORE_ENV_VAR)
    >>> set_default_store_path("/tmp/example.sqlite")
    >>> store_path_from_env()
    '/tmp/example.sqlite'
    >>> set_default_store_path(None)
    >>> store_path_from_env() is None
    True
    >>> set_default_store_path(previous)    # leave the session as it was
    """
    if path is None:
        os.environ.pop(STORE_ENV_VAR, None)
    else:
        os.environ[STORE_ENV_VAR] = str(path)


def active_store() -> Optional[SolutionStore]:
    """The store named by ``OSP_STORE``, opened per-process, or ``None``.

    >>> import os, tempfile
    >>> previous = os.environ.get(STORE_ENV_VAR)
    >>> set_default_store_path(None)
    >>> active_store() is None
    True
    >>> path = os.path.join(tempfile.mkdtemp(), "env.sqlite")
    >>> set_default_store_path(path)
    >>> active_store().path == path
    True
    >>> active_store().close()
    >>> set_default_store_path(previous)
    """
    path = store_path_from_env()
    if path is None:
        return None
    return store_for_path(path)


# ----------------------------------------------------------------------
# Command-line maintenance: python -m repro.experiments.store
# ----------------------------------------------------------------------


def _open_readonly(path: str) -> sqlite3.Connection:
    """Open an *existing* store file read-only, refusing rather than repairing.

    The maintenance verbs that only look at a store (``inspect``, ``merge``
    sources) must never create an empty store at a mistyped path, and must
    never quarantine a file the user pointed them at — a version mismatch or
    unreadable file is reported as an error, not "fixed".
    """
    if not os.path.isfile(path):
        raise StoreFileError(f"{path!r} is not a store file")
    connection = sqlite3.connect(f"file:{os.path.abspath(path)}?mode=ro", uri=True)
    try:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'format_version'"
        ).fetchone()
    except sqlite3.DatabaseError as exc:
        connection.close()
        raise StoreFileError(f"{path!r} is not a readable solution store ({exc})")
    if row is None or row[0] != str(STORE_FORMAT_VERSION):
        connection.close()
        found = None if row is None else row[0]
        raise StoreFileError(
            f"{path!r} has store format version {found!r}, this repo "
            f"reads version {STORE_FORMAT_VERSION}"
        )
    return connection


def _existing_payload_tables(connection: sqlite3.Connection):
    """The payload tables present in a (possibly older) store file.

    Format version 1 files written before the ``constructions`` table
    existed are still valid stores; read-only verbs must not assume it.
    """
    present = {
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    return tuple(table for table in _PAYLOAD_TABLES if table in present)


def _lease_counts(connection: sqlite3.Connection) -> Tuple[int, int]:
    """``(total, active)`` leases in a (possibly pre-lease) store file.

    The ``leases`` table was added after the first release of format
    version 1 — like ``constructions``, its absence in a foreign file is
    not an error, just zero leases.
    """
    present = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' AND name = 'leases'"
    ).fetchone()
    if present is None:
        return 0, 0
    total = connection.execute("SELECT COUNT(*) FROM leases").fetchone()[0]
    active = connection.execute(
        "SELECT COUNT(*) FROM leases WHERE expires_at > ?", (time.time(),)
    ).fetchone()[0]
    return int(total), int(active)


def _audit_rows(connection: sqlite3.Connection):
    """Yield ``(table, key, payload, checksum, ok)`` for every stored row."""
    for table in _existing_payload_tables(connection):
        for key, payload, checksum in connection.execute(
            f"SELECT key, payload, checksum FROM {table}"
        ):
            yield table, key, payload, checksum, _checksum(payload) == checksum


def _cli_inspect(args) -> int:
    connection = _open_readonly(args.path)
    try:
        tables = _existing_payload_tables(connection)
        counts = {
            table: connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in tables
        }
        print(f"solution store {os.path.abspath(args.path)}")
        print(f"  format version: {STORE_FORMAT_VERSION}")
        print(f"  opt entries:    {counts.get('opt', 0)}")
        print(f"  unit entries:   {counts.get('units', 0)}")
        print(f"  construction entries: {counts.get('constructions', 0)}")
        print(f"  frontier entries: {counts.get('frontiers', 0)}")
        total_leases, active_leases = _lease_counts(connection)
        print(f"  lease entries:  {total_leases} ({active_leases} active)")
        print(f"  file size:      {os.path.getsize(args.path)} bytes")
        if args.check:
            garbled = sum(1 for *_ignored, ok in _audit_rows(connection) if not ok)
            total = sum(counts.values())
            print(f"  checksum audit: {total - garbled}/{total} rows valid")
            if garbled:
                print(f"  ({garbled} garbled row(s); run vacuum to drop them)")
                return 1
    finally:
        connection.close()
    return 0


def _cli_vacuum(args) -> int:
    size_before = os.path.getsize(args.path) if os.path.isfile(args.path) else None
    if size_before is None:
        raise StoreFileError(f"{args.path!r} is not a store file")
    # Pre-validate read-only: a version-mismatched or unreadable file must be
    # *refused* here — opening it through SolutionStore directly would
    # quarantine (rename away) the user's file and then report success.
    _open_readonly(args.path).close()
    store = SolutionStore(args.path)
    try:
        report = store.integrity_report()
        pruned_leases = store.prune_leases()
        store._connection.execute("VACUUM")
        store._connection.commit()
    finally:
        store.close()
    size_after = os.path.getsize(args.path)
    print(
        f"vacuumed {os.path.abspath(args.path)}: checked {report['checked']} "
        f"row(s), dropped {report['dropped']} garbled, "
        f"pruned {pruned_leases} expired lease(s), "
        f"{size_before} -> {size_after} bytes"
    )
    return 0


def merge_stores(destination: str, sources: Sequence[str]) -> Dict[str, int]:
    """Merge ``sources`` store files into ``destination``, first writer wins.

    The library form of the ``merge`` CLI verb, shared with the fabric
    reducer (:mod:`repro.experiments.fabric`).  Every source — and an
    *existing* destination — is validated read-only before the destination
    is touched, so an aborted merge (bad source path, source equals
    destination) never leaves a freshly created empty store behind; a bad
    file raises :class:`~repro.exceptions.StoreFileError`.  A fresh
    destination is created on demand, parent directories included (the
    same ``os.makedirs`` path :class:`SolutionStore` uses for any new
    store), so reducers can target output paths that do not exist yet.
    Rows whose payload fails its SHA-256 checksum are skipped — a garbled
    row in one shard never poisons the destination — and duplicate keys
    keep the destination's copy (``INSERT OR IGNORE``), preserving the
    content-addressed first-writer-wins contract.

    Returns a flat report: ``examined``/``skipped`` row counts plus one
    ``added_<table>`` count per payload table.

    >>> import os, tempfile
    >>> base = tempfile.mkdtemp()
    >>> for name in ("a", "b"):
    ...     s = SolutionStore(os.path.join(base, name + ".sqlite"))
    ...     s.put_opt("shared", 1.0); s.put_opt(name, 2.0); s.close()
    >>> report = merge_stores(os.path.join(base, "new", "merged.sqlite"),
    ...                       [os.path.join(base, "a.sqlite"),
    ...                        os.path.join(base, "b.sqlite")])
    >>> (report["examined"], report["added_opt"], report["skipped"])
    (4, 3, 0)
    """
    for source_path in sources:
        if os.path.abspath(source_path) == os.path.abspath(destination):
            raise StoreFileError("a merge source equals the destination")
        _open_readonly(source_path).close()
    # A *fresh* destination is created on demand, but an existing file must
    # be a valid same-version store — refuse rather than quarantine it.
    if os.path.exists(destination):
        _open_readonly(destination).close()
    destination_store = SolutionStore(destination)
    inserted = {table: 0 for table in _PAYLOAD_TABLES}
    examined = skipped = 0
    try:
        for source_path in sources:
            source = _open_readonly(source_path)
            try:
                for table, key, payload, checksum, ok in _audit_rows(source):
                    examined += 1
                    if not ok:
                        skipped += 1
                        continue
                    cursor = destination_store._connection.execute(
                        f"INSERT OR IGNORE INTO {table} VALUES (?, ?, ?)",
                        (key, payload, checksum),
                    )
                    inserted[table] += cursor.rowcount
            finally:
                source.close()
        destination_store._connection.commit()
    finally:
        destination_store.close()
    report = {"examined": examined, "skipped": skipped}
    for table, count in inserted.items():
        report[f"added_{table}"] = count
    return report


def _cli_merge(args) -> int:
    report = merge_stores(args.destination, args.sources)
    print(
        f"merged {len(args.sources)} store(s) into "
        f"{os.path.abspath(args.destination)}: examined "
        f"{report['examined']} row(s), "
        f"added {report['added_opt']} opt + {report['added_units']} unit + "
        f"{report['added_constructions']} construction + "
        f"{report['added_frontiers']} frontier entries, "
        f"skipped {report['skipped']} garbled"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """The ``python -m repro.experiments.store`` maintenance CLI.

    Three verbs: ``inspect`` (read-only summary, ``--check`` audits every
    row's checksum), ``vacuum`` (drop garbled rows and reclaim file space)
    and ``merge`` (combine store files; garbled source rows are skipped,
    duplicate keys keep the destination's copy).

    >>> import os, tempfile
    >>> path = os.path.join(tempfile.mkdtemp(), "demo.sqlite")
    >>> store = SolutionStore(path)
    >>> store.put_opt("content-key", 2.5)
    >>> store.close()
    >>> main(["inspect", path])                  # doctest: +ELLIPSIS
    solution store ...demo.sqlite
      format version: 2
      opt entries:    1
      unit entries:   0
      construction entries: 0
      frontier entries: 0
      lease entries:  0 (0 active)
      file size:      ... bytes
    0
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.store",
        description="Inspect and maintain persistent OSP solution stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect_parser = commands.add_parser(
        "inspect", help="print a read-only summary of a store file"
    )
    inspect_parser.add_argument("path", help="store file to inspect")
    inspect_parser.add_argument(
        "--check",
        action="store_true",
        help="additionally verify every row's SHA-256 checksum",
    )
    inspect_parser.set_defaults(handler=_cli_inspect)

    vacuum_parser = commands.add_parser(
        "vacuum", help="drop garbled rows and reclaim file space"
    )
    vacuum_parser.add_argument("path", help="store file to vacuum (modified in place)")
    vacuum_parser.set_defaults(handler=_cli_vacuum)

    merge_parser = commands.add_parser(
        "merge", help="merge source stores into a destination store"
    )
    merge_parser.add_argument("destination", help="store file to merge into (created if missing)")
    merge_parser.add_argument("sources", nargs="+", help="store files to merge from")
    merge_parser.set_defaults(handler=_cli_merge)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except StoreFileError as exc:
        raise SystemExit(f"error: {exc}")

