"""Entry point for ``python -m repro.experiments.store`` (see :func:`main`)."""

import sys

from repro.experiments.store import main

if __name__ == "__main__":
    sys.exit(main())
