"""Deterministic fault injection for the resilient experiment harness.

The bit-identity guarantee this repo inherits from the PRAM literature —
deterministic results under any scheduler — must extend to *arbitrary fault
schedules*: a sweep that survives crashes has to return the same bits as
one that never saw them.  Proving that needs a way to *cause* the crashes
deterministically.  This module is that mechanism: a :class:`FaultPlan` is
a list of :class:`Fault` directives addressed by ``(unit, attempt, stage)``
coordinates, serialized into the ``OSP_FAULT_PLAN`` environment variable so
it crosses the process boundary into pool workers (exactly like
``OSP_STORE`` does for the solution store).

Four actions cover the failure modes the supervised pool
(:mod:`repro.experiments.resilience`) must survive:

* ``"kill"`` — SIGKILL the executing process mid-unit.  Fires **only in
  pool worker processes** (detected via ``multiprocessing.parent_process``);
  in the supervising process it is a no-op, so a degraded in-process retry
  survives a kill-every-attempt plan by construction.
* ``"raise"`` — raise a transient :class:`FaultInjected` at the addressed
  attempt (omit ``attempt`` for a poison unit that fails every try).
* ``"sleep"`` — sleep ``seconds``, to push a unit past the policy timeout.
* ``"garble-store"`` — flip bytes inside the solution-store file between
  units, exercising the store's checksum/quarantine path under load.

The hook, :func:`maybe_inject`, is called by the resilient map around every
unit attempt and is a no-op (one ``os.environ`` read) when no plan is
installed — production sweeps pay nothing for the machinery.

>>> plan = FaultPlan((Fault(action="raise", unit=0, attempt=1),))
>>> FaultPlan.from_json(plan.to_json()) == plan
True
>>> FaultPlan.seeded(seed=7, num_units=10) == FaultPlan.seeded(seed=7, num_units=10)
True
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.experiments.parallel import stable_seed

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "active_plan",
    "maybe_inject",
]

#: Environment variable carrying the JSON-serialized plan.  Set in the
#: parent process, inherited by pool workers on fork/spawn.
FAULT_PLAN_ENV_VAR = "OSP_FAULT_PLAN"


class FaultInjected(RuntimeError):
    """The transient exception raised by a ``"raise"`` fault.

    Deliberately *not* an :class:`~repro.exceptions.OspError`: an injected
    fault models an arbitrary environmental failure (OOM, a dropped
    connection), not a library error.

    >>> issubclass(FaultInjected, RuntimeError)
    True
    """


@dataclass(frozen=True)
class Fault:
    """One fault directive, addressed by ``(unit, attempt, stage)``.

    ``unit`` / ``attempt`` of ``None`` match every unit / every attempt.
    ``stage`` is ``"start"`` (before the unit body runs — before any store
    write-back) or ``"end"`` (after the unit body returned — after its
    write-back), letting crash tests hit both sides of the persistence
    boundary.  ``seconds`` parameterizes ``"sleep"``; ``path`` overrides the
    ``"garble-store"`` target (default: the ``OSP_STORE`` file).

    >>> Fault(action="kill", unit=2).matches(unit=2, attempt=5, stage="start")
    True
    >>> Fault(action="kill", unit=2, attempt=1).matches(2, 2, "start")
    False
    """

    action: str
    unit: Optional[int] = None
    attempt: Optional[int] = None
    stage: str = "start"
    seconds: float = 0.0
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ("kill", "raise", "sleep", "garble-store"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.stage not in ("start", "end"):
            raise ValueError(f"unknown fault stage {self.stage!r}")

    def matches(self, unit: int, attempt: int, stage: str) -> bool:
        """Whether this fault fires at the given coordinates."""
        return (
            (self.unit is None or self.unit == unit)
            and (self.attempt is None or self.attempt == attempt)
            and self.stage == stage
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault directives, serializable through one env var.

    >>> plan = FaultPlan((Fault(action="sleep", unit=1, seconds=2.0),))
    >>> [fault.action for fault in plan.matching(1, 1, "start")]
    ['sleep']
    >>> plan.matching(0, 1, "start")
    []
    """

    faults: Tuple[Fault, ...] = ()

    def matching(self, unit: int, attempt: int, stage: str) -> List[Fault]:
        """The faults that fire at ``(unit, attempt, stage)``, in plan order."""
        return [fault for fault in self.faults if fault.matches(unit, attempt, stage)]

    def to_json(self) -> str:
        """The plan as the JSON document ``OSP_FAULT_PLAN`` carries."""
        return json.dumps(
            {"faults": [asdict(fault) for fault in self.faults]}, sort_keys=True
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        """Parse a :meth:`to_json` document (unknown keys are rejected)."""
        document = json.loads(raw)
        return cls(
            faults=tuple(Fault(**entry) for entry in document.get("faults", ()))
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_units: int,
        kills: int = 1,
        transients: int = 1,
        sleeps: int = 0,
        sleep_seconds: float = 5.0,
    ) -> "FaultPlan":
        """A deterministic plan with victims drawn via ``stable_seed``.

        The chaos CI job uses this: the same ``(seed, num_units)`` always
        injures the same units at the same attempts, on every platform and
        ``PYTHONHASHSEED``, so a failing fault schedule is reproducible by
        number alone.

        >>> plan = FaultPlan.seeded(seed=0, num_units=8, kills=1, transients=2)
        >>> sorted(fault.action for fault in plan.faults)
        ['kill', 'raise', 'raise']
        """
        if num_units < 1:
            raise ValueError(f"num_units must be >= 1, got {num_units}")
        faults: List[Fault] = []
        for index in range(kills):
            victim = stable_seed("fault-kill", seed, index) % num_units
            faults.append(Fault(action="kill", unit=victim, attempt=1))
        for index in range(transients):
            victim = stable_seed("fault-raise", seed, index) % num_units
            faults.append(Fault(action="raise", unit=victim, attempt=1))
        for index in range(sleeps):
            victim = stable_seed("fault-sleep", seed, index) % num_units
            faults.append(
                Fault(action="sleep", unit=victim, attempt=1, seconds=sleep_seconds)
            )
        return cls(faults=tuple(faults))

    def install(self) -> None:
        """Publish the plan via ``OSP_FAULT_PLAN`` for this process tree."""
        os.environ[FAULT_PLAN_ENV_VAR] = self.to_json()

    @staticmethod
    def uninstall() -> None:
        """Remove any installed plan (no-op when none is set)."""
        os.environ.pop(FAULT_PLAN_ENV_VAR, None)


#: Parse cache: the env string is read on every hook call, but the JSON is
#: only re-parsed when its value changes.
_PARSED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The installed :class:`FaultPlan`, or ``None`` (the hot no-plan path).

    A malformed ``OSP_FAULT_PLAN`` raises immediately rather than silently
    disabling injection — a chaos test with a typo must fail loudly, not
    pass vacuously.

    >>> FaultPlan.uninstall()
    >>> active_plan() is None
    True
    """
    global _PARSED
    raw = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not raw:
        return None
    cached_raw, cached_plan = _PARSED
    if raw != cached_raw:
        _PARSED = (raw, FaultPlan.from_json(raw))
    return _PARSED[1]


def _in_worker_process() -> bool:
    """Whether this process is a multiprocessing child (a pool worker)."""
    return multiprocessing.parent_process() is not None


def _garble_file(path: str) -> None:
    """Flip a run of bytes near the end of ``path`` (payload, not header).

    Targets the tail because SQLite keeps its header and schema pages at
    the front — garbling there quarantines the whole file, while the tail
    holds row payloads whose corruption exercises the per-row checksum
    path.  Both outcomes are survivable; the tests want the finer one more
    often.  A missing file is a no-op (store-off runs).
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    offset = max(0, size - 512)
    length = min(64, size - offset)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        chunk = handle.read(length)
        handle.seek(offset)
        handle.write(bytes(byte ^ 0xFF for byte in chunk))


def _fire(fault: Fault, unit: int, attempt: int) -> None:
    if fault.action == "kill":
        if _in_worker_process():
            os.kill(os.getpid(), signal.SIGKILL)
        return  # in the supervising process a kill is a no-op by design
    if fault.action == "raise":
        raise FaultInjected(
            f"injected transient failure (unit {unit}, attempt {attempt})"
        )
    if fault.action == "sleep":
        time.sleep(fault.seconds)
        return
    if fault.action == "garble-store":
        target = fault.path or os.environ.get("OSP_STORE")
        if target:
            _garble_file(target)


def maybe_inject(unit: int, attempt: int, stage: str = "start") -> None:
    """Fire every installed fault addressed to ``(unit, attempt, stage)``.

    Called by :func:`repro.experiments.resilience.map_resilient` around each
    unit attempt, in whichever process executes it.  With no plan installed
    this is a single environment read.

    >>> FaultPlan.uninstall()
    >>> maybe_inject(0, 1)          # no plan: nothing happens
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.matching(unit, attempt, stage):
        _fire(fault, unit, attempt)
