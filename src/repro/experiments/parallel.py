"""Process-pool primitives shared by the experiment orchestration layer.

This is a *leaf* module (it imports nothing from the rest of the package) so
that every experiment entry point — the sweep orchestrator, the measurement
helpers, the confidence wrapper, the runner CLI — can share one process-pool
vocabulary without import cycles.

Design rules, enforced here once:

* **Deterministic merge order.**  :func:`map_ordered` always returns results
  in submission order, whatever order the workers finished in, so a parallel
  run assembles exactly the sequence a serial run would have produced.
* **Serial fallback.**  ``workers=1`` never touches ``multiprocessing`` — the
  map runs in-process, which keeps single-worker behaviour identical on
  platforms where process pools are unavailable (and makes ``workers=1``
  the bit-identical reference for the differential tests).
* **Stable seeding.**  :func:`stable_seed` replaces the fragile
  ``tuple.__hash__() & 0x7FFFFFFF`` idiom: tuple hashing is an implementation
  detail of the interpreter (and is randomized for strings), so seeds derived
  from it are not reproducible across Python versions or ``PYTHONHASHSEED``
  settings.  SHA-256 over a canonical encoding is stable everywhere, which is
  also what lets a worker process re-derive the exact RNG stream for a work
  unit from ``(base_seed, point_index, instance_index)`` alone.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar, Union

__all__ = [
    "stable_seed",
    "resolve_workers",
    "map_ordered",
    "partition_trials",
    "workers_from_env",
]

T = TypeVar("T")
R = TypeVar("R")

#: Separator for the canonical :func:`stable_seed` encoding.  An ASCII unit
#: separator cannot appear in the decimal/str renderings being joined, so the
#: encoding of a component sequence is injective.
_SEED_SEPARATOR = "\x1f"

#: The mixed seed is truncated to 63 bits: positive, and small enough for any
#: consumer that stores seeds in an int64 column.
_SEED_MASK = (1 << 63) - 1


def stable_seed(*components: Union[int, str]) -> int:
    """Mix integers/strings into a deterministic 63-bit seed.

    The mixing is SHA-256 over a canonical, type-tagged encoding of the
    components, so it is stable across Python versions, interpreters,
    ``PYTHONHASHSEED`` values and processes — unlike ``hash(tuple)``, which
    this function replaces in the sweep harness.  Type tags keep ``1`` and
    ``"1"`` distinct; the pinned-value tests in
    ``tests/test_orchestrator.py`` freeze the function's outputs so any
    accidental change to the encoding fails loudly.
    """
    parts: List[str] = []
    for component in components:
        if isinstance(component, bool) or not isinstance(component, (int, str)):
            raise TypeError(
                f"stable_seed components must be int or str, got {component!r}"
            )
        tag = "i" if isinstance(component, int) else "s"
        parts.append(f"{tag}:{component}")
    payload = _SEED_SEPARATOR.join(parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def resolve_workers(workers: Union[int, str]) -> int:
    """Coerce a worker count: a positive int, or ``"auto"`` (≈ CPU count).

    ``"auto"`` resolves to ``os.cpu_count()`` (at least 1, and 1 on
    platforms where the count is unknown) — the headline multi-core
    configuration without hard-coding a number.  Anything else must be a
    positive integer, returned unchanged.  Every ``workers=`` parameter in
    the package funnels through here, so ``"auto"`` works uniformly in
    ``run_sweep``, ``measure_suite``, the runner CLI (``--workers auto``)
    and the ``OSP_BENCH_WORKERS`` benchmark knob.
    """
    if workers == "auto":
        import os

        return max(1, os.cpu_count() or 1)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise ValueError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    return workers


def workers_from_env(name: str = "OSP_BENCH_WORKERS", default: int = 1) -> int:
    """Read a worker count from an environment variable (benchmark knob).

    The value is an integer or the literal ``auto`` (≈ CPU count), the same
    vocabulary as every ``workers=`` parameter.
    """
    import os

    raw = os.environ.get(name)
    if raw is None:
        return resolve_workers(default)
    if raw.strip() == "auto":
        return resolve_workers("auto")
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer or 'auto', got {raw!r}") from None
    return resolve_workers(value)


def map_ordered(
    function: Callable[[T], R],
    items: Sequence[T],
    workers: Union[int, str] = 1,
) -> List[R]:
    """Apply ``function`` to every item, returning results in item order.

    ``workers=1`` runs in-process (no pool, no pickling); ``workers>1`` fans
    the items out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    Either way the result list is aligned with ``items``, so callers can merge
    deterministically.  A worker exception propagates to the caller (the pool
    re-raises it during result iteration), preserving the original type.

    ``function`` and the items must be picklable when ``workers > 1``; the
    orchestrator keeps its work payloads to plain dataclasses for this
    reason.
    """
    workers = resolve_workers(workers)
    if workers == 1 or len(items) <= 1:
        return [function(item) for item in items]
    # No point forking more processes than there are items.
    pool_size = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(function, items))


def partition_trials(trials: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``trials`` into contiguous ``(offset, count)`` chunks.

    The chunks cover ``0..trials-1`` in order, one chunk per worker (fewer if
    ``trials < workers``).  Because both engines seed trial ``b`` as
    ``seed + b``, a chunk ``(offset, count)`` simulated with ``seed + offset``
    reproduces exactly trials ``offset..offset+count-1`` of the serial run —
    concatenating the chunks in order is therefore *bit-identical* to the
    serial benefit sequence, not merely statistically equivalent.
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    workers = resolve_workers(workers)
    chunks = min(workers, trials)
    base, extra = divmod(trials, chunks)
    partition: List[Tuple[int, int]] = []
    offset = 0
    for index in range(chunks):
        count = base + (1 if index < extra else 0)
        partition.append((offset, count))
        offset += count
    return partition
