"""Multi-host sweep fabric: shared unit manifest, shard workers, reducer.

The orchestrator (PR 2) fans a sweep out to one process pool; the store
(PR 6) made results durable, content-addressed and mergeable; PR 7 added
advisory leases and the supervised resilient pool.  This module is the last
scaling rung (ROADMAP item 3): it composes those pieces into a *fabric*
that runs one sweep across many hosts, with no coordinator process and no
new on-disk formats.

The fabric is three verbs over one shared **unit manifest**:

``plan``
    Enumerate the sweep's :class:`~repro.experiments.orchestrator.SweepUnit`
    content keys into a deterministic JSON manifest
    (``python -m repro.experiments.fabric plan``).  Planning draws no
    conclusions and runs no trials — the manifest is a list of
    ``(point_index, instance_index, unit_key)`` rows plus the sweep spec
    needed to rebuild the units bit-identically anywhere.

``work``
    A worker entry point (``fabric work manifest.json --store shard.sqlite
    --workers auto``).  Each worker claims units through the existing
    ``leases`` table of a shared *coordination store* (claim / steal after
    TTL — leases stay advisory: correctness never depends on them),
    executes claimed units on the supervised resilient pool
    (:func:`~repro.experiments.orchestrator.run_units_resilient`), and
    writes rows into its **own shard store**.  Finished results are also
    published to the coordination store so peers copy instead of
    recomputing.  Any number of workers may run concurrently on any number
    of hosts; duplicated work is wasted wall clock, never wrong bits.

``reduce``
    Merge the N shard stores (``frontiers`` and ``constructions`` tables
    included) into one canonical store via
    :func:`~repro.experiments.store.merge_stores`, check the merged store
    answers **every** manifest key, and re-emit the deterministic
    :class:`~repro.experiments.harness.SweepResult` rows by replaying the
    sweep against the canonical store — every unit warm-hits, so the rows
    are bit-identical to a single-host ``run_sweep(workers=1)`` and the
    canonical file is byte-stable under repeated reduction.

**Bit-identity contract.**  Hosts, workers, shards, kill schedules and
lease steals are wall-clock knobs: every unit is a pure function of its
content (seeds derive from
:func:`~repro.experiments.parallel.stable_seed`), the store keys are
content hashes, and merged rows converge by ``INSERT OR IGNORE``
first-writer-wins.  ``engine="fast"`` rows carry their engine tag in the
key exactly as on one host — the fabric adds **no** key format changes and
no ``STORE_FORMAT_VERSION`` bump.

>>> spec = FABRIC_SPECS["smoke"]
>>> manifest = plan_manifest(spec)
>>> len(manifest["units"]) == len(spec.element_counts) * spec.instances_per_point
True
>>> sorted(manifest["units"][0])
['index', 'instance_index', 'key', 'label', 'point_index']
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import MeasurementFailedError, OspError
from repro.experiments.competitive_ratio import EXACT_SOLVER_SET_LIMIT, validate_engine
from repro.experiments.harness import SweepResult, run_sweep
from repro.experiments.orchestrator import (
    SweepUnit,
    build_sweep_units,
    run_units_resilient,
)
from repro.experiments.parallel import resolve_workers
from repro.experiments.report import format_table
from repro.experiments.resilience import FailureReport, RetryPolicy
from repro.experiments.store import (
    LEASE_DEFAULT_TTL,
    STORE_FORMAT_VERSION,
    SolutionStore,
    merge_stores,
    unit_key,
)
__all__ = [
    "FABRIC_SPECS",
    "MANIFEST_FORMAT",
    "FabricError",
    "algorithm_registry",
    "FabricIncompleteError",
    "FabricWorkReport",
    "SweepSpec",
    "load_manifest",
    "main",
    "manifest_units",
    "plan_manifest",
    "reduce_shards",
    "rows_as_dicts",
    "single_host_result",
    "work",
    "write_manifest",
]

#: The manifest's self-identifying format marker.  Bumped only if the
#: manifest JSON layout itself changes; the *unit keys* inside follow the
#: store's :data:`~repro.experiments.store.STORE_FORMAT_VERSION` and need
#: no separate version.
MANIFEST_FORMAT = "osp-fabric-manifest-v1"

_ALGORITHM_REGISTRY: Optional[Dict[str, type]] = None


def algorithm_registry() -> Dict[str, type]:
    """Zero-argument algorithm constructors by their stable ``name``.

    Only algorithms with a stable
    :func:`~repro.experiments.store.algorithm_identity` may appear in a
    manifest — an uncacheable algorithm has no unit key for workers to
    rendezvous on.  Loaded lazily: ``repro.algorithms`` itself imports
    ``repro.experiments`` (via the distributed coordinator), so a
    module-level import here would be circular.
    """
    global _ALGORITHM_REGISTRY
    if _ALGORITHM_REGISTRY is None:
        from repro.algorithms import (
            FirstListedAlgorithm,
            GreedyWeightAlgorithm,
            RandPrAlgorithm,
            UniformRandomAlgorithm,
            UnweightedPriorityAlgorithm,
        )

        _ALGORITHM_REGISTRY = {
            "randPr": RandPrAlgorithm,
            "uniform-priority": UnweightedPriorityAlgorithm,
            "uniform-random": UniformRandomAlgorithm,
            "greedy-weight": GreedyWeightAlgorithm,
            "first-listed": FirstListedAlgorithm,
        }
    return _ALGORITHM_REGISTRY


class FabricError(OspError):
    """Raised when a manifest is malformed or drifts from this revision.

    Drift example: a manifest planned under a different key composition —
    every worker recomputes the unit keys from the spec and refuses to run
    if they disagree with the manifest, because rows written under foreign
    keys could never be reduced against it.
    """


class FabricIncompleteError(FabricError):
    """Raised by :func:`reduce_shards` when merged shards miss manifest units.

    ``missing`` carries the absent unit keys; rerunning ``fabric work``
    against any shard (or reducing with ``recompute_missing=True``) fills
    exactly the gap — the fabric is resumable by construction.
    """

    def __init__(self, message: str, missing: Sequence[str] = ()):
        super().__init__(message)
        self.missing = tuple(missing)


@dataclass(frozen=True)
class SweepSpec:
    """Everything needed to rebuild a sweep's units bit-identically.

    The spec is the manifest's payload: any host that loads it re-derives
    the same instances (via :func:`~repro.experiments.orchestrator.build_sweep_units`
    and :func:`~repro.workloads.random_online_instance`), the same measure
    seeds and therefore the same content-addressed unit keys.  Algorithms
    travel as registry names (:func:`algorithm_registry`), never as pickles.
    """

    name: str
    num_sets: int
    element_counts: Tuple[int, ...]
    set_size_range: Tuple[int, int]
    weight_range: Tuple[float, float]
    instances_per_point: int
    trials_per_instance: int
    seed: int
    algorithms: Tuple[str, ...]
    opt_method: str = "auto"
    engine: str = "auto"

    def __post_init__(self) -> None:
        validate_engine(self.engine)
        if self.instances_per_point < 1:
            raise FabricError("instances_per_point must be at least 1")

    def validate_algorithms(self) -> "SweepSpec":
        """Check every algorithm name against :func:`algorithm_registry`.

        Kept out of ``__post_init__`` so constructing the built-in specs at
        import time does not pull in ``repro.algorithms`` (circular); every
        *untrusted* path — :meth:`from_dict`, i.e. manifest loading — calls
        this explicitly.
        """
        registry = algorithm_registry()
        unknown = [name for name in self.algorithms if name not in registry]
        if unknown:
            raise FabricError(
                f"unknown algorithm name(s) {unknown!r}; "
                f"known: {sorted(registry)}"
            )
        return self

    def algorithm_instances(self):
        """Fresh algorithm objects, in spec order."""
        registry = algorithm_registry()
        self.validate_algorithms()
        return [registry[name]() for name in self.algorithms]

    def points(self):
        """The ``(label, factory)`` parameter points of this sweep."""
        # Lazy for the same reason as algorithm_registry(): repro.workloads
        # reaches repro.network, which imports repro.experiments back.
        from repro.workloads import random_online_instance

        points = []
        for num_elements in self.element_counts:
            def factory(rng, num_elements=num_elements):
                return random_online_instance(
                    self.num_sets,
                    num_elements,
                    tuple(self.set_size_range),
                    rng,
                    weight_range=tuple(self.weight_range),
                    name=f"{self.num_sets}x{num_elements}",
                )

            points.append((f"n={num_elements}", factory))
        return points

    def build_units(self) -> List[SweepUnit]:
        """Draw every unit of the sweep, deterministically."""
        return build_sweep_units(
            self.points(), self.instances_per_point, self.seed
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        try:
            return cls(
                name=str(data["name"]),
                num_sets=int(data["num_sets"]),
                element_counts=tuple(int(n) for n in data["element_counts"]),
                set_size_range=tuple(int(n) for n in data["set_size_range"]),
                weight_range=tuple(float(w) for w in data["weight_range"]),
                instances_per_point=int(data["instances_per_point"]),
                trials_per_instance=int(data["trials_per_instance"]),
                seed=int(data["seed"]),
                algorithms=tuple(str(a) for a in data["algorithms"]),
                opt_method=str(data.get("opt_method", "auto")),
                engine=str(data.get("engine", "auto")),
            ).validate_algorithms()
        except (KeyError, TypeError, ValueError) as exc:
            raise FabricError(f"malformed sweep spec: {exc}") from exc


#: The named sweep specs.  ``standard`` mirrors the standard 200-set sweep
#: of ``benchmarks/bench_sweep_parallel.py`` (same instances, seeds, trials
#: and algorithm order, so its rows are comparable across the benchmark
#: suite); ``smoke`` is the CI-sized fabric exercise.
FABRIC_SPECS = {
    "standard": SweepSpec(
        name="standard",
        num_sets=200,
        element_counts=(500, 400, 300),
        set_size_range=(2, 5),
        weight_range=(1.0, 6.0),
        instances_per_point=2,
        trials_per_instance=300,
        seed=2025,
        algorithms=(
            "randPr",
            "uniform-priority",
            "uniform-random",
            "greedy-weight",
            "first-listed",
        ),
    ),
    "smoke": SweepSpec(
        name="smoke",
        num_sets=40,
        element_counts=(100, 60),
        set_size_range=(2, 5),
        weight_range=(1.0, 6.0),
        instances_per_point=2,
        trials_per_instance=20,
        seed=2025,
        algorithms=("randPr", "greedy-weight"),
    ),
}


def _spec_keys(spec: SweepSpec) -> List[Tuple[SweepUnit, str]]:
    """The sweep's units paired with their content-addressed store keys."""
    algorithms = spec.algorithm_instances()
    pairs = []
    for unit in spec.build_units():
        key = unit_key(
            unit.instance,
            unit.measure_seed,
            algorithms,
            spec.trials_per_instance,
            spec.opt_method,
            EXACT_SOLVER_SET_LIMIT,
            engine=spec.engine,
        )
        if key is None:  # registry guarantees cacheable algorithms
            raise FabricError(
                f"unit ({unit.point_index}, {unit.instance_index}) is "
                "uncacheable; fabric sweeps need content-addressed keys"
            )
        pairs.append((unit, key))
    return pairs


def plan_manifest(spec: SweepSpec) -> Dict[str, object]:
    """Enumerate the sweep's unit keys into a shareable manifest dict.

    Purely deterministic — no timestamps, no host identity — so two hosts
    planning the same spec write byte-identical manifests.
    """
    units = [
        {
            "index": index,
            "point_index": unit.point_index,
            "instance_index": unit.instance_index,
            "label": unit.label,
            "key": key,
        }
        for index, (unit, key) in enumerate(_spec_keys(spec))
    ]
    return {
        "format": MANIFEST_FORMAT,
        "store_format_version": STORE_FORMAT_VERSION,
        "spec": spec.to_dict(),
        "units": units,
    }


def write_manifest(manifest: Dict[str, object], path: str) -> None:
    """Write a manifest as canonical JSON (sorted keys, trailing newline)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_manifest(path: str) -> Dict[str, object]:
    """Load and structurally validate a manifest file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FabricError(f"cannot read manifest {path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise FabricError(
            f"{path!r} is not a {MANIFEST_FORMAT} manifest"
        )
    if manifest.get("store_format_version") != STORE_FORMAT_VERSION:
        raise FabricError(
            f"manifest {path!r} was planned for store format "
            f"{manifest.get('store_format_version')!r}, this repo writes "
            f"version {STORE_FORMAT_VERSION}"
        )
    return manifest


def manifest_units(
    manifest: Dict[str, object],
) -> Tuple[SweepSpec, List[Tuple[SweepUnit, str]]]:
    """Rebuild the sweep units and verify the manifest's keys match.

    Every host recomputes the unit keys from the spec; a mismatch means the
    manifest was planned under a different code revision (changed workload
    generator, changed key composition) and is refused — rows written under
    drifted keys could never be reduced against this manifest.
    """
    spec = SweepSpec.from_dict(manifest["spec"])
    pairs = _spec_keys(spec)
    entries = manifest["units"]
    if len(entries) != len(pairs):
        raise FabricError(
            f"manifest lists {len(entries)} unit(s), spec rebuilds {len(pairs)}"
        )
    for entry, (unit, key) in zip(entries, pairs):
        if entry["key"] != key:
            raise FabricError(
                f"manifest key drift at unit {entry['index']} "
                f"({entry['label']}[instance {entry['instance_index']}]): "
                f"manifest has {entry['key'][:12]}…, this revision computes "
                f"{key[:12]}… — replan the manifest"
            )
    return spec, pairs


def default_coordination_path(manifest_path: str) -> str:
    """The coordination store path derived from the manifest's location.

    Workers that share a manifest file share its directory, so the default
    coordination store — leases plus published results — lives next to it.
    """
    return str(manifest_path) + ".coord.sqlite"


def _fabric_owner() -> str:
    """The lease owner token of this fabric worker: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class FabricWorkReport:
    """What one ``fabric work`` invocation did, unit by unit.

    ``computed`` counts units this worker executed (including units whose
    lease it stole from an expired owner — ``stolen`` of them), ``copied``
    counts units answered from a peer's published result, ``already_stored``
    counts units the worker's own shard already held (a resumed worker), and
    ``failures`` carries the quarantine reports of units that exhausted
    their retry budget here.
    """

    owner: str
    computed: int = 0
    copied: int = 0
    already_stored: int = 0
    stolen: int = 0
    waits: int = 0
    failures: List[FailureReport] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.computed + self.copied + self.already_stored


def work(
    manifest: Dict[str, object],
    shard_path: str,
    *,
    coordination_path: str,
    workers: "int | str" = 1,
    lease_ttl: float = LEASE_DEFAULT_TTL,
    policy: Optional[RetryPolicy] = None,
    poll_seconds: float = 0.05,
    max_wait: Optional[float] = None,
) -> FabricWorkReport:
    """Claim, execute and publish manifest units until none remain.

    The loop over the manifest's units is: already in my shard → publish
    and move on; published by a peer in the coordination store → copy into
    my shard; otherwise try to claim its lease (an expired lease is stolen)
    and execute a batch of claimed units on the supervised pool, writing
    into my shard and publishing each finished result.  When every
    remaining unit is leased by a live peer, the worker polls until the
    peer publishes or the lease expires — so a crashed peer's units are
    stolen after ``lease_ttl`` and the sweep always completes as long as
    one worker survives.

    Leases stay advisory: a duplicate claim (fail-open on a broken lease
    table, races between hosts) duplicates wall clock, and the
    content-addressed first-writer-wins store makes the bits converge.

    ``max_wait`` bounds the total time spent polling on peers (``None``:
    wait indefinitely); on timeout the worker returns with the remaining
    units unfinished — the reducer's completeness check will name them.
    """
    spec, pairs = manifest_units(manifest)
    algorithms = spec.algorithm_instances()
    batch_size = max(1, resolve_workers(workers))
    report = FabricWorkReport(owner=_fabric_owner())
    shard = SolutionStore(str(shard_path))
    coordination = SolutionStore(str(coordination_path))
    waited = 0.0
    try:
        remaining = dict(enumerate(pairs))
        while remaining:
            claimed: List[Tuple[int, SweepUnit, str]] = []
            for index in sorted(remaining):
                unit, key = remaining[index]
                mine = shard.get_unit(key)
                if mine is not None:
                    coordination.put_unit(key, mine)
                    report.already_stored += 1
                    del remaining[index]
                    continue
                published = coordination.get_unit(key)
                if published is not None:
                    shard.put_unit(key, published)
                    report.copied += 1
                    del remaining[index]
                    continue
                if len(claimed) >= batch_size:
                    continue
                lease = coordination.get_lease(key)
                stealing = (
                    lease is not None
                    and lease.owner != report.owner
                    and lease.expired()
                )
                if coordination.claim_lease(key, report.owner, ttl=lease_ttl):
                    if stealing:
                        report.stolen += 1
                    claimed.append((index, unit, key))
            if claimed:
                results, failures = run_units_resilient(
                    [unit for _, unit, _ in claimed],
                    algorithms,
                    trials=spec.trials_per_instance,
                    opt_method=spec.opt_method,
                    engine=spec.engine,
                    workers=workers,
                    store=str(shard_path),
                    policy=policy,
                )
                for (index, unit, key), result in zip(claimed, results):
                    if result is None:
                        continue
                    coordination.put_unit(key, result)
                    coordination.release_lease(key, report.owner)
                    report.computed += 1
                    del remaining[index]
                for failure in failures:
                    index, unit, key = claimed[failure.index]
                    coordination.release_lease(key, report.owner)
                    report.failures.append(failure)
                    del remaining[index]
                continue  # progress made (or quarantined) — rescan, no sleep
            if not remaining:
                break
            # Everything left is leased by a live peer: poll for its result
            # (or for the lease to expire, at which point we steal it).
            if max_wait is not None and waited >= max_wait:
                break
            report.waits += 1
            waited += poll_seconds
            time.sleep(poll_seconds)
    finally:
        coordination.close()
        shard.close()
    return report


def reduce_shards(
    manifest: Dict[str, object],
    shard_paths: Sequence[str],
    output_path: str,
    *,
    recompute_missing: bool = False,
) -> Tuple[SweepResult, Dict[str, int], List[str]]:
    """Merge shard stores into a canonical store and re-emit the sweep rows.

    The merge is :func:`~repro.experiments.store.merge_stores`: checksummed
    first-writer-wins over every payload table (``opt``, ``units``,
    ``constructions``, ``frontiers``), garbled shard rows skipped.  The
    merged store must then answer **every** manifest unit key — a unit
    garbled in one shard but healthy in another is fine; a unit present in
    no shard raises :class:`FabricIncompleteError` naming the missing keys
    (pass ``recompute_missing=True`` to compute the stragglers in-process
    instead: the fabric is resumable by construction).

    The returned rows come from replaying the sweep against the canonical
    store with ``workers=1``: every unit warm-hits, so the rows — and,
    because a complete replay writes nothing, the canonical file itself —
    are bit-identical to a single-host ``run_sweep`` and byte-stable under
    repeated reduction.
    """
    spec, pairs = manifest_units(manifest)
    merge_report = merge_stores(str(output_path), [str(p) for p in shard_paths])
    canonical = SolutionStore(str(output_path))
    try:
        missing = [key for _, key in pairs if canonical.get_unit(key) is None]
    finally:
        canonical.close()
    if missing and not recompute_missing:
        raise FabricIncompleteError(
            f"{len(missing)} of {len(pairs)} manifest unit(s) missing from "
            f"the merged shards: {', '.join(key[:12] + '…' for key in missing)}",
            missing=missing,
        )
    result = single_host_result(manifest, store=str(output_path))
    return result, merge_report, missing


def single_host_result(
    manifest: Dict[str, object],
    *,
    store: "str | bool | None" = False,
    workers: "int | str" = 1,
) -> SweepResult:
    """The manifest's sweep executed through plain :func:`run_sweep`.

    This is the fabric's golden reference: by the bit-identity contract the
    reducer's rows must equal this result's rows exactly, at any fabric
    configuration.  ``store=False`` (the default) keeps the reference run
    fully independent of any store file.
    """
    spec, _ = manifest_units(manifest)
    return run_sweep(
        name=f"fabric:{spec.name}",
        parameter_points=spec.points(),
        algorithms=spec.algorithm_instances(),
        instances_per_point=spec.instances_per_point,
        trials_per_instance=spec.trials_per_instance,
        seed=spec.seed,
        opt_method=spec.opt_method,
        engine=spec.engine,
        workers=workers,
        store=store,
    )


def rows_as_dicts(result: SweepResult) -> List[Dict[str, object]]:
    """The sweep rows as JSON-ready dicts, at full float precision.

    ``json.dumps`` renders floats with ``repr`` (shortest round-trip), so
    two row lists serialize identically **iff** they are bit-identical —
    which is exactly what the fabric's golden-row comparisons diff.
    """
    return [asdict(row) for row in result.rows]


def _write_rows(result: SweepResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows_as_dicts(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _print_result(result: SweepResult) -> None:
    rows = [
        {
            "point": row.parameter_label,
            "algorithm": row.algorithm_name,
            "mean_ratio": round(row.mean_ratio, 4),
            "max_ratio": round(row.max_ratio, 4),
            "best_bound": round(row.best_bound, 4),
        }
        for row in result.rows
    ]
    print(format_table(rows, columns=list(rows[0]), title=result.name))


def _parse_workers(value: "int | str") -> "int | str":
    """Normalize a ``--workers`` CLI value: ``'auto'`` or a positive int."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except (TypeError, ValueError):
        raise FabricError(
            f"--workers must be an integer or 'auto', got {value!r}"
        )


def _cli_plan(args) -> int:
    spec = FABRIC_SPECS[args.spec]
    if args.seed is not None or args.trials is not None or args.engine is not None:
        overrides = spec.to_dict()
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.trials is not None:
            overrides["trials_per_instance"] = args.trials
        if args.engine is not None:
            overrides["engine"] = args.engine
        spec = SweepSpec.from_dict(overrides)
    manifest = plan_manifest(spec)
    write_manifest(manifest, args.out)
    print(
        f"planned {len(manifest['units'])} unit(s) of spec {spec.name!r} "
        f"into {os.path.abspath(args.out)}"
    )
    return 0


def _cli_work(args) -> int:
    manifest = load_manifest(args.manifest)
    policy = None
    if args.max_attempts is not None or args.unit_timeout is not None:
        policy = RetryPolicy(
            max_attempts=args.max_attempts or 3, timeout=args.unit_timeout
        )
    coordination = args.coord or default_coordination_path(args.manifest)
    started = time.perf_counter()
    report = work(
        manifest,
        args.store,
        coordination_path=coordination,
        workers=_parse_workers(args.workers),
        lease_ttl=args.lease_ttl,
        policy=policy,
        max_wait=args.max_wait,
    )
    elapsed = time.perf_counter() - started
    print(
        f"worker {report.owner}: computed {report.computed} "
        f"(stole {report.stolen}), copied {report.copied} from peers, "
        f"already stored {report.already_stored}, "
        f"quarantined {len(report.failures)}"
    )
    # Machine-readable drain time: benchmarks compare this across worker
    # counts without charging the fabric for interpreter startup.
    print(f"work seconds: {elapsed:.3f}")
    if report.failures:
        raise MeasurementFailedError(
            f"{len(report.failures)} fabric unit(s) failed after retries: "
            + ", ".join(failure.label for failure in report.failures),
            failures=report.failures,
        )
    return 0


def _cli_reduce(args) -> int:
    manifest = load_manifest(args.manifest)
    result, merge_report, missing = reduce_shards(
        manifest,
        args.shards,
        args.out,
        recompute_missing=args.recompute_missing,
    )
    print(
        f"reduced {len(args.shards)} shard(s) into {os.path.abspath(args.out)}: "
        f"examined {merge_report['examined']} row(s), "
        f"skipped {merge_report['skipped']} garbled, "
        f"recomputed {len(missing)} missing unit(s)"
    )
    if args.rows:
        _write_rows(result, args.rows)
        print(f"rows written to {os.path.abspath(args.rows)}")
    _print_result(result)
    return 0


def _cli_rows(args) -> int:
    manifest = load_manifest(args.manifest)
    result = single_host_result(manifest, workers=_parse_workers(args.workers))
    if args.rows:
        _write_rows(result, args.rows)
        print(f"rows written to {os.path.abspath(args.rows)}")
    _print_result(result)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """The ``python -m repro.experiments.fabric`` entry point.

    Four verbs: ``plan`` (write the shared unit manifest), ``work`` (claim
    and execute units into a shard store), ``reduce`` (merge shards, check
    completeness, re-emit the deterministic rows) and ``rows`` (the
    single-host golden reference for row comparisons).  Exit codes follow
    the runner's conventions: 0 on success, 1 when the reduce completeness
    check or a row comparison fails, 3 when a worker exhausts its retry
    budget (with the JSON failure summary on stdout).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fabric",
        description="Run one sweep across many hosts: plan / work / reduce.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan_parser = commands.add_parser(
        "plan", help="enumerate a sweep's unit keys into a shared manifest"
    )
    plan_parser.add_argument(
        "--spec", choices=sorted(FABRIC_SPECS), default="smoke",
        help="named sweep spec (default: smoke)",
    )
    plan_parser.add_argument("--out", required=True, help="manifest JSON path")
    plan_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    plan_parser.add_argument(
        "--trials", type=int, default=None, help="override trials per instance"
    )
    plan_parser.add_argument(
        "--engine", default=None, help="override the spec's engine"
    )
    plan_parser.set_defaults(handler=_cli_plan)

    work_parser = commands.add_parser(
        "work", help="claim and execute manifest units into a shard store"
    )
    work_parser.add_argument("manifest", help="shared manifest JSON path")
    work_parser.add_argument(
        "--store", required=True, help="this worker's shard store file"
    )
    work_parser.add_argument(
        "--coord", default=None,
        help="coordination store (default: <manifest>.coord.sqlite)",
    )
    work_parser.add_argument(
        "--workers", default="1", metavar="N|auto",
        help="worker processes for claimed units (wall-clock knob)",
    )
    work_parser.add_argument(
        "--lease-ttl", type=float, default=LEASE_DEFAULT_TTL, metavar="SECONDS",
        help=f"advisory lease TTL before peers steal (default {LEASE_DEFAULT_TTL:g})",
    )
    work_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry budget per unit under the supervised pool",
    )
    work_parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock timeout under supervision",
    )
    work_parser.add_argument(
        "--max-wait", type=float, default=None, metavar="SECONDS",
        help="bound the total time spent polling on peers' leases",
    )
    work_parser.set_defaults(handler=_cli_work)

    reduce_parser = commands.add_parser(
        "reduce", help="merge shards into a canonical store and emit the rows"
    )
    reduce_parser.add_argument("manifest", help="shared manifest JSON path")
    reduce_parser.add_argument(
        "--out", required=True, help="canonical output store file"
    )
    reduce_parser.add_argument(
        "shards", nargs="+", help="shard store files to merge"
    )
    reduce_parser.add_argument(
        "--rows", default=None, metavar="PATH",
        help="also write the rows as canonical JSON (diffable golden rows)",
    )
    reduce_parser.add_argument(
        "--recompute-missing", action="store_true",
        help="compute units missing from every shard instead of failing",
    )
    reduce_parser.set_defaults(handler=_cli_reduce)

    rows_parser = commands.add_parser(
        "rows", help="single-host golden reference rows for comparisons"
    )
    rows_parser.add_argument("manifest", help="shared manifest JSON path")
    rows_parser.add_argument(
        "--rows", default=None, metavar="PATH", help="write rows as canonical JSON"
    )
    rows_parser.add_argument(
        "--workers", default="1", metavar="N|auto",
        help="worker processes (wall-clock knob; rows are identical)",
    )
    rows_parser.set_defaults(handler=_cli_rows)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FabricIncompleteError as exc:
        print(f"REDUCE INCOMPLETE — {exc}")
        return 1
    except MeasurementFailedError as exc:
        print("MEASUREMENT FAILED — retry budget exhausted")
        print(
            json.dumps(
                {
                    "error": str(exc),
                    "failures": [report.as_dict() for report in exc.failures],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 3
    except FabricError as exc:
        raise SystemExit(f"error: {exc}")
