"""Entry point for ``python -m repro.experiments.fabric`` (see :func:`main`)."""

import sys

from repro.experiments.fabric import main

if __name__ == "__main__":
    sys.exit(main())
