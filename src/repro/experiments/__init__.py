"""Experiment harness: OPT estimation, ratio measurement, sweeps and reports."""

from repro.experiments.confidence import (
    ConfidenceInterval,
    RatioWithConfidence,
    bootstrap_mean_interval,
    measure_ratio_with_confidence,
)
from repro.experiments.competitive_ratio import (
    OptEstimate,
    RatioMeasurement,
    estimate_opt,
    measure_ratio,
    measure_suite,
)
from repro.experiments.faults import Fault, FaultInjected, FaultPlan
from repro.experiments.harness import ExperimentRow, SweepResult, run_sweep, summarize_rows
from repro.experiments.opt_cache import OptCache, default_opt_cache
from repro.experiments.orchestrator import (
    SweepUnit,
    SweepUnitResult,
    build_sweep_units,
    instance_seed,
    run_units,
    run_units_resilient,
)
from repro.experiments.parallel import (
    map_ordered,
    partition_trials,
    resolve_workers,
    stable_seed,
    workers_from_env,
)
from repro.experiments.resilience import (
    FailureReport,
    ResilientMapResult,
    RetryPolicy,
    map_resilient,
)
from repro.experiments.report import banner, format_markdown_table, format_sweep, format_table
from repro.experiments.store import (
    SolutionStore,
    StoreCorruptionWarning,
    active_store,
    set_default_store_path,
    store_for_path,
    store_path_from_env,
    unit_key,
)

__all__ = [
    "ConfidenceInterval",
    "RatioWithConfidence",
    "bootstrap_mean_interval",
    "measure_ratio_with_confidence",
    "OptEstimate",
    "RatioMeasurement",
    "estimate_opt",
    "measure_ratio",
    "measure_suite",
    "ExperimentRow",
    "SweepResult",
    "run_sweep",
    "summarize_rows",
    "OptCache",
    "default_opt_cache",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "SweepUnit",
    "SweepUnitResult",
    "build_sweep_units",
    "instance_seed",
    "run_units",
    "run_units_resilient",
    "map_ordered",
    "partition_trials",
    "resolve_workers",
    "stable_seed",
    "workers_from_env",
    "FailureReport",
    "ResilientMapResult",
    "RetryPolicy",
    "map_resilient",
    "banner",
    "format_markdown_table",
    "format_sweep",
    "format_table",
    "SolutionStore",
    "StoreCorruptionWarning",
    "active_store",
    "set_default_store_path",
    "store_for_path",
    "store_path_from_env",
    "unit_key",
]
