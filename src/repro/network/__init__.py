"""Networking substrate: frames, packets, traffic, routers, multi-hop paths."""

from repro.network.buffered import (
    FIFO_POLICY,
    PRIORITY_POLICY,
    BufferedComparison,
    BufferedLink,
    BufferedLinkResult,
    buffer_size_sweep,
    buffered_vs_bufferless,
)
from repro.network.metrics import (
    FrameDeliveryMetrics,
    compute_delivery_metrics,
    jain_fairness_index,
)
from repro.network.multihop import (
    MultiHopNetwork,
    MultiHopPacket,
    build_multihop_instance,
    random_path_workload,
)
from repro.network.packet import DEFAULT_MTU_BYTES, Frame, Packet, fragment_into_packets
from repro.network.router import (
    ROUTER_ENGINE_CHOICES,
    BottleneckRouter,
    RouterBatchResult,
    RouterRunResult,
    run_router_batch,
)
from repro.network.traffic import (
    GOP_DEFAULT_PATTERN,
    AdversarialBurstGenerator,
    PoissonBurstGenerator,
    Trace,
    VideoTraceGenerator,
)

__all__ = [
    "FIFO_POLICY",
    "PRIORITY_POLICY",
    "BufferedComparison",
    "BufferedLink",
    "BufferedLinkResult",
    "buffer_size_sweep",
    "buffered_vs_bufferless",
    "FrameDeliveryMetrics",
    "compute_delivery_metrics",
    "jain_fairness_index",
    "MultiHopNetwork",
    "MultiHopPacket",
    "build_multihop_instance",
    "random_path_workload",
    "DEFAULT_MTU_BYTES",
    "Frame",
    "Packet",
    "fragment_into_packets",
    "BottleneckRouter",
    "RouterRunResult",
    "RouterBatchResult",
    "run_router_batch",
    "ROUTER_ENGINE_CHOICES",
    "GOP_DEFAULT_PATTERN",
    "AdversarialBurstGenerator",
    "PoissonBurstGenerator",
    "Trace",
    "VideoTraceGenerator",
]
