"""A buffered bottleneck link: the paper's second open problem, simulated.

The OSP abstraction drops every unserved packet immediately.  Real switches
have (small) buffers, and the paper explicitly asks about their effect
(Section 5, second open problem; cf. Kesselman, Patt-Shamir and Scalosub,
IPDPS 2009, which studies the buffered problem under "well ordered" arrivals).

This module simulates the link at *packet* granularity: each slot, arriving
packets join a bounded buffer (with a drop rule when it overflows) and the
link transmits up to ``capacity`` packets chosen by a scheduling rule.  Both
rules rank packets by their frame's priority; using the hash-randPr priority
recovers the paper's algorithm in the buffered setting, while FIFO is the
naive baseline.  Benchmark E14 sweeps the buffer size to show how quickly a
small buffer closes the gap left by dropping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.priorities import hash_priority
from repro.exceptions import OspError
from repro.network.metrics import FrameDeliveryMetrics, compute_delivery_metrics
from repro.network.packet import Packet
from repro.network.traffic import Trace

__all__ = [
    "BufferedLinkResult",
    "BufferedLink",
    "BufferedComparison",
    "buffered_vs_bufferless",
    "PRIORITY_POLICY",
    "FIFO_POLICY",
]

#: Scheduling/drop policy identifiers.
PRIORITY_POLICY = "hash-priority"
FIFO_POLICY = "fifo"


@dataclass(frozen=True)
class BufferedLinkResult:
    """The outcome of a buffered-link run."""

    policy: str
    buffer_size: int
    capacity: int
    metrics: FrameDeliveryMetrics
    completed_frames: FrozenSet[str]
    transmitted_packets: int
    dropped_packets: int

    @property
    def completion_ratio(self) -> float:
        """Fraction of offered frames that were delivered complete."""
        return self.metrics.completion_ratio


@dataclass
class _BufferedPacket:
    packet: Packet
    priority: float
    enqueue_slot: int


class BufferedLink:
    """A single outgoing link with a bounded packet buffer.

    Parameters
    ----------
    buffer_size:
        Maximum number of packets that can wait in the buffer (0 reproduces
        the bufferless OSP setting at packet granularity).
    capacity:
        Packets transmitted per slot.
    policy:
        ``PRIORITY_POLICY`` ranks packets by a hash-randPr frame priority
        (higher priority transmitted first, lower priority dropped first on
        overflow); ``FIFO_POLICY`` transmits oldest-first and drops newest on
        overflow (tail drop).
    salt:
        Hash seed for the priority policy.
    """

    def __init__(
        self,
        buffer_size: int,
        capacity: int = 1,
        policy: str = PRIORITY_POLICY,
        salt: str = "buffered-link",
    ) -> None:
        if buffer_size < 0:
            raise OspError(f"buffer size must be non-negative, got {buffer_size}")
        if capacity < 1:
            raise OspError(f"capacity must be positive, got {capacity}")
        if policy not in (PRIORITY_POLICY, FIFO_POLICY):
            raise OspError(f"unknown policy {policy!r}")
        self._buffer_size = buffer_size
        self._capacity = capacity
        self._policy = policy
        self._salt = salt

    # ------------------------------------------------------------------
    def _frame_priority(self, trace: Trace, frame_id: str) -> float:
        frame = trace.frames.get(frame_id)
        weight = (frame.weight if frame is not None and frame.weight else 1.0)
        return hash_priority(frame_id, max(weight, 1e-12), salt=self._salt)

    def run(self, trace: Trace) -> BufferedLinkResult:
        """Push a trace through the buffered link and report frame delivery."""
        buffer: List[_BufferedPacket] = []
        delivered: Dict[str, int] = {}
        transmitted = 0
        dropped = 0

        priorities = {
            frame_id: self._frame_priority(trace, frame_id) for frame_id in trace.frames
        }

        # The run continues past the last arrival slot until the buffer drains.
        slot = 0
        total_slots = trace.num_slots
        while slot < total_slots or buffer:
            arrivals = trace.slots[slot] if slot < total_slots else []
            for packet in arrivals:
                buffer.append(
                    _BufferedPacket(
                        packet=packet,
                        priority=priorities.get(packet.frame_id, 0.0),
                        enqueue_slot=slot,
                    )
                )

            # Transmit up to ``capacity`` packets this slot.
            if self._policy == PRIORITY_POLICY:
                buffer.sort(key=lambda item: (-item.priority, item.enqueue_slot,
                                              item.packet.packet_id))
            else:
                buffer.sort(key=lambda item: (item.enqueue_slot, item.packet.packet_id))
            to_send = buffer[: self._capacity]
            buffer = buffer[self._capacity:]
            for item in to_send:
                delivered[item.packet.frame_id] = delivered.get(item.packet.frame_id, 0) + 1
                transmitted += 1

            # Overflow handling after transmission: the buffer keeps at most
            # ``buffer_size`` packets into the next slot.
            if len(buffer) > self._buffer_size:
                if self._policy == PRIORITY_POLICY:
                    buffer.sort(key=lambda item: (-item.priority, item.enqueue_slot,
                                                  item.packet.packet_id))
                else:
                    buffer.sort(key=lambda item: (item.enqueue_slot, item.packet.packet_id))
                kept = buffer[: self._buffer_size]
                dropped += len(buffer) - len(kept)
                buffer = kept

            slot += 1

        completed = frozenset(
            frame_id
            for frame_id, frame in trace.frames.items()
            if delivered.get(frame_id, 0) >= frame.num_packets
        )
        metrics = compute_delivery_metrics(trace.frames, completed)
        return BufferedLinkResult(
            policy=self._policy,
            buffer_size=self._buffer_size,
            capacity=self._capacity,
            metrics=metrics,
            completed_frames=completed,
            transmitted_packets=transmitted,
            dropped_packets=dropped,
        )


@dataclass(frozen=True)
class BufferedComparison:
    """A buffer-size sweep next to its bufferless OSP baseline."""

    buffered: Dict[int, BufferedLinkResult]
    bufferless: "RouterBatchResult"

    @property
    def bufferless_mean_completion(self) -> float:
        """Mean fraction of frames delivered whole by the bufferless policy."""
        trials = self.bufferless.trials
        total = sum(
            self.bufferless.metrics_for(trial).completion_ratio
            for trial in range(trials)
        )
        return total / trials


def buffered_vs_bufferless(
    trace: Trace,
    buffer_sizes: List[int],
    algorithm,
    trials: int = 20,
    seed: int = 0,
    capacity: int = 1,
    policy: str = PRIORITY_POLICY,
    engine: str = "auto",
) -> BufferedComparison:
    """Sweep buffer sizes against the bufferless drop policy, batched.

    The buffered side runs the deterministic packet-granularity link once
    per buffer size; the bufferless side pushes ``trials`` Monte-Carlo
    trials of ``algorithm`` through :func:`~repro.network.router.run_router_batch`
    (the streaming engine by default), giving the baseline the same
    statistical treatment the experiment layer uses.

    >>> from repro.network.traffic import AdversarialBurstGenerator
    >>> trace = AdversarialBurstGenerator(burst_size=3, gap_slots=2).generate(num_waves=2)
    >>> comparison = buffered_vs_bufferless(trace, [0, 2], "randPr", trials=4)
    >>> sorted(comparison.buffered)
    [0, 2]
    >>> 0.0 <= comparison.bufferless_mean_completion <= 1.0
    True
    """
    from repro.network.router import run_router_batch

    buffered = buffer_size_sweep(
        trace, buffer_sizes, capacity=capacity, policy=policy
    )
    bufferless = run_router_batch(
        trace,
        algorithm,
        trials=trials,
        seed=seed,
        engine=engine,
        capacity_per_slot=capacity,
    )
    return BufferedComparison(buffered=buffered, bufferless=bufferless)


def buffer_size_sweep(
    trace: Trace,
    buffer_sizes: List[int],
    capacity: int = 1,
    policy: str = PRIORITY_POLICY,
) -> Dict[int, BufferedLinkResult]:
    """Run the same trace through links with increasing buffer sizes."""
    results = {}
    for size in buffer_sizes:
        link = BufferedLink(buffer_size=size, capacity=capacity, policy=policy)
        results[size] = link.run(trace)
    return results
