"""Network-level metrics derived from router and multi-hop simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.network.packet import Frame

__all__ = ["FrameDeliveryMetrics", "compute_delivery_metrics", "jain_fairness_index"]


@dataclass(frozen=True)
class FrameDeliveryMetrics:
    """Summary of frame-level delivery quality at the receiver."""

    total_frames: int
    completed_frames: int
    total_bytes: int
    goodput_bytes: int
    total_weight: float
    completed_weight: float
    per_flow_completion: Dict[str, float]

    @property
    def completion_ratio(self) -> float:
        """Fraction of frames delivered complete."""
        if self.total_frames == 0:
            return 0.0
        return self.completed_frames / self.total_frames

    @property
    def goodput_ratio(self) -> float:
        """Fraction of offered bytes that belonged to complete frames."""
        if self.total_bytes == 0:
            return 0.0
        return self.goodput_bytes / self.total_bytes

    @property
    def weighted_completion_ratio(self) -> float:
        """Fraction of offered weight that was delivered."""
        if self.total_weight == 0:
            return 0.0
        return self.completed_weight / self.total_weight


def compute_delivery_metrics(
    frames: Mapping[str, Frame], completed_frame_ids: Iterable[str]
) -> FrameDeliveryMetrics:
    """Compute delivery metrics for a set of offered frames and the completed ones."""
    completed = set(completed_frame_ids)
    unknown = completed - set(frames)
    if unknown:
        raise ValueError(f"completed frames not present in the offered set: {sorted(unknown)}")

    total_bytes = sum(frame.size_bytes for frame in frames.values())
    goodput = sum(frames[frame_id].size_bytes for frame_id in completed)
    total_weight = sum(frame.weight or 0.0 for frame in frames.values())
    completed_weight = sum(frames[frame_id].weight or 0.0 for frame_id in completed)

    per_flow_total: Dict[str, int] = {}
    per_flow_done: Dict[str, int] = {}
    for frame_id, frame in frames.items():
        per_flow_total[frame.flow_id] = per_flow_total.get(frame.flow_id, 0) + 1
        if frame_id in completed:
            per_flow_done[frame.flow_id] = per_flow_done.get(frame.flow_id, 0) + 1
    per_flow_completion = {
        flow: per_flow_done.get(flow, 0) / total
        for flow, total in per_flow_total.items()
    }

    return FrameDeliveryMetrics(
        total_frames=len(frames),
        completed_frames=len(completed),
        total_bytes=total_bytes,
        goodput_bytes=goodput,
        total_weight=total_weight,
        completed_weight=completed_weight,
        per_flow_completion=per_flow_completion,
    )


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's fairness index of a collection of per-flow allocations.

    Returns 1.0 for perfectly equal allocations and approaches ``1/n`` when a
    single flow takes everything.  Empty input yields 1.0 (vacuously fair).
    """
    values = [float(value) for value in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
