"""Synthetic traffic generation for the bottleneck-router scenario.

The paper motivates OSP with video transmission over the Internet but
contains no measured traces; per the reproduction's substitution rule we
generate synthetic workloads that exercise the same code path:

* :class:`VideoTraceGenerator` — MPEG-like group-of-pictures traffic from
  several flows (large I frames, medium P frames, small B frames), fragmented
  into MTU packets whose arrivals interleave at the bottleneck.
* :class:`PoissonBurstGenerator` — memoryless frame arrivals with a
  configurable packets-per-frame distribution.
* :class:`AdversarialBurstGenerator` — pathological synchronized bursts where
  many frames collide in every slot (the regime where the competitive bounds
  bite).

All generators produce a :class:`Trace`: per time slot, the list of packets
arriving in that slot.  A trace converts to an OSP instance via
:meth:`Trace.to_instance` using the paper's reduction (time slots are
elements, frames are sets).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import InstanceBuilder, OnlineInstance
from repro.exceptions import OspError
from repro.network.packet import DEFAULT_MTU_BYTES, Frame, Packet

__all__ = [
    "Trace",
    "VideoTraceGenerator",
    "PoissonBurstGenerator",
    "AdversarialBurstGenerator",
    "GOP_DEFAULT_PATTERN",
]

#: A typical 12-frame group-of-pictures pattern.
GOP_DEFAULT_PATTERN = "IBBPBBPBBPBB"


def _pad_id(value: int, width: int) -> str:
    """Zero-pad a numeric identifier component to ``width`` digits.

    The streaming engine draws static priorities in the ``repr`` order of
    the frame identifiers while processing packets in time order; unpadded
    decimal components sort ``"f0.10" < "f0.2"`` and scramble the two
    orders, inflating the engine's resident pool.  Generators accept an
    ``id_pad`` width so mega traces can keep identifier order aligned with
    arrival order (``id_pad=0``, the default, preserves the historical
    unpadded identifiers).
    """
    return f"{value:0{width}d}" if width > 0 else str(value)


@dataclass
class Trace:
    """A packet arrival trace at the bottleneck link.

    ``slots[t]`` is the list of packets arriving in time slot ``t``;
    ``frames`` indexes every frame appearing in the trace.
    """

    slots: List[List[Packet]] = field(default_factory=list)
    frames: Dict[str, Frame] = field(default_factory=dict)
    link_capacity: int = 1

    @property
    def num_slots(self) -> int:
        """The number of time slots covered by the trace."""
        return len(self.slots)

    @property
    def num_frames(self) -> int:
        """The number of distinct frames in the trace."""
        return len(self.frames)

    @property
    def num_packets(self) -> int:
        """The total number of packets in the trace."""
        return sum(len(slot) for slot in self.slots)

    def max_burst(self) -> int:
        """The largest number of packets arriving in any single slot."""
        return max((len(slot) for slot in self.slots), default=0)

    def busy_slots(self) -> int:
        """The number of slots with at least one arriving packet."""
        return sum(1 for slot in self.slots if slot)

    def overloaded_slots(self) -> int:
        """The number of slots whose burst exceeds the link capacity."""
        return sum(1 for slot in self.slots if len(slot) > self.link_capacity)

    def add_packet(self, slot: int, packet: Packet) -> None:
        """Append a packet arrival to a slot, extending the trace if needed."""
        if slot < 0:
            raise OspError(f"slot must be non-negative, got {slot}")
        while len(self.slots) <= slot:
            self.slots.append([])
        self.slots[slot].append(packet.at_slot(slot))

    def add_frame(self, frame: Frame, packet_slots: Sequence[int]) -> None:
        """Register a frame and schedule its packets at the given slots."""
        if len(packet_slots) != frame.num_packets:
            raise OspError(
                f"frame {frame.frame_id!r} has {frame.num_packets} packets but "
                f"{len(packet_slots)} arrival slots were given"
            )
        if frame.frame_id in self.frames:
            raise OspError(f"frame {frame.frame_id!r} added to the trace twice")
        self.frames[frame.frame_id] = frame
        for packet, slot in zip(frame.packets, packet_slots):
            self.add_packet(slot, packet)

    def to_instance(self, name: str = "") -> OnlineInstance:
        """Convert the trace to an OSP instance via the paper's reduction.

        Each time slot with at least one arriving packet becomes an element
        whose parents are the frames with a packet in that slot and whose
        capacity is the link capacity; each frame becomes a set weighted by
        its frame weight.  Simultaneous packets of the same frame collapse
        into a single membership, exactly as in the paper's abstraction.
        """
        builder = InstanceBuilder(name=name or "trace")
        for frame_id, frame in sorted(self.frames.items()):
            builder.declare_set(frame_id, frame.weight or 1.0)
        for slot, packets in enumerate(self.slots):
            frame_ids = sorted({packet.frame_id for packet in packets})
            if not frame_ids:
                continue
            builder.add_element(
                frame_ids, capacity=self.link_capacity, element_id=f"slot{slot}"
            )
        return builder.build()


class VideoTraceGenerator:
    """Synthetic MPEG-like multi-flow video traffic.

    Each flow emits frames following a group-of-pictures pattern at a fixed
    frame interval (in slots).  Frame sizes are drawn per type from a
    log-normal-ish distribution around configurable means, then fragmented
    into MTU packets; a frame's packets arrive in consecutive slots starting
    at its (jittered) release slot, so frames from different flows interleave
    and collide at the bottleneck.
    """

    def __init__(
        self,
        num_flows: int = 4,
        gop_pattern: str = GOP_DEFAULT_PATTERN,
        frame_interval_slots: int = 3,
        mean_sizes_bytes: Optional[Dict[str, float]] = None,
        size_jitter: float = 0.25,
        release_jitter_slots: int = 1,
        mtu_bytes: int = DEFAULT_MTU_BYTES,
        link_capacity: int = 1,
        id_pad: int = 0,
    ) -> None:
        if num_flows < 1:
            raise OspError(f"need at least one flow, got {num_flows}")
        if not gop_pattern:
            raise OspError("the GoP pattern must not be empty")
        if frame_interval_slots < 1:
            raise OspError(f"frame interval must be positive, got {frame_interval_slots}")
        self.num_flows = num_flows
        self.gop_pattern = gop_pattern
        self.frame_interval_slots = frame_interval_slots
        self.mean_sizes_bytes = mean_sizes_bytes or {
            "I": 9000.0,
            "P": 4500.0,
            "B": 1500.0,
        }
        self.size_jitter = size_jitter
        self.release_jitter_slots = release_jitter_slots
        self.mtu_bytes = mtu_bytes
        self.link_capacity = link_capacity
        self.id_pad = id_pad

    def _frame_size(self, frame_type: str, rng: random.Random) -> int:
        mean = self.mean_sizes_bytes.get(frame_type, self.mtu_bytes * 2.0)
        factor = math.exp(rng.gauss(0.0, self.size_jitter))
        return max(1, int(round(mean * factor)))

    def generate(self, num_frames_per_flow: int, rng: random.Random) -> Trace:
        """Generate a trace with ``num_frames_per_flow`` frames on every flow."""
        if num_frames_per_flow < 1:
            raise OspError("need at least one frame per flow")
        trace = Trace(link_capacity=self.link_capacity)
        for flow in range(self.num_flows):
            # Flows are phase-shifted so their frames interleave.
            phase = rng.randrange(self.frame_interval_slots)
            for index in range(num_frames_per_flow):
                frame_type = self.gop_pattern[index % len(self.gop_pattern)]
                size = self._frame_size(frame_type, rng)
                release = index * self.frame_interval_slots + phase
                if self.release_jitter_slots:
                    release += rng.randrange(self.release_jitter_slots + 1)
                frame = Frame(
                    frame_id=(
                        f"f{_pad_id(flow, self.id_pad)}"
                        f".{_pad_id(index, self.id_pad)}"
                    ),
                    flow_id=f"flow{flow}",
                    size_bytes=size,
                    frame_type=frame_type,
                    release_slot=release,
                    mtu_bytes=self.mtu_bytes,
                )
                slots = [release + offset for offset in range(frame.num_packets)]
                trace.add_frame(frame, slots)
        return trace


class PoissonBurstGenerator:
    """Frames arrive as a Poisson process; packets spread over following slots."""

    def __init__(
        self,
        arrival_rate: float = 0.5,
        packets_per_frame: Tuple[int, int] = (2, 5),
        mtu_bytes: int = DEFAULT_MTU_BYTES,
        link_capacity: int = 1,
        id_pad: int = 0,
    ) -> None:
        if arrival_rate <= 0:
            raise OspError(f"arrival rate must be positive, got {arrival_rate}")
        low, high = packets_per_frame
        if low < 1 or high < low:
            raise OspError(f"invalid packets-per-frame range {packets_per_frame}")
        self.arrival_rate = arrival_rate
        self.packets_per_frame = packets_per_frame
        self.mtu_bytes = mtu_bytes
        self.link_capacity = link_capacity
        self.id_pad = id_pad

    def _poisson(self, rng: random.Random) -> int:
        # Knuth's method; the rate is small in our workloads.
        threshold = math.exp(-self.arrival_rate)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    def generate(self, num_slots: int, rng: random.Random) -> Trace:
        """Generate a trace spanning ``num_slots`` injection slots."""
        if num_slots < 1:
            raise OspError("need at least one slot")
        trace = Trace(link_capacity=self.link_capacity)
        frame_counter = 0
        low, high = self.packets_per_frame
        for slot in range(num_slots):
            for _ in range(self._poisson(rng)):
                num_packets = rng.randint(low, high)
                frame = Frame(
                    frame_id=f"pf{_pad_id(frame_counter, self.id_pad)}",
                    flow_id="poisson",
                    size_bytes=num_packets * self.mtu_bytes,
                    frame_type="data",
                    release_slot=slot,
                    mtu_bytes=self.mtu_bytes,
                )
                frame_counter += 1
                slots = [slot + offset for offset in range(frame.num_packets)]
                trace.add_frame(frame, slots)
        return trace


class AdversarialBurstGenerator:
    """Synchronized bursts: ``sigma`` frames collide in every one of their slots.

    The generator creates waves of ``sigma`` frames of ``k`` packets each; the
    frames of a wave are perfectly aligned, so every slot of the wave is a
    burst of size ``sigma`` at a capacity-1 link — the worst case the paper's
    bounds are written for.  ``gap_slots`` idle slots separate consecutive
    waves; with a positive gap a buffered link gets a chance to drain, which
    is what the buffering experiments sweep.
    """

    def __init__(
        self,
        burst_size: int = 4,
        packets_per_frame: int = 3,
        mtu_bytes: int = DEFAULT_MTU_BYTES,
        link_capacity: int = 1,
        gap_slots: int = 0,
        id_pad: int = 0,
    ) -> None:
        if burst_size < 1:
            raise OspError(f"burst size must be positive, got {burst_size}")
        if packets_per_frame < 1:
            raise OspError(f"packets per frame must be positive, got {packets_per_frame}")
        if gap_slots < 0:
            raise OspError(f"gap slots must be non-negative, got {gap_slots}")
        self.burst_size = burst_size
        self.packets_per_frame = packets_per_frame
        self.mtu_bytes = mtu_bytes
        self.link_capacity = link_capacity
        self.gap_slots = gap_slots
        self.id_pad = id_pad

    def generate(self, num_waves: int, rng: Optional[random.Random] = None) -> Trace:
        """Generate ``num_waves`` consecutive synchronized waves."""
        if num_waves < 1:
            raise OspError("need at least one wave")
        trace = Trace(link_capacity=self.link_capacity)
        for wave in range(num_waves):
            start = wave * (self.packets_per_frame + self.gap_slots)
            for member in range(self.burst_size):
                frame = Frame(
                    frame_id=(
                        f"w{_pad_id(wave, self.id_pad)}"
                        f".m{_pad_id(member, self.id_pad)}"
                    ),
                    flow_id=f"wave{wave}",
                    size_bytes=self.packets_per_frame * self.mtu_bytes,
                    frame_type="burst",
                    release_slot=start,
                    mtu_bytes=self.mtu_bytes,
                )
                slots = [start + offset for offset in range(frame.num_packets)]
                trace.add_frame(frame, slots)
        return trace
