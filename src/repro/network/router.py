"""The bottleneck router: the paper's motivating system, as a simulator.

A :class:`BottleneckRouter` models one outgoing link of a network switch.
Packets arrive in per-slot bursts (a :class:`~repro.network.traffic.Trace`);
the link can serve a bounded number of packets per slot and everything else
is dropped (no buffering — the buffered variant lives in
:mod:`repro.network.buffered`).  The drop decision is delegated to any OSP
online algorithm through the paper's reduction: the slot is the arriving
element, the frames with packets in the burst are its parent sets, and the
link capacity is the element capacity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.core.simulation import SimulationResult, simulate
from repro.network.metrics import FrameDeliveryMetrics, compute_delivery_metrics
from repro.network.traffic import Trace

__all__ = ["RouterRunResult", "BottleneckRouter"]


@dataclass(frozen=True)
class RouterRunResult:
    """The outcome of pushing one trace through the router with one policy."""

    policy_name: str
    metrics: FrameDeliveryMetrics
    completed_frames: FrozenSet[str]
    simulation: SimulationResult
    instance: OnlineInstance

    @property
    def benefit(self) -> float:
        """The OSP benefit (total weight of completed frames)."""
        return self.simulation.benefit


class BottleneckRouter:
    """A capacity-limited outgoing link whose drop policy is an OSP algorithm.

    Parameters
    ----------
    policy:
        Any :class:`~repro.core.algorithm.OnlineAlgorithm`; randPr makes the
        router drop whole frames consistently, which is the paper's point.
    capacity_per_slot:
        Overrides the trace's link capacity when given.
    """

    def __init__(
        self, policy: OnlineAlgorithm, capacity_per_slot: Optional[int] = None
    ) -> None:
        self._policy = policy
        self._capacity = capacity_per_slot

    @property
    def policy(self) -> OnlineAlgorithm:
        """The drop policy in use."""
        return self._policy

    def run(
        self,
        trace: Trace,
        rng: Optional[random.Random] = None,
        record_steps: bool = False,
    ) -> RouterRunResult:
        """Push a trace through the router and report frame-level delivery."""
        if self._capacity is not None:
            trace = Trace(
                slots=trace.slots, frames=trace.frames, link_capacity=self._capacity
            )
        instance = trace.to_instance(name=f"router:{self._policy.name}")
        result = simulate(
            instance, self._policy, rng=rng, record_steps=record_steps
        )
        completed = frozenset(str(set_id) for set_id in result.completed_sets)
        metrics = compute_delivery_metrics(trace.frames, completed)
        return RouterRunResult(
            policy_name=self._policy.name,
            metrics=metrics,
            completed_frames=completed,
            simulation=result,
            instance=instance,
        )

    def compare_policies(
        self,
        trace: Trace,
        policies: Dict[str, OnlineAlgorithm],
        seed: int = 0,
    ) -> Dict[str, RouterRunResult]:
        """Run several policies on the same trace (same seed for each)."""
        results = {}
        for label, policy in policies.items():
            router = BottleneckRouter(policy, capacity_per_slot=self._capacity)
            results[label] = router.run(trace, rng=random.Random(seed))
        return results
