"""The bottleneck router: the paper's motivating system, as a simulator.

A :class:`BottleneckRouter` models one outgoing link of a network switch.
Packets arrive in per-slot bursts (a :class:`~repro.network.traffic.Trace`);
the link can serve a bounded number of packets per slot and everything else
is dropped (no buffering — the buffered variant lives in
:mod:`repro.network.buffered`).  The drop decision is delegated to any OSP
online algorithm through the paper's reduction: the slot is the arriving
element, the frames with packets in the burst are its parent sets, and the
link capacity is the element capacity.

Two execution paths share one contract.  :meth:`BottleneckRouter.run` is
the reference per-packet loop (one trial, explicit ``random.Random``);
:func:`run_router_batch` pushes many Monte-Carlo trials through the engines
of :mod:`repro.engine` — the streaming engine consumes the trace directly in
bounded-memory time windows — and trial ``b`` of the batch is bit-identical
to ``run`` with ``rng=random.Random(seed + b)``.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Union

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import OnlineInstance
from repro.core.simulation import SimulationResult, simulate, simulate_many
from repro.engine.batch import BatchResult, batch_from_results
from repro.engine.streaming import simulate_trace_batch
from repro.network.metrics import FrameDeliveryMetrics, compute_delivery_metrics
from repro.network.traffic import Trace

__all__ = [
    "RouterRunResult",
    "RouterBatchResult",
    "BottleneckRouter",
    "run_router_batch",
    "ROUTER_ENGINE_CHOICES",
]

#: Engines :func:`run_router_batch` accepts.  ``"reference"`` replays the
#: per-packet loop trial by trial; ``"streaming"`` requires the trace's
#: policy to be engine-replayable; ``"auto"`` picks streaming when possible.
ROUTER_ENGINE_CHOICES = ("reference", "streaming", "auto")


@dataclass(frozen=True)
class RouterRunResult:
    """The outcome of pushing one trace through the router with one policy."""

    policy_name: str
    metrics: FrameDeliveryMetrics
    completed_frames: FrozenSet[str]
    simulation: SimulationResult
    instance: OnlineInstance

    @property
    def benefit(self) -> float:
        """The OSP benefit (total weight of completed frames)."""
        return self.simulation.benefit


@dataclass(frozen=True)
class RouterBatchResult:
    """Frame-level view of a multi-trial router batch.

    Wraps the engine's :class:`~repro.engine.batch.BatchResult` (trial ``b``
    bit-identical to the reference loop with ``random.Random(seed + b)``)
    together with the trace, so delivery metrics can be derived per trial
    without re-running anything.
    """

    policy_name: str
    engine: str
    trace: Trace
    batch: BatchResult

    @property
    def trials(self) -> int:
        """The number of Monte-Carlo trials in the batch."""
        return self.batch.trials

    @property
    def benefits(self):
        """The per-trial OSP benefits (total completed frame weight)."""
        return self.batch.benefits

    def completed_frames(self, trial: int) -> FrozenSet[str]:
        """The frames delivered whole in one trial."""
        return frozenset(str(set_id) for set_id in self.batch.completed_sets(trial))

    def metrics_for(self, trial: int) -> FrameDeliveryMetrics:
        """Frame-level delivery metrics of one trial."""
        return compute_delivery_metrics(self.trace.frames, self.completed_frames(trial))


def run_router_batch(
    trace: Trace,
    algorithm: OnlineAlgorithm,
    trials: int,
    seed: int = 0,
    engine: str = "auto",
    window_slots: Optional[int] = None,
    capacity_per_slot: Optional[int] = None,
    stats: Optional[dict] = None,
) -> RouterBatchResult:
    """Run ``trials`` router trials of ``algorithm`` over ``trace``.

    ``engine="streaming"`` compiles the trace directly for
    :func:`~repro.engine.streaming.simulate_trace_batch` (bounded memory,
    batch-engine throughput); ``engine="reference"`` replays the per-packet
    loop trial by trial and bridges the results into the same
    :class:`~repro.engine.batch.BatchResult` shape; ``engine="auto"`` uses
    streaming when the policy is engine-replayable and falls back to the
    reference loop otherwise.  All engines obey the repo's exactness
    contract — identical completed frames, benefits and delivery metrics,
    trial for trial.

    >>> import random
    >>> from repro.algorithms import RandPrAlgorithm
    >>> from repro.network.traffic import AdversarialBurstGenerator
    >>> trace = AdversarialBurstGenerator(burst_size=3).generate(num_waves=2)
    >>> streamed = run_router_batch(trace, RandPrAlgorithm(), trials=3, seed=7)
    >>> replayed = run_router_batch(trace, RandPrAlgorithm(), trials=3, seed=7,
    ...                             engine="reference")
    >>> streamed.batch.equals(replayed.batch)
    True
    >>> streamed.completed_frames(0) == replayed.completed_frames(0)
    True
    """
    if engine not in ROUTER_ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ROUTER_ENGINE_CHOICES}"
        )
    if capacity_per_slot is not None:
        trace = dataclasses.replace(trace, link_capacity=capacity_per_slot)

    chosen = engine
    if engine == "auto":
        from repro.engine.specs import spec_for_algorithm

        chosen = (
            "streaming"
            if isinstance(algorithm, str) or spec_for_algorithm(algorithm) is not None
            else "reference"
        )
    if chosen == "streaming":
        batch = simulate_trace_batch(
            trace, algorithm, trials=trials, seed=seed,
            window_slots=window_slots, stats=stats,
        )
    else:
        instance = trace.to_instance()
        results = simulate_many(instance, algorithm, trials=trials, seed=seed)
        batch = batch_from_results(instance, results, seed=seed)
    policy_name = algorithm if isinstance(algorithm, str) else algorithm.name
    return RouterBatchResult(
        policy_name=str(policy_name), engine=chosen, trace=trace, batch=batch
    )


class BottleneckRouter:
    """A capacity-limited outgoing link whose drop policy is an OSP algorithm.

    Parameters
    ----------
    policy:
        Any :class:`~repro.core.algorithm.OnlineAlgorithm`; randPr makes the
        router drop whole frames consistently, which is the paper's point.
    capacity_per_slot:
        Overrides the trace's link capacity when given.
    """

    def __init__(
        self, policy: OnlineAlgorithm, capacity_per_slot: Optional[int] = None
    ) -> None:
        self._policy = policy
        self._capacity = capacity_per_slot

    @property
    def policy(self) -> OnlineAlgorithm:
        """The drop policy in use."""
        return self._policy

    def _effective_trace(self, trace: Trace) -> Trace:
        if self._capacity is None:
            return trace
        return dataclasses.replace(trace, link_capacity=self._capacity)

    def run(
        self,
        trace: Trace,
        rng: Optional[random.Random] = None,
        record_steps: bool = False,
    ) -> RouterRunResult:
        """Push a trace through the router and report frame-level delivery."""
        trace = self._effective_trace(trace)
        instance = trace.to_instance(name=f"router:{self._policy.name}")
        result = simulate(
            instance, self._policy, rng=rng, record_steps=record_steps
        )
        completed = frozenset(str(set_id) for set_id in result.completed_sets)
        metrics = compute_delivery_metrics(trace.frames, completed)
        return RouterRunResult(
            policy_name=self._policy.name,
            metrics=metrics,
            completed_frames=completed,
            simulation=result,
            instance=instance,
        )

    def run_batch(
        self,
        trace: Trace,
        trials: int,
        seed: int = 0,
        engine: str = "auto",
        window_slots: Optional[int] = None,
        stats: Optional[dict] = None,
    ) -> RouterBatchResult:
        """Multi-trial :meth:`run` through :func:`run_router_batch`.

        Applies the router's capacity override, then delegates; trial ``b``
        is bit-identical to ``run(trace, rng=random.Random(seed + b))``.
        """
        return run_router_batch(
            trace,
            self._policy,
            trials=trials,
            seed=seed,
            engine=engine,
            window_slots=window_slots,
            capacity_per_slot=self._capacity,
            stats=stats,
        )

    def compare_policies(
        self,
        trace: Trace,
        policies: Dict[str, OnlineAlgorithm],
        seed: int = 0,
        record_steps: bool = False,
    ) -> Dict[str, RouterRunResult]:
        """Run several policies on the same trace under the shared-seed contract.

        Every policy sees the identical trace and its own **fresh**
        ``random.Random(seed)`` — no policy's draws perturb another's, so
        differences in the results are attributable to the policies alone
        (``tests/test_network_router_buffered.py`` pins this).
        ``record_steps`` is forwarded to each run.
        """
        results = {}
        for label, policy in policies.items():
            router = BottleneckRouter(policy, capacity_per_slot=self._capacity)
            results[label] = router.run(
                trace, rng=random.Random(seed), record_steps=record_steps
            )
        return results
