"""Frames and packets: the data units of the networking scenario.

The paper's motivating scenario is video transmission: large application
frames (hundreds of kilobytes) are fragmented into MTU-sized packets, and a
frame is useful at the receiver only if *all* of its packets survive the
bottleneck.  This module models frames, their fragmentation into packets and
the bookkeeping the router simulation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import OspError

__all__ = ["Packet", "Frame", "fragment_into_packets", "DEFAULT_MTU_BYTES"]

#: Ethernet-like maximum transfer unit used by default (1.5 KB as in the paper).
DEFAULT_MTU_BYTES = 1500


@dataclass(frozen=True)
class Packet:
    """A single network packet: one fragment of a frame."""

    packet_id: str
    frame_id: str
    index: int
    size_bytes: int
    arrival_slot: Optional[int] = None

    def at_slot(self, slot: int) -> "Packet":
        """A copy of this packet stamped with its arrival time slot."""
        return Packet(
            packet_id=self.packet_id,
            frame_id=self.frame_id,
            index=self.index,
            size_bytes=self.size_bytes,
            arrival_slot=slot,
        )


@dataclass
class Frame:
    """An application-level data frame, fragmented into packets.

    ``frame_type`` is free-form; the video workload uses ``"I"``, ``"P"`` and
    ``"B"``.  ``weight`` is the OSP set weight — by default the frame size in
    MTU units, so heavier frames represent more application value.
    """

    frame_id: str
    flow_id: str
    size_bytes: int
    frame_type: str = "data"
    release_slot: int = 0
    weight: Optional[float] = None
    mtu_bytes: int = DEFAULT_MTU_BYTES
    packets: List[Packet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise OspError(f"frame {self.frame_id!r} has non-positive size {self.size_bytes}")
        if self.mtu_bytes <= 0:
            raise OspError(f"frame {self.frame_id!r} has non-positive MTU {self.mtu_bytes}")
        if not self.packets:
            self.packets = fragment_into_packets(
                self.frame_id, self.size_bytes, self.mtu_bytes
            )
        if self.weight is None:
            self.weight = float(self.num_packets)

    @property
    def num_packets(self) -> int:
        """How many packets the frame fragments into."""
        return len(self.packets)

    @property
    def packet_ids(self) -> Tuple[str, ...]:
        """The identifiers of the frame's packets, in order."""
        return tuple(packet.packet_id for packet in self.packets)

    def __repr__(self) -> str:
        return (
            f"Frame(id={self.frame_id!r}, type={self.frame_type!r}, "
            f"bytes={self.size_bytes}, packets={self.num_packets})"
        )


def fragment_into_packets(
    frame_id: str, size_bytes: int, mtu_bytes: int = DEFAULT_MTU_BYTES
) -> List[Packet]:
    """Split a frame of ``size_bytes`` into MTU-sized packets.

    The last packet carries the remainder; a frame smaller than one MTU still
    produces one packet.
    """
    if size_bytes <= 0:
        raise OspError(f"cannot fragment non-positive size {size_bytes}")
    if mtu_bytes <= 0:
        raise OspError(f"MTU must be positive, got {mtu_bytes}")
    packets: List[Packet] = []
    remaining = size_bytes
    index = 0
    while remaining > 0:
        payload = min(mtu_bytes, remaining)
        packets.append(
            Packet(
                packet_id=f"{frame_id}.p{index}",
                frame_id=frame_id,
                index=index,
                size_bytes=payload,
            )
        )
        remaining -= payload
        index += 1
    return packets
