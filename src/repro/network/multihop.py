"""Multi-hop packet scheduling: the paper's second motivating scenario.

A packet that must traverse several switches is delivered only if no switch
along its route drops it.  Section 1 of the paper reduces this to OSP: every
(time, location) pair is an element, every packet is a set whose elements are
the time-location pairs it is scheduled to visit, and at each pair only a
bounded number of packets can be served.

This module builds such instances from explicit packet routes and runs them
either through the centralized simulator or through the distributed
coordinator with one server per switch — demonstrating that randPr's
hash-priority form needs no coordination between switches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.algorithm import OnlineAlgorithm
from repro.core.instance import InstanceBuilder, OnlineInstance
from repro.core.simulation import simulate
from repro.distributed.coordinator import DistributedCoordinator, DistributedOutcome
from repro.exceptions import OspError

__all__ = [
    "MultiHopPacket",
    "build_multihop_instance",
    "MultiHopNetwork",
    "random_path_workload",
]


@dataclass(frozen=True)
class MultiHopPacket:
    """A packet and its route through the network.

    The packet is injected at ``injection_time`` and visits ``hops[i]`` at
    time ``injection_time + i`` (store-and-forward, one hop per slot).
    """

    packet_id: str
    injection_time: int
    hops: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.injection_time < 0:
            raise OspError(f"packet {self.packet_id!r} has negative injection time")
        if not self.hops:
            raise OspError(f"packet {self.packet_id!r} has an empty route")

    @property
    def visits(self) -> Tuple[Tuple[int, str], ...]:
        """The (time, hop) pairs the packet occupies."""
        return tuple(
            (self.injection_time + offset, hop) for offset, hop in enumerate(self.hops)
        )


def build_multihop_instance(
    packets: Sequence[MultiHopPacket],
    hop_capacity: int = 1,
    name: str = "multihop",
) -> OnlineInstance:
    """Build the OSP instance of a multi-hop schedule.

    Elements are the (time, hop) pairs visited by at least one packet, in
    time-major order (so the online arrival order matches the physical clock);
    each has capacity ``hop_capacity``.  Sets are packets, weighted by their
    packet weight.
    """
    if not packets:
        raise OspError("need at least one packet")
    ids = [packet.packet_id for packet in packets]
    if len(ids) != len(set(ids)):
        raise OspError("packet identifiers must be unique")

    visitors: Dict[Tuple[int, str], List[str]] = {}
    for packet in packets:
        for visit in packet.visits:
            visitors.setdefault(visit, []).append(packet.packet_id)

    builder = InstanceBuilder(name=name)
    for packet in packets:
        builder.declare_set(packet.packet_id, packet.weight)
    for (time, hop) in sorted(visitors, key=lambda pair: (pair[0], str(pair[1]))):
        builder.add_element(
            visitors[(time, hop)],
            capacity=hop_capacity,
            element_id=f"t{time}@{hop}",
        )
    return builder.build()


class MultiHopNetwork:
    """A line (or arbitrary named-switch) network executing an OSP policy.

    ``run_centralized`` uses the ordinary simulator; ``run_distributed`` gives
    every switch its own :class:`~repro.distributed.node.ServerNode` driven by
    the shared hash salt, and routes each (time, hop) element to the server of
    its hop — no server ever sees another server's arrivals.
    """

    def __init__(self, hop_ids: Sequence[str], hop_capacity: int = 1) -> None:
        if not hop_ids:
            raise OspError("a network needs at least one hop")
        self._hop_ids = list(hop_ids)
        self._hop_capacity = hop_capacity

    @property
    def hop_ids(self) -> List[str]:
        """The switch identifiers along the network."""
        return list(self._hop_ids)

    def instance_for(self, packets: Sequence[MultiHopPacket]) -> OnlineInstance:
        """The OSP instance induced by a packet workload on this network."""
        for packet in packets:
            for hop in packet.hops:
                if hop not in self._hop_ids:
                    raise OspError(
                        f"packet {packet.packet_id!r} routed through unknown hop {hop!r}"
                    )
        return build_multihop_instance(packets, hop_capacity=self._hop_capacity)

    def run_centralized(
        self,
        packets: Sequence[MultiHopPacket],
        policy: OnlineAlgorithm,
        rng: Optional[random.Random] = None,
    ) -> FrozenSet[str]:
        """Run a policy with full knowledge; returns the delivered packet ids."""
        instance = self.instance_for(packets)
        result = simulate(instance, policy, rng=rng)
        return frozenset(str(set_id) for set_id in result.completed_sets)

    def run_centralized_batch(
        self,
        packets: Sequence[MultiHopPacket],
        policy: OnlineAlgorithm,
        trials: int,
        seed: int = 0,
        engine: str = "auto",
    ):
        """Multi-trial :meth:`run_centralized` on the batch engine.

        Returns a :class:`~repro.engine.batch.BatchResult` whose trial ``b``
        is bit-identical to ``run_centralized(packets, policy,
        rng=random.Random(seed + b))`` — ``engine="batch"`` vectorizes,
        ``"reference"`` replays the scalar loop, ``"auto"`` vectorizes when
        the policy is engine-replayable.

        >>> import random
        >>> from repro.algorithms import RandPrAlgorithm
        >>> network = MultiHopNetwork(["s0", "s1"], hop_capacity=1)
        >>> packets = random_path_workload(6, network.hop_ids, 2, 4, random.Random(0))
        >>> batch = network.run_centralized_batch(packets, RandPrAlgorithm(), trials=2)
        >>> set(batch.completed_sets(0)) == set(
        ...     network.run_centralized(packets, RandPrAlgorithm(), rng=random.Random(0)))
        True
        """
        from repro.core.simulation import simulate_many
        from repro.engine import batch_from_results, simulate_batch, spec_for_algorithm

        if engine not in ("reference", "batch", "auto"):
            raise OspError(f"unknown engine {engine!r}")
        instance = self.instance_for(packets)
        chosen = engine
        if engine == "auto":
            chosen = "batch" if spec_for_algorithm(policy) is not None else "reference"
        if chosen == "batch":
            return simulate_batch(instance, policy, trials=trials, seed=seed)
        results = simulate_many(instance, policy, trials=trials, seed=seed)
        return batch_from_results(instance, results, seed=seed)

    def run_distributed(
        self, packets: Sequence[MultiHopPacket], salt: str = "multihop"
    ) -> DistributedOutcome:
        """Run hash-randPr with one independent server per switch."""
        instance = self.instance_for(packets)

        def placement(element_id) -> str:
            # Element ids have the form "t<time>@<hop>".
            text = str(element_id)
            _, _, hop = text.partition("@")
            return hop

        coordinator = DistributedCoordinator(
            node_ids=list(self._hop_ids), salt=salt, placement=placement
        )
        return coordinator.run(instance)


def random_path_workload(
    num_packets: int,
    hop_ids: Sequence[str],
    max_path_length: int,
    time_horizon: int,
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 1.0),
) -> List[MultiHopPacket]:
    """Random packets over contiguous sub-paths of a line network.

    Each packet picks a random injection time, a random starting switch and a
    random contiguous run of switches (wrapping is not allowed), modelling
    flows that enter and leave a chain of routers at arbitrary points.
    """
    if num_packets < 1:
        raise OspError("need at least one packet")
    if max_path_length < 1 or max_path_length > len(hop_ids):
        raise OspError(
            f"max path length must be in [1, {len(hop_ids)}], got {max_path_length}"
        )
    low, high = weight_range
    packets = []
    for index in range(num_packets):
        length = rng.randint(1, max_path_length)
        start = rng.randint(0, len(hop_ids) - length)
        injection = rng.randint(0, max(time_horizon - 1, 0))
        weight = low if low == high else rng.uniform(low, high)
        packets.append(
            MultiHopPacket(
                packet_id=f"pkt{index}",
                injection_time=injection,
                hops=tuple(hop_ids[start:start + length]),
                weight=weight,
            )
        )
    return packets
