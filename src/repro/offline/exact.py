"""Exact offline set packing via branch and bound.

The offline problem (the integer program (1) in the paper) is NP-hard, but
the instances used to *measure* competitive ratios in the benchmarks are
small enough for an exact solver with good pruning.  The solver maximizes the
total weight of a collection of sets such that every element ``u`` is used by
at most ``b(u)`` chosen sets.

Pruning uses two upper bounds on what the unexplored suffix can still add,
both precomputed with numpy (replacing the original pure-Python suffix-sum
loop):

* the **suffix weight sum** — the loosest bound, checked first because it is
  one float comparison;
* a **fractional knapsack bound**: any feasible completion consumes one unit
  of element capacity per (set, member) incidence, so the sets chosen from
  the suffix satisfy ``sum |S| <= R`` where ``R`` is the total residual
  capacity at the node.  Relaxing the per-element constraints to that single
  budget gives a fractional knapsack over the suffix, whose optimum — greedy
  by weight density, precomputed as per-suffix prefix-sum tables — upper
  bounds the integral completion.  The bound is capacity-aware, so it
  prunes deep nodes that the weight sum alone never could.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.set_system import ElementId, SetId, SetSystem
from repro.exceptions import SolverError
from repro.offline.greedy_offline import greedy_offline_packing

__all__ = ["ExactSolution", "solve_exact"]

#: Above this set count the O(m^2) knapsack tables are skipped (the suffix
#: weight bound alone is kept); exact solving is impractical there anyway.
_KNAPSACK_TABLE_SET_LIMIT = 512


@dataclass(frozen=True)
class ExactSolution:
    """An optimal (or best-found, if the node budget ran out) packing."""

    chosen_sets: FrozenSet[SetId]
    weight: float
    is_optimal: bool
    nodes_explored: int

    @property
    def num_sets(self) -> int:
        """The number of sets in the solution."""
        return len(self.chosen_sets)


def _knapsack_tables(
    weights: np.ndarray, sizes: np.ndarray
) -> Tuple[List[List[float]], List[List[float]], List[float]]:
    """Per-suffix fractional-knapsack prefix tables, built vectorized.

    For every suffix start ``i`` the sets ``i..m-1`` are ranked by weight
    density ``w/|S|`` (descending; empty sets rank first — they consume no
    capacity).  The tables hold, per suffix, the running capacity consumption
    and running weight of that ranking, so a node evaluates its bound with
    one bisect: take whole sets while the budget lasts, then a fractional
    share of the next one.

    Rather than sorting every suffix separately, the sets are argsorted by
    density once; row ``i`` of the tables is the cumulative sum of the
    density-ordered sizes/weights masked to positions belonging to the
    suffix — an ``(m, m)`` ``np.cumsum``.
    """
    m = len(weights)
    with np.errstate(divide="ignore"):
        density = np.where(sizes > 0, weights / np.maximum(sizes, 1), np.inf)
    # Stable descending order: equal densities keep branching order.
    order = np.argsort(-density, kind="stable")
    ordered_sizes = sizes[order].astype(np.float64)
    ordered_weights = weights[order]
    in_suffix = order[np.newaxis, :] >= np.arange(m)[:, np.newaxis]  # (m, m)
    size_table = np.cumsum(np.where(in_suffix, ordered_sizes, 0.0), axis=1)
    weight_table = np.cumsum(np.where(in_suffix, ordered_weights, 0.0), axis=1)
    return size_table.tolist(), weight_table.tolist(), density[order].tolist()


def solve_exact(
    system: SetSystem,
    max_nodes: int = 2_000_000,
    initial_solution: Optional[FrozenSet[SetId]] = None,
) -> ExactSolution:
    """Find a maximum-weight feasible packing by depth-first branch and bound.

    Parameters
    ----------
    system:
        The weighted set system with element capacities.
    max_nodes:
        Safety budget on search-tree nodes.  If exhausted, the best solution
        found so far is returned with ``is_optimal=False``.
    initial_solution:
        Optional warm-start packing (must be feasible); defaults to the
        offline greedy solution, which gives the pruning a strong incumbent.
    """
    set_ids: List[SetId] = sorted(
        system.set_ids, key=lambda set_id: (-system.weight(set_id), repr(set_id))
    )
    weights = [system.weight(set_id) for set_id in set_ids]
    members: List[FrozenSet[ElementId]] = [system.members(set_id) for set_id in set_ids]
    capacities: Dict[ElementId, int] = {
        element: system.capacity(element) for element in system.element_ids
    }

    m = len(set_ids)
    weights_array = np.asarray(weights, dtype=np.float64)
    sizes_array = np.fromiter(
        (len(member_set) for member_set in members), dtype=np.int64, count=m
    )

    # Suffix sums of weights (one reversed cumsum): the loosest possible
    # bound on what the remaining sets can still add.
    suffix = np.zeros(m + 1, dtype=np.float64)
    if m:
        suffix[:m] = np.cumsum(weights_array[::-1])[::-1]
    suffix_list = suffix.tolist()

    use_knapsack = 0 < m <= _KNAPSACK_TABLE_SET_LIMIT
    if use_knapsack:
        size_rows, weight_rows, ordered_density = _knapsack_tables(
            weights_array, sizes_array
        )
    total_capacity = sum(capacities.values())

    if initial_solution is None:
        warm = greedy_offline_packing(system)
        best_choice: Tuple[SetId, ...] = tuple(warm.chosen_sets)
        best_weight = warm.weight
    else:
        if not system.is_feasible_packing(initial_solution):
            raise SolverError("the supplied initial solution is not a feasible packing")
        best_choice = tuple(initial_solution)
        best_weight = system.total_weight(initial_solution)

    usage: Dict[ElementId, int] = {element: 0 for element in capacities}
    chosen: List[SetId] = []
    used_units = 0
    nodes = 0
    budget_exhausted = False

    def fits(index: int) -> bool:
        for element in members[index]:
            if usage[element] + 1 > capacities[element]:
                return False
        return True

    def take(index: int) -> None:
        nonlocal used_units
        for element in members[index]:
            usage[element] += 1
        used_units += len(members[index])
        chosen.append(set_ids[index])

    def untake(index: int) -> None:
        nonlocal used_units
        for element in members[index]:
            usage[element] -= 1
        used_units -= len(members[index])
        chosen.pop()

    def knapsack_bound(index: int) -> float:
        """Fractional-knapsack upper bound on the suffix's addable weight.

        Any feasible completion from ``index`` consumes at most the current
        residual capacity ``R = total_capacity - used_units`` summed over all
        elements, and a set ``S`` consumes exactly ``|S|`` units, so the
        completion's weight is at most the fractional knapsack optimum with
        budget ``R`` over the suffix — whole sets in density order, then a
        fractional share of the first set that no longer fits.
        """
        residual = total_capacity - used_units
        size_row = size_rows[index]
        cutoff = bisect_right(size_row, residual)
        if cutoff >= m:
            return weight_rows[index][m - 1]
        bound = weight_rows[index][cutoff - 1] if cutoff else 0.0
        spare = residual - (size_row[cutoff - 1] if cutoff else 0.0)
        if spare > 0:
            # ordered_density[cutoff] is finite: an infinite-density (empty)
            # set adds no capacity, so it can never sit at the cutoff.
            bound += spare * ordered_density[cutoff]
        return bound

    def descend(index: int, current_weight: float) -> None:
        nonlocal best_choice, best_weight, nodes, budget_exhausted
        if budget_exhausted:
            return
        nodes += 1
        if nodes > max_nodes:
            budget_exhausted = True
            return
        if current_weight > best_weight:
            best_weight = current_weight
            best_choice = tuple(chosen)
        if index >= m:
            return
        # Cheap bound first (one comparison); the capacity-aware knapsack
        # bound only runs at nodes the weight sum failed to prune.
        if current_weight + suffix_list[index] <= best_weight:
            return
        if use_knapsack and current_weight + knapsack_bound(index) <= best_weight:
            return
        # Branch 1: take the set (when feasible).
        if fits(index):
            take(index)
            descend(index + 1, current_weight + weights[index])
            untake(index)
        # Branch 2: skip the set.
        descend(index + 1, current_weight)

    descend(0, 0.0)

    return ExactSolution(
        chosen_sets=frozenset(best_choice),
        weight=best_weight,
        is_optimal=not budget_exhausted,
        nodes_explored=nodes,
    )
