"""Exact offline set packing via branch and bound.

The offline problem (the integer program (1) in the paper) is NP-hard, but
the instances used to *measure* competitive ratios in the benchmarks are
small enough for an exact solver with good pruning.  The solver maximizes the
total weight of a collection of sets such that every element ``u`` is used by
at most ``b(u)`` chosen sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.set_system import ElementId, SetId, SetSystem
from repro.exceptions import SolverError
from repro.offline.greedy_offline import greedy_offline_packing

__all__ = ["ExactSolution", "solve_exact"]


@dataclass(frozen=True)
class ExactSolution:
    """An optimal (or best-found, if the node budget ran out) packing."""

    chosen_sets: FrozenSet[SetId]
    weight: float
    is_optimal: bool
    nodes_explored: int

    @property
    def num_sets(self) -> int:
        """The number of sets in the solution."""
        return len(self.chosen_sets)


def solve_exact(
    system: SetSystem,
    max_nodes: int = 2_000_000,
    initial_solution: Optional[FrozenSet[SetId]] = None,
) -> ExactSolution:
    """Find a maximum-weight feasible packing by depth-first branch and bound.

    Parameters
    ----------
    system:
        The weighted set system with element capacities.
    max_nodes:
        Safety budget on search-tree nodes.  If exhausted, the best solution
        found so far is returned with ``is_optimal=False``.
    initial_solution:
        Optional warm-start packing (must be feasible); defaults to the
        offline greedy solution, which gives the pruning a strong incumbent.
    """
    set_ids: List[SetId] = sorted(
        system.set_ids, key=lambda set_id: (-system.weight(set_id), repr(set_id))
    )
    weights = [system.weight(set_id) for set_id in set_ids]
    members: List[FrozenSet[ElementId]] = [system.members(set_id) for set_id in set_ids]
    capacities: Dict[ElementId, int] = {
        element: system.capacity(element) for element in system.element_ids
    }

    # Suffix sums of weights: the loosest possible bound on what the
    # remaining sets can still add.
    suffix = [0.0] * (len(weights) + 1)
    for index in range(len(weights) - 1, -1, -1):
        suffix[index] = suffix[index + 1] + weights[index]

    if initial_solution is None:
        warm = greedy_offline_packing(system)
        best_choice: Tuple[SetId, ...] = tuple(warm.chosen_sets)
        best_weight = warm.weight
    else:
        if not system.is_feasible_packing(initial_solution):
            raise SolverError("the supplied initial solution is not a feasible packing")
        best_choice = tuple(initial_solution)
        best_weight = system.total_weight(initial_solution)

    usage: Dict[ElementId, int] = {element: 0 for element in capacities}
    chosen: List[SetId] = []
    nodes = 0
    budget_exhausted = False

    def fits(index: int) -> bool:
        for element in members[index]:
            if usage[element] + 1 > capacities[element]:
                return False
        return True

    def take(index: int) -> None:
        for element in members[index]:
            usage[element] += 1
        chosen.append(set_ids[index])

    def untake(index: int) -> None:
        for element in members[index]:
            usage[element] -= 1
        chosen.pop()

    def descend(index: int, current_weight: float) -> None:
        nonlocal best_choice, best_weight, nodes, budget_exhausted
        if budget_exhausted:
            return
        nodes += 1
        if nodes > max_nodes:
            budget_exhausted = True
            return
        if current_weight > best_weight:
            best_weight = current_weight
            best_choice = tuple(chosen)
        if index >= len(set_ids):
            return
        if current_weight + suffix[index] <= best_weight:
            return
        # Branch 1: take the set (when feasible).
        if fits(index):
            take(index)
            descend(index + 1, current_weight + weights[index])
            untake(index)
        # Branch 2: skip the set.
        descend(index + 1, current_weight)

    descend(0, 0.0)

    return ExactSolution(
        chosen_sets=frozenset(best_choice),
        weight=best_weight,
        is_optimal=not budget_exhausted,
        nodes_explored=nodes,
    )
