"""Linear-programming relaxation of the offline set packing program.

The relaxation of the paper's integer program (1) — ``0 ≤ x_i ≤ 1`` instead
of ``x_i ∈ {0, 1}`` — upper-bounds the optimum.  On instances too large for
the exact solver the benchmarks measure ratios against this bound, which can
only *overstate* the competitive ratio, so measured ratios remain valid
witnesses for the paper's upper-bound theorems.

The primary backend is ``scipy.optimize.linprog``; when SciPy is unavailable
a pure-Python dual-feasible bound is used instead (weaker, but still a valid
upper bound on OPT by LP duality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.set_system import ElementId, SetId, SetSystem
from repro.exceptions import SolverError

__all__ = ["LpBound", "lp_relaxation_bound", "dual_feasible_bound"]

try:  # pragma: no cover - exercised indirectly depending on environment
    from scipy.optimize import linprog as _linprog
    from scipy.sparse import lil_matrix as _lil_matrix

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _linprog = None
    _lil_matrix = None
    _HAVE_SCIPY = False


@dataclass(frozen=True)
class LpBound:
    """An upper bound on the offline optimum."""

    value: float
    method: str
    fractional_solution: Optional[Dict[SetId, float]] = None

    def __repr__(self) -> str:
        return f"LpBound(value={self.value:.4f}, method={self.method!r})"


def dual_feasible_bound(system: SetSystem) -> LpBound:
    """A pure-Python upper bound on OPT via an explicit dual-feasible solution.

    The LP dual asks for element prices ``y_u ≥ 0`` with
    ``sum_{u in S} y_u ≥ w(S)`` for every set; the bound is
    ``sum_u b(u) * y_u``.  Pricing every element of ``S`` at
    ``max_{S' ∋ u} w(S')/|S'|`` is dual feasible, because the elements of
    ``S`` each contribute at least ``w(S)/|S|``.
    """
    prices: Dict[ElementId, float] = {element: 0.0 for element in system.element_ids}
    for set_id in system.set_ids:
        size = system.size(set_id)
        if size == 0:
            continue
        share = system.weight(set_id) / size
        for element in system.members(set_id):
            if share > prices[element]:
                prices[element] = share
    # Sets with no elements are automatically "complete" and must be paid for
    # separately — the dual constraint for an empty set is w(S) <= 0, which a
    # finite price vector cannot satisfy, so add their weight explicitly.
    empty_weight = sum(
        system.weight(set_id) for set_id in system.set_ids if system.size(set_id) == 0
    )
    value = empty_weight + sum(
        system.capacity(element) * price for element, price in prices.items()
    )
    return LpBound(value=value, method="dual-feasible")


def lp_relaxation_bound(system: SetSystem, prefer_scipy: bool = True) -> LpBound:
    """The LP-relaxation upper bound on the offline optimum.

    Uses SciPy's HiGHS solver when available (and ``prefer_scipy`` is left
    on); otherwise falls back to :func:`dual_feasible_bound`.
    """
    if system.num_sets == 0:
        return LpBound(value=0.0, method="empty")
    if not (prefer_scipy and _HAVE_SCIPY):
        return dual_feasible_bound(system)

    set_ids: List[SetId] = list(system.set_ids)
    element_ids: List[ElementId] = list(system.element_ids)
    set_index = {set_id: index for index, set_id in enumerate(set_ids)}

    objective = [-system.weight(set_id) for set_id in set_ids]

    if element_ids:
        constraint = _lil_matrix((len(element_ids), len(set_ids)))
        for row, element in enumerate(element_ids):
            for set_id in system.parents(element):
                constraint[row, set_index[set_id]] = 1.0
        upper = [float(system.capacity(element)) for element in element_ids]
        result = _linprog(
            objective,
            A_ub=constraint.tocsr(),
            b_ub=upper,
            bounds=[(0.0, 1.0)] * len(set_ids),
            method="highs",
        )
    else:
        result = _linprog(
            objective, bounds=[(0.0, 1.0)] * len(set_ids), method="highs"
        )

    if not result.success:  # pragma: no cover - HiGHS failures are unexpected
        raise SolverError(f"LP relaxation failed: {result.message}")

    fractional = {set_id: float(result.x[set_index[set_id]]) for set_id in set_ids}
    return LpBound(value=-float(result.fun), method="scipy-highs", fractional_solution=fractional)
