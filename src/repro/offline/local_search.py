"""Local-search improvement for offline set packing.

Starting from any feasible packing (typically the greedy one), repeatedly
apply improving moves:

* *add*: insert a set that still fits;
* *swap 1-for-1*: replace a chosen set with a heavier non-chosen set that fits
  after the removal;
* *swap 1-for-2*: replace a chosen set with two non-chosen sets of larger
  combined weight.

These are the standard moves behind the ``(k+1)/2`` style approximation
guarantees cited in the paper's related work; in this library local search
serves as a strong offline heuristic when the exact solver is too slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.set_system import ElementId, SetId, SetSystem
from repro.exceptions import SolverError
from repro.offline.greedy_offline import greedy_offline_packing

__all__ = ["LocalSearchSolution", "local_search_packing"]


@dataclass(frozen=True)
class LocalSearchSolution:
    """A locally optimal packing together with search statistics."""

    chosen_sets: FrozenSet[SetId]
    weight: float
    iterations: int
    improved_from: float

    @property
    def num_sets(self) -> int:
        """The number of sets in the packing."""
        return len(self.chosen_sets)


class _PackingState:
    """Mutable feasibility bookkeeping for local-search moves."""

    def __init__(self, system: SetSystem, chosen: Iterable[SetId]) -> None:
        self.system = system
        self.chosen: Set[SetId] = set()
        self.usage: Dict[ElementId, int] = {
            element: 0 for element in system.element_ids
        }
        self.weight = 0.0
        for set_id in chosen:
            if not self.fits(set_id):
                raise SolverError("initial packing for local search is infeasible")
            self.add(set_id)

    def fits(self, set_id: SetId, ignoring: Tuple[SetId, ...] = ()) -> bool:
        """Whether ``set_id`` fits if the sets in ``ignoring`` were removed."""
        released: Dict[ElementId, int] = {}
        for other in ignoring:
            for element in self.system.members(other):
                released[element] = released.get(element, 0) + 1
        for element in self.system.members(set_id):
            used = self.usage[element] - released.get(element, 0)
            if used + 1 > self.system.capacity(element):
                return False
        return True

    def add(self, set_id: SetId) -> None:
        self.chosen.add(set_id)
        self.weight += self.system.weight(set_id)
        for element in self.system.members(set_id):
            self.usage[element] += 1

    def remove(self, set_id: SetId) -> None:
        self.chosen.discard(set_id)
        self.weight -= self.system.weight(set_id)
        for element in self.system.members(set_id):
            self.usage[element] -= 1


def local_search_packing(
    system: SetSystem,
    initial: Optional[Iterable[SetId]] = None,
    max_iterations: int = 10_000,
) -> LocalSearchSolution:
    """Improve a packing by add / swap(1,1) / swap(1,2) moves until no move helps."""
    if initial is None:
        start = greedy_offline_packing(system).chosen_sets
    else:
        start = frozenset(initial)
    state = _PackingState(system, start)
    initial_weight = state.weight

    outside: List[SetId] = [
        set_id for set_id in system.set_ids if set_id not in state.chosen
    ]
    iterations = 0
    improved = True
    while improved and iterations < max_iterations:
        improved = False
        iterations += 1

        # Add moves.
        for set_id in list(outside):
            if state.fits(set_id):
                state.add(set_id)
                outside.remove(set_id)
                improved = True

        if improved:
            continue

        # Swap 1-for-1 and 1-for-2 moves.
        for removed in sorted(state.chosen, key=repr):
            removed_weight = system.weight(removed)
            candidates = [
                set_id for set_id in outside if state.fits(set_id, ignoring=(removed,))
            ]
            # 1-for-1.
            best_single = None
            for candidate in candidates:
                if system.weight(candidate) > removed_weight + 1e-12:
                    if best_single is None or system.weight(candidate) > system.weight(best_single):
                        best_single = candidate
            if best_single is not None:
                state.remove(removed)
                state.add(best_single)
                outside.remove(best_single)
                outside.append(removed)
                improved = True
                break
            # 1-for-2: try pairs of candidates that are mutually compatible.
            found_pair = None
            for first_index in range(len(candidates)):
                first = candidates[first_index]
                for second in candidates[first_index + 1:]:
                    combined = system.weight(first) + system.weight(second)
                    if combined <= removed_weight + 1e-12:
                        continue
                    # Check joint feasibility after removing ``removed``.
                    state.remove(removed)
                    if state.fits(first):
                        state.add(first)
                        if state.fits(second):
                            found_pair = (first, second)
                            state.remove(first)
                            state.add(removed)
                            break
                        state.remove(first)
                    state.add(removed)
                if found_pair:
                    break
            if found_pair:
                first, second = found_pair
                state.remove(removed)
                state.add(first)
                state.add(second)
                outside.remove(first)
                outside.remove(second)
                outside.append(removed)
                improved = True
                break

    return LocalSearchSolution(
        chosen_sets=frozenset(state.chosen),
        weight=state.weight,
        iterations=iterations,
        improved_from=initial_weight,
    )
