"""Offline solvers: exact branch and bound, LP relaxation, greedy, local search."""

from repro.offline.exact import ExactSolution, solve_exact
from repro.offline.greedy_offline import (
    GreedySolution,
    greedy_density_packing,
    greedy_offline_packing,
)
from repro.offline.local_search import LocalSearchSolution, local_search_packing
from repro.offline.lp import LpBound, dual_feasible_bound, lp_relaxation_bound

__all__ = [
    "ExactSolution",
    "solve_exact",
    "GreedySolution",
    "greedy_density_packing",
    "greedy_offline_packing",
    "LocalSearchSolution",
    "local_search_packing",
    "LpBound",
    "dual_feasible_bound",
    "lp_relaxation_bound",
]
