"""Offline greedy set packing (the classical k-approximation) and variants.

Greedy picks sets one at a time in a fixed priority order and keeps a set if
it fits within the remaining element capacities.  Sorting by weight gives the
classical factor-``k`` approximation for unweighted inputs mentioned in the
paper's related-work discussion; sorting by weight-per-element ("density")
is a common practical improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

from repro.core.set_system import ElementId, SetId, SetSystem

__all__ = ["GreedySolution", "greedy_offline_packing", "greedy_density_packing"]


@dataclass(frozen=True)
class GreedySolution:
    """A feasible packing produced by an offline greedy rule."""

    chosen_sets: FrozenSet[SetId]
    weight: float
    order_used: str

    @property
    def num_sets(self) -> int:
        """The number of sets in the packing."""
        return len(self.chosen_sets)


def _greedy(system: SetSystem, ordered: Iterable[SetId], label: str) -> GreedySolution:
    usage: Dict[ElementId, int] = {element: 0 for element in system.element_ids}
    chosen: List[SetId] = []
    total = 0.0
    for set_id in ordered:
        members = system.members(set_id)
        if all(usage[element] + 1 <= system.capacity(element) for element in members):
            for element in members:
                usage[element] += 1
            chosen.append(set_id)
            total += system.weight(set_id)
    return GreedySolution(chosen_sets=frozenset(chosen), weight=total, order_used=label)


def greedy_offline_packing(system: SetSystem) -> GreedySolution:
    """Greedy by non-increasing weight (ties: smaller sets first, then id)."""
    ordered = sorted(
        system.set_ids,
        key=lambda set_id: (-system.weight(set_id), system.size(set_id), repr(set_id)),
    )
    return _greedy(system, ordered, "weight")


def greedy_density_packing(system: SetSystem) -> GreedySolution:
    """Greedy by non-increasing weight per element (``w(S)/|S|``).

    Empty sets are taken first (they cost nothing and always fit).
    """
    def density(set_id: SetId) -> float:
        size = system.size(set_id)
        if size == 0:
            return float("inf")
        return system.weight(set_id) / size

    ordered = sorted(
        system.set_ids,
        key=lambda set_id: (-density(set_id), system.size(set_id), repr(set_id)),
    )
    return _greedy(system, ordered, "density")
