"""Uniform-parameter workloads for the specialized bounds (Theorems 5, 6, Cor. 7).

* :func:`uniform_set_size_instance` — every set has exactly ``k`` elements
  (Theorem 5's precondition).
* :func:`uniform_load_instance` — every element is contained in exactly
  ``sigma`` sets (Theorem 6's precondition); set sizes vary.
* :func:`uniform_both_instance` — every set has size ``k`` *and* every element
  has load ``sigma`` (Corollary 7's precondition).  Built from a deterministic
  biregular bipartite construction and then randomly relabelled, so instances
  are random but the degree constraints are exact.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.instance import OnlineInstance
from repro.core.set_system import SetSystem
from repro.exceptions import OspError

__all__ = [
    "uniform_set_size_instance",
    "uniform_load_instance",
    "uniform_both_instance",
]


def _random_biregular_assignment(
    labels: List[str],
    set_size: int,
    load: int,
    num_elements: int,
    rng: random.Random,
    max_repair_passes: int = 200,
):
    """Configuration-model matching with swap repair; ``None`` if it fails.

    Returns a mapping ``element -> list of load distinct set labels`` such
    that every label occurs exactly ``set_size`` times overall.
    """
    stubs = [label for label in labels for _ in range(set_size)]
    rng.shuffle(stubs)
    groups = [stubs[index * load:(index + 1) * load] for index in range(num_elements)]

    def duplicated_indices():
        return [index for index, group in enumerate(groups) if len(set(group)) < len(group)]

    for _ in range(max_repair_passes):
        broken = duplicated_indices()
        if not broken:
            return {f"u{index}": list(group) for index, group in enumerate(groups)}
        for index in broken:
            group = groups[index]
            seen = set()
            for position, label in enumerate(group):
                if label in seen:
                    # Swap this stub with a random stub of another element.
                    other_index = rng.randrange(num_elements)
                    other_position = rng.randrange(load)
                    group[position], groups[other_index][other_position] = (
                        groups[other_index][other_position],
                        group[position],
                    )
                else:
                    seen.add(label)
    return None


def uniform_set_size_instance(
    num_sets: int,
    num_elements: int,
    set_size: int,
    rng: random.Random,
    name: str = "",
) -> OnlineInstance:
    """All sets have exactly ``set_size`` elements; loads are whatever falls out.

    >>> import random
    >>> instance = uniform_set_size_instance(6, 12, 3, random.Random(0))
    >>> {instance.system.size(set_id) for set_id in instance.system.set_ids}
    {3}
    >>> instance.name
    'uniform-k3'
    """
    if set_size < 1 or set_size > num_elements:
        raise OspError(
            f"set size must be in [1, {num_elements}], got {set_size}"
        )
    sets: Dict[str, List[str]] = {}
    for index in range(num_sets):
        members = rng.sample(range(num_elements), set_size)
        sets[f"S{index}"] = [f"u{member}" for member in members]
    used = {element for members in sets.values() for element in members}
    system = SetSystem(sets, capacities={element: 1 for element in used})
    order = list(system.element_ids)
    rng.shuffle(order)
    return OnlineInstance(system, order, name=name or f"uniform-k{set_size}")


def uniform_load_instance(
    num_sets: int,
    num_elements: int,
    load: int,
    rng: random.Random,
    name: str = "",
) -> OnlineInstance:
    """All elements have exactly ``load`` parent sets; set sizes vary.

    Built element-first: each element independently picks ``load`` distinct
    sets.  Sets that end up empty are dropped so that every remaining set is
    completable.

    >>> import random
    >>> instance = uniform_load_instance(8, 12, 3, random.Random(1))
    >>> {len(instance.system.parents(u)) for u in instance.system.element_ids}
    {3}
    """
    if load < 1 or load > num_sets:
        raise OspError(f"load must be in [1, {num_sets}], got {load}")
    element_parents: Dict[str, List[str]] = {}
    for index in range(num_elements):
        parents = rng.sample(range(num_sets), load)
        element_parents[f"u{index}"] = [f"S{parent}" for parent in parents]

    sets: Dict[str, List[str]] = {}
    for element, parents in element_parents.items():
        for set_id in parents:
            sets.setdefault(set_id, []).append(element)
    system = SetSystem(sets, capacities={element: 1 for element in element_parents})
    order = list(system.element_ids)
    rng.shuffle(order)
    return OnlineInstance(system, order, name=name or f"uniform-load{load}")


def uniform_both_instance(
    num_sets: int,
    set_size: int,
    load: int,
    rng: random.Random,
    name: str = "",
) -> OnlineInstance:
    """Every set has size ``k = set_size`` and every element has load ``sigma = load``.

    Requires ``num_sets * set_size`` to be divisible by ``load`` (the number of
    elements is ``num_sets * set_size / load``) and ``load <= num_sets``.  The
    construction is a random biregular bipartite graph built with the
    configuration model (each set contributes ``set_size`` stubs, each element
    consumes ``load`` stubs) followed by swap repairs that remove duplicate
    (set, element) incidences, so the degree constraints are exact while the
    overlap structure is random.  A deterministic cyclic assignment is the
    fallback if the repair loop fails to converge.

    >>> import random
    >>> instance = uniform_both_instance(6, 3, 3, random.Random(2))
    >>> {instance.system.size(set_id) for set_id in instance.system.set_ids}
    {3}
    >>> instance.num_steps        # num_sets * set_size / load elements
    6
    >>> {len(instance.system.parents(u)) for u in instance.system.element_ids}
    {3}
    """
    if set_size < 1:
        raise OspError(f"set size must be positive, got {set_size}")
    if load < 1 or load > num_sets:
        raise OspError(f"load must be in [1, {num_sets}], got {load}")
    total_incidences = num_sets * set_size
    if total_incidences % load != 0:
        raise OspError(
            f"num_sets * set_size ({total_incidences}) must be divisible by load ({load})"
        )
    num_elements = total_incidences // load

    labels = [f"S{index}" for index in range(num_sets)]
    rng.shuffle(labels)

    element_parents = _random_biregular_assignment(
        labels, set_size, load, num_elements, rng
    )
    if element_parents is None:
        # Deterministic fallback: list the sets cyclically and hand each
        # element the next ``load`` distinct sets in the cycle.
        element_parents = {}
        position = 0
        for index in range(num_elements):
            parents = [labels[(position + offset) % num_sets] for offset in range(load)]
            element_parents[f"u{index}"] = parents
            position = (position + load) % num_sets

    sets: Dict[str, List[str]] = {label: [] for label in labels}
    for element, parents in element_parents.items():
        for set_id in parents:
            sets[set_id].append(element)

    system = SetSystem(sets, capacities={element: 1 for element in element_parents})
    order = list(system.element_ids)
    rng.shuffle(order)
    return OnlineInstance(
        system, order, name=name or f"uniform-k{set_size}-load{load}"
    )
