"""Adversarial workloads: worst-case traffic cast as OSP instances.

The network layer's :class:`~repro.network.traffic.AdversarialBurstGenerator`
produces the synchronized-burst traces the paper's bounds are written for;
this module exposes that construction at the workload layer, as a plain
:class:`~repro.core.instance.OnlineInstance` factory matching the other
workload families — which is what lets the battle harness
(:mod:`repro.battles`) escalate burst size and wave count like any other
instance parameter.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.instance import OnlineInstance
from repro.network.traffic import AdversarialBurstGenerator

__all__ = ["adversarial_burst_instance"]


def adversarial_burst_instance(
    burst_size: int,
    packets_per_frame: int,
    num_waves: int,
    gap_slots: int = 0,
    link_capacity: int = 1,
    rng: Optional[random.Random] = None,
    name: str = "",
) -> OnlineInstance:
    """An OSP instance of ``num_waves`` synchronized bursts of ``burst_size`` frames.

    Every wave is ``burst_size`` perfectly aligned frames of
    ``packets_per_frame`` packets at a capacity-``link_capacity`` link, so
    each of the wave's slots is a burst of load ``burst_size`` — the regime
    where the competitive bounds bite.  OPT completes ``link_capacity``
    frames per wave; an online algorithm must commit before seeing the
    collision resolve.  The construction is deterministic; ``rng`` is
    accepted (and ignored) so the factory slots into the sweep/battle
    ``(label, factory)`` convention unchanged.

    >>> instance = adversarial_burst_instance(3, 2, 2)
    >>> instance.system.num_sets          # burst_size * num_waves frames
    6
    >>> instance.num_steps                # packets_per_frame slots per wave
    4
    >>> from repro.core import compute_statistics
    >>> compute_statistics(instance.system).sigma_max     # the burst size
    3
    >>> instance.name
    'adversarial-burst(sigma=3,k=2,waves=2)'
    """
    generator = AdversarialBurstGenerator(
        burst_size=burst_size,
        packets_per_frame=packets_per_frame,
        link_capacity=link_capacity,
        gap_slots=gap_slots,
    )
    trace = generator.generate(num_waves, rng)
    return trace.to_instance(
        name=name
        or f"adversarial-burst(sigma={burst_size},k={packets_per_frame},waves={num_waves})"
    )
