"""Workload generators for the general packing extension (open problem 1)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.core.general_packing import GeneralPackingBuilder, GeneralPackingInstance
from repro.exceptions import OspError

__all__ = ["random_general_packing_instance", "bandwidth_reservation_instance"]


def random_general_packing_instance(
    num_sets: int,
    num_resources: int,
    resources_per_set: Tuple[int, int],
    demand_range: Tuple[int, int],
    capacity_range: Tuple[int, int],
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 1.0),
    name: str = "",
) -> GeneralPackingInstance:
    """A random general packing instance.

    Each set demands a random number of resources (``resources_per_set``),
    with an integer demand drawn from ``demand_range`` on each; each resource
    has a capacity drawn from ``capacity_range``.

    >>> import random
    >>> general = random_general_packing_instance(
    ...     5, 6, (2, 3), (1, 2), (1, 3), random.Random(4))
    >>> general.num_sets
    5
    >>> sorted(general.set_ids)
    ['S0', 'S1', 'S2', 'S3', 'S4']
    """
    if num_sets < 1 or num_resources < 1:
        raise OspError("need at least one set and one resource")
    low_r, high_r = resources_per_set
    if low_r < 1 or high_r < low_r or high_r > num_resources:
        raise OspError(f"invalid resources-per-set range {resources_per_set}")
    low_d, high_d = demand_range
    if low_d < 1 or high_d < low_d:
        raise OspError(f"invalid demand range {demand_range}")
    low_c, high_c = capacity_range
    if low_c < 1 or high_c < low_c:
        raise OspError(f"invalid capacity range {capacity_range}")

    builder = GeneralPackingBuilder(name=name or "random-general")
    demands_by_resource = [dict() for _ in range(num_resources)]
    for index in range(num_sets):
        set_id = f"S{index}"
        w_low, w_high = weight_range
        builder.declare_set(
            set_id, w_low if w_low == w_high else rng.uniform(w_low, w_high)
        )
        count = rng.randint(low_r, high_r)
        for resource in rng.sample(range(num_resources), count):
            demands_by_resource[resource][set_id] = rng.randint(low_d, high_d)
    for resource in range(num_resources):
        if not demands_by_resource[resource]:
            continue
        builder.add_resource(
            demands_by_resource[resource],
            capacity=rng.randint(low_c, high_c),
            element_id=f"r{resource}",
        )
    return builder.build()


def bandwidth_reservation_instance(
    num_flows: int,
    num_links: int,
    path_length: int,
    link_capacity: int,
    rng: random.Random,
    bandwidth_range: Tuple[int, int] = (1, 3),
    name: str = "",
) -> GeneralPackingInstance:
    """A bandwidth-reservation workload: flows demand bandwidth on link paths.

    Each flow (set) picks a contiguous run of ``path_length`` links on a line
    and demands the same integer bandwidth on every link of its path; each
    link (resource) offers ``link_capacity`` units.  A flow is admitted end to
    end only if it receives its bandwidth on *every* link — a natural
    integer-demand generalization of the paper's multi-hop scenario.

    >>> import random
    >>> flows = bandwidth_reservation_instance(4, 6, 2, 2, random.Random(5))
    >>> flows.num_sets
    4
    >>> sorted(flows.set_ids)
    ['flow0', 'flow1', 'flow2', 'flow3']
    """
    if num_flows < 1 or num_links < 1:
        raise OspError("need at least one flow and one link")
    if path_length < 1 or path_length > num_links:
        raise OspError(f"path length must be in [1, {num_links}], got {path_length}")
    if link_capacity < 1:
        raise OspError(f"link capacity must be positive, got {link_capacity}")
    low_b, high_b = bandwidth_range
    if low_b < 1 or high_b < low_b:
        raise OspError(f"invalid bandwidth range {bandwidth_range}")

    builder = GeneralPackingBuilder(name=name or "bandwidth-reservation")
    demands_by_link = [dict() for _ in range(num_links)]
    for index in range(num_flows):
        flow_id = f"flow{index}"
        bandwidth = rng.randint(low_b, high_b)
        builder.declare_set(flow_id, weight=float(bandwidth * path_length))
        start = rng.randint(0, num_links - path_length)
        for link in range(start, start + path_length):
            demands_by_link[link][flow_id] = bandwidth
    for link in range(num_links):
        if not demands_by_link[link]:
            continue
        builder.add_resource(
            demands_by_link[link], capacity=link_capacity, element_id=f"link{link}"
        )
    return builder.build()
