"""Video-streaming workloads: synthetic traces packaged as OSP instances.

The paper motivates OSP with video frame fragmentation but evaluates nothing
empirically; this module is the reproduction's stand-in for "real" video
traffic (see the substitution note in DESIGN.md).  It wraps the synthetic
generators of :mod:`repro.network.traffic` and returns both the packet-level
trace (for the router and buffered-link simulators) and the reduced OSP
instance (for the algorithm/bound machinery), plus the frame metadata the
metrics need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.instance import OnlineInstance
from repro.network.packet import Frame
from repro.network.traffic import Trace, VideoTraceGenerator

__all__ = ["VideoWorkload", "make_video_workload"]


@dataclass(frozen=True)
class VideoWorkload:
    """A synthetic video workload in both packet-level and OSP form.

    >>> workload = make_video_workload(2, 3, seed=7)
    >>> workload.num_flows, workload.num_frames
    (2, 6)
    >>> workload.max_burst >= 1
    True
    """

    trace: Trace
    instance: OnlineInstance
    frames: Dict[str, Frame]
    num_flows: int
    link_capacity: int

    @property
    def num_frames(self) -> int:
        """The number of video frames offered to the bottleneck."""
        return len(self.frames)

    @property
    def max_burst(self) -> int:
        """The worst-case burst size (``σ_max`` of the reduced instance, roughly)."""
        return self.trace.max_burst()


def make_video_workload(
    num_flows: int,
    frames_per_flow: int,
    seed: int,
    link_capacity: int = 1,
    frame_interval_slots: int = 3,
    gop_pattern: Optional[str] = None,
    mean_sizes_bytes: Optional[Dict[str, float]] = None,
) -> VideoWorkload:
    """Generate a reproducible synthetic video workload.

    The defaults give a moderately overloaded bottleneck: several flows whose
    large I-frames fragment into multi-packet sets that collide in bursts
    exceeding the link capacity — the regime the paper's algorithm targets.

    >>> workload = make_video_workload(2, 3, seed=7)
    >>> workload.instance.name
    'video(flows=2,seed=7)'
    >>> make_video_workload(2, 3, seed=7).instance.arrival_order == \
        workload.instance.arrival_order
    True
    """
    rng = random.Random(seed)
    generator = VideoTraceGenerator(
        num_flows=num_flows,
        frame_interval_slots=frame_interval_slots,
        link_capacity=link_capacity,
        **({"gop_pattern": gop_pattern} if gop_pattern else {}),
        **({"mean_sizes_bytes": mean_sizes_bytes} if mean_sizes_bytes else {}),
    )
    trace = generator.generate(frames_per_flow, rng)
    instance = trace.to_instance(name=f"video(flows={num_flows},seed={seed})")
    return VideoWorkload(
        trace=trace,
        instance=instance,
        frames=dict(trace.frames),
        num_flows=num_flows,
        link_capacity=link_capacity,
    )
