"""Random set-system generators used by tests and benchmarks.

These produce the "typical case" workloads for the upper-bound experiments:
weighted or unweighted set systems with controllable set sizes, element
loads and capacities.  All generators are deterministic given their RNG.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.instance import OnlineInstance
from repro.core.set_system import SetSystem
from repro.exceptions import OspError

__all__ = [
    "random_set_system",
    "random_online_instance",
    "random_variable_capacity_instance",
    "random_weighted_instance",
]


def random_set_system(
    num_sets: int,
    num_elements: int,
    set_size_range: Tuple[int, int],
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 1.0),
    capacity_range: Tuple[int, int] = (1, 1),
) -> SetSystem:
    """A random set system: each set picks a random number of random elements.

    Elements that end up in no set are dropped (they would be irrelevant to
    both the algorithms and the bounds).

    >>> import random
    >>> system = random_set_system(5, 8, (2, 3), random.Random(0))
    >>> system.num_sets
    5
    >>> all(2 <= system.size(set_id) <= 3 for set_id in system.set_ids)
    True
    >>> system.is_unit_capacity()    # the default capacity range is (1, 1)
    True
    """
    if num_sets < 1 or num_elements < 1:
        raise OspError("need at least one set and one element")
    low, high = set_size_range
    if low < 1 or high < low or high > num_elements:
        raise OspError(
            f"invalid set size range {set_size_range} for {num_elements} elements"
        )

    sets: Dict[str, List[str]] = {}
    weights: Dict[str, float] = {}
    for index in range(num_sets):
        size = rng.randint(low, high)
        members = rng.sample(range(num_elements), size)
        set_id = f"S{index}"
        sets[set_id] = [f"u{member}" for member in members]
        w_low, w_high = weight_range
        weights[set_id] = w_low if w_low == w_high else rng.uniform(w_low, w_high)

    used_elements = {element for members in sets.values() for element in members}
    c_low, c_high = capacity_range
    if c_low < 1 or c_high < c_low:
        raise OspError(f"invalid capacity range {capacity_range}")
    capacities = {
        element: (c_low if c_low == c_high else rng.randint(c_low, c_high))
        for element in used_elements
    }
    return SetSystem(sets, weights=weights, capacities=capacities)


def random_online_instance(
    num_sets: int,
    num_elements: int,
    set_size_range: Tuple[int, int],
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 1.0),
    capacity_range: Tuple[int, int] = (1, 1),
    name: str = "",
) -> OnlineInstance:
    """A random instance with a uniformly random arrival order.

    Deterministic given the RNG: the same seed reproduces both the system
    and the arrival order.

    >>> import random
    >>> instance = random_online_instance(6, 10, (2, 3), random.Random(1), name="demo")
    >>> instance.name
    'demo'
    >>> replay = random_online_instance(6, 10, (2, 3), random.Random(1), name="demo")
    >>> replay.arrival_order == instance.arrival_order
    True
    """
    system = random_set_system(
        num_sets,
        num_elements,
        set_size_range,
        rng,
        weight_range=weight_range,
        capacity_range=capacity_range,
    )
    order = list(system.element_ids)
    rng.shuffle(order)
    return OnlineInstance(system, order, name=name or "random")


def random_weighted_instance(
    num_sets: int,
    num_elements: int,
    set_size_range: Tuple[int, int],
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    name: str = "",
) -> OnlineInstance:
    """Shorthand for a weighted unit-capacity random instance.

    >>> import random
    >>> instance = random_weighted_instance(
    ...     5, 9, (2, 3), random.Random(2), weight_range=(1.0, 6.0))
    >>> all(1.0 <= instance.system.weight(s) <= 6.0
    ...     for s in instance.system.set_ids)
    True
    >>> instance.system.is_unit_capacity()
    True
    """
    return random_online_instance(
        num_sets,
        num_elements,
        set_size_range,
        rng,
        weight_range=weight_range,
        capacity_range=(1, 1),
        name=name or "random-weighted",
    )


def random_variable_capacity_instance(
    num_sets: int,
    num_elements: int,
    set_size_range: Tuple[int, int],
    capacity_range: Tuple[int, int],
    rng: random.Random,
    weight_range: Tuple[float, float] = (1.0, 1.0),
    name: str = "",
) -> OnlineInstance:
    """Shorthand for a variable-capacity random instance (for Theorem 4).

    >>> import random
    >>> instance = random_variable_capacity_instance(
    ...     5, 9, (2, 3), (1, 3), random.Random(3))
    >>> all(1 <= instance.system.capacity(u) <= 3
    ...     for u in instance.system.element_ids)
    True
    """
    if capacity_range[0] < 1:
        raise OspError("capacities must be at least 1")
    return random_online_instance(
        num_sets,
        num_elements,
        set_size_range,
        rng,
        weight_range=weight_range,
        capacity_range=capacity_range,
        name=name or "random-variable-capacity",
    )
