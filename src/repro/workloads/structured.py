"""Structured workloads built from combinatorial designs.

These are deterministic, extremal instances that complement the random
families:

* :func:`full_gadget_instance` — all ``M * N`` sets of an (M, N)-gadget with
  both slope and row lines: any two sets intersect, so OPT completes exactly
  one set.  A stress test where every algorithm's benefit is at most 1.
* :func:`disjoint_blocks_instance` — a union of independent "waves" of fully
  overlapping sets: OPT completes one set per block, and randPr's expected
  benefit has a simple closed form that tests verify.
* :func:`t_design_style_instance` — the weaker ``Ω(σ/log σ)`` lower-bound
  construction sketched at the start of Section 4.2 (the ``t × t`` grid of
  sets probed by row elements and then by random transversal elements).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.instance import InstanceBuilder, OnlineInstance
from repro.exceptions import OspError
from repro.lowerbounds.gadget import Gadget, apply_gadget

__all__ = [
    "full_gadget_instance",
    "disjoint_blocks_instance",
    "t_design_style_instance",
]


def full_gadget_instance(
    num_rows: int, num_columns: int, name: str = ""
) -> OnlineInstance:
    """All sets of an (M, N)-gadget, with slope and row lines as elements.

    By Lemma 8 any feasible solution contains at most one set, making this
    the canonical "everything conflicts" instance.

    >>> instance = full_gadget_instance(2, 3)
    >>> instance.system.num_sets       # all M * N gadget sets
    6
    >>> instance.name
    'full-gadget(2,3)'
    """
    gadget = Gadget(num_rows, num_columns)
    builder = InstanceBuilder(name=name or f"full-gadget({num_rows},{num_columns})")
    placement = {}
    for row, column in gadget.items():
        set_id = f"S{row}_{column}"
        builder.declare_set(set_id, 1.0)
        placement[(row, column)] = set_id
    apply_gadget(builder, gadget, placement, include_rows=True, element_prefix="G")
    return builder.build()


def disjoint_blocks_instance(
    num_blocks: int,
    sets_per_block: int,
    elements_per_block: int,
    name: str = "",
) -> OnlineInstance:
    """``num_blocks`` independent blocks of fully overlapping sets.

    Within a block, every element is contained in every set of the block, so
    exactly one set per block can be completed; across blocks there is no
    interaction.  OPT therefore equals ``num_blocks``, and on this instance
    randPr completes exactly one set per block with probability 1 (all the
    block's elements agree on the block's maximum-priority set).

    >>> instance = disjoint_blocks_instance(4, 3, 5)
    >>> instance.system.num_sets, instance.num_steps
    (12, 20)
    >>> from repro.core import simulate_batch
    >>> simulate_batch(instance, "randPr", trials=5, seed=0).mean_completed
    4.0
    """
    if num_blocks < 1 or sets_per_block < 1 or elements_per_block < 1:
        raise OspError("blocks, sets per block and elements per block must be positive")
    builder = InstanceBuilder(name=name or f"blocks({num_blocks}x{sets_per_block})")
    for block in range(num_blocks):
        block_sets = [f"B{block}.S{index}" for index in range(sets_per_block)]
        for set_id in block_sets:
            builder.declare_set(set_id, 1.0)
        for element_index in range(elements_per_block):
            builder.add_element(
                block_sets, capacity=1, element_id=f"B{block}.e{element_index}"
            )
    return builder.build()


def t_design_style_instance(
    t: int,
    rng: random.Random,
    name: str = "",
) -> OnlineInstance:
    """The warm-up lower-bound construction from the beginning of Section 4.2.

    ``t^2`` sets ``S_{i,j}`` are first probed by ``t`` row elements
    (``u_i ∈ S_{i,j}`` for all ``j``), then by ``t^2`` random transversal
    elements, each of which hits at most one set per row and per column.  The
    transversals are sampled as random permutation diagonals, so every element
    has load ``t`` and the paper's intersection condition (``i ≠ i'`` and
    ``j ≠ j'`` for any two sets sharing a transversal) holds by construction.
    OPT can complete a full column (``t`` sets); an online algorithm is left
    with roughly ``O(log t)`` of the sets it committed to.

    >>> import random
    >>> instance = t_design_style_instance(3, random.Random(0))
    >>> instance.system.num_sets, instance.num_steps    # t^2 sets, t + t^2 probes
    (9, 12)
    """
    if t < 2:
        raise OspError(f"the construction needs t >= 2, got {t}")
    builder = InstanceBuilder(name=name or f"t-design({t})")
    for i in range(t):
        for j in range(t):
            builder.declare_set(f"S{i}_{j}", 1.0)

    # Row elements: u_i belongs to S_{i,j} for every j.
    for i in range(t):
        builder.add_element(
            [f"S{i}_{j}" for j in range(t)], capacity=1, element_id=f"row{i}"
        )

    # Transversal elements: each is a random permutation diagonal, touching
    # one set per row with all-distinct columns.
    for index in range(t * t):
        permutation = list(range(t))
        rng.shuffle(permutation)
        parents = [f"S{i}_{permutation[i]}" for i in range(t)]
        builder.add_element(parents, capacity=1, element_id=f"diag{index}")

    return builder.build()
