"""Workload generators: random, uniform, structured, adversarial and video instances."""

from repro.workloads.adversarial import adversarial_burst_instance
from repro.workloads.general import (
    bandwidth_reservation_instance,
    random_general_packing_instance,
)
from repro.workloads.random_instances import (
    random_online_instance,
    random_set_system,
    random_variable_capacity_instance,
    random_weighted_instance,
)
from repro.workloads.structured import (
    disjoint_blocks_instance,
    full_gadget_instance,
    t_design_style_instance,
)
from repro.workloads.uniform import (
    uniform_both_instance,
    uniform_load_instance,
    uniform_set_size_instance,
)
from repro.workloads.video import VideoWorkload, make_video_workload

__all__ = [
    "adversarial_burst_instance",
    "bandwidth_reservation_instance",
    "random_general_packing_instance",
    "random_online_instance",
    "random_set_system",
    "random_variable_capacity_instance",
    "random_weighted_instance",
    "disjoint_blocks_instance",
    "full_gadget_instance",
    "t_design_style_instance",
    "uniform_both_instance",
    "uniform_load_instance",
    "uniform_set_size_instance",
    "VideoWorkload",
    "make_video_workload",
]
