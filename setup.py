"""Setuptools entry point (kept for environments without PEP 660 support)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Online Set Packing and Competitive Scheduling of Multi-Part Tasks "
        "(Emek et al., PODC 2010) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis", "scipy"]},
)
