"""Property-based tests for the analysis closed forms and the general packing extension."""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithms.general import GeneralGreedyWeightAlgorithm, GeneralRandPrAlgorithm
from repro.core import OnlineInstance, SetSystem
from repro.core.analysis import (
    benefit_variance_upper_bound,
    expected_benefit_closed_form,
    lemma5_lower_bound,
    survival_probabilities,
)
from repro.core.general_packing import (
    GeneralPackingBuilder,
    osp_instance_to_general,
    simulate_general,
    solve_general_exact,
)
from repro.experiments.confidence import bootstrap_mean_interval
from repro.offline import solve_exact


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def unit_capacity_systems(draw, max_sets=7, max_elements=9, min_set_size=0):
    num_sets = draw(st.integers(min_value=1, max_value=max_sets))
    num_elements = draw(st.integers(min_value=1, max_value=max_elements))
    elements = [f"u{i}" for i in range(num_elements)]
    sets = {}
    weights = {}
    for index in range(num_sets):
        size = draw(st.integers(min_value=min_set_size, max_value=num_elements))
        members = draw(
            st.lists(st.sampled_from(elements), min_size=size, max_size=size, unique=True)
        )
        sets[f"S{index}"] = members
        weights[f"S{index}"] = draw(st.floats(min_value=0.5, max_value=8.0, allow_nan=False))
    return SetSystem(sets, weights=weights)


@st.composite
def general_instances(draw, max_sets=6, max_resources=6):
    num_sets = draw(st.integers(min_value=1, max_value=max_sets))
    num_resources = draw(st.integers(min_value=1, max_value=max_resources))
    builder = GeneralPackingBuilder()
    for index in range(num_sets):
        builder.declare_set(
            f"S{index}", draw(st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
        )
    for resource in range(num_resources):
        demanders = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_sets - 1),
                min_size=0,
                max_size=num_sets,
                unique=True,
            )
        )
        if not demanders:
            continue
        demands = {
            f"S{index}": draw(st.integers(min_value=1, max_value=3)) for index in demanders
        }
        capacity = draw(st.integers(min_value=1, max_value=6))
        builder.add_resource(demands, capacity=capacity, element_id=f"r{resource}")
    return builder.build()


# ----------------------------------------------------------------------
# Analysis closed forms
# ----------------------------------------------------------------------
class TestAnalysisProperties:
    @given(unit_capacity_systems())
    @settings(max_examples=60, deadline=None)
    def test_survival_probabilities_are_probabilities(self, system):
        for value in survival_probabilities(system).values():
            assert 0.0 <= value <= 1.0

    @given(unit_capacity_systems(min_set_size=1))
    @settings(max_examples=60, deadline=None)
    def test_expected_benefit_between_lemma5_bound_and_opt_weight_total(self, system):
        # Lemma 5 assumes every set has at least one element (empty sets make
        # the n*mean(sigma*sigma$) denominator undercount w(N[S])).
        expected = expected_benefit_closed_form(system)
        assert expected <= system.total_weight() + 1e-9
        assert expected >= lemma5_lower_bound(system) - 1e-9

    @given(unit_capacity_systems())
    @settings(max_examples=40, deadline=None)
    def test_expected_benefit_never_exceeds_exact_opt(self, system):
        # E[w(alg)] <= w(opt) because alg's output is always a feasible packing.
        assert expected_benefit_closed_form(system) <= solve_exact(system).weight + 1e-9

    @given(unit_capacity_systems())
    @settings(max_examples=40, deadline=None)
    def test_variance_bound_nonnegative(self, system):
        assert benefit_variance_upper_bound(system) >= 0.0


# ----------------------------------------------------------------------
# Bootstrap
# ----------------------------------------------------------------------
class TestBootstrapProperties:
    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
                 max_size=40),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_brackets_the_sample_mean(self, samples, seed):
        interval = bootstrap_mean_interval(samples, seed=seed, resamples=200)
        mean = sum(samples) / len(samples)
        assert interval.low - 1e-9 <= mean <= interval.high + 1e-9
        assert interval.low <= interval.high


# ----------------------------------------------------------------------
# General packing
# ----------------------------------------------------------------------
class TestGeneralPackingProperties:
    @given(general_instances(), st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_online_results_feasible_and_bounded_by_exact(self, instance, seed):
        _, opt = solve_general_exact(instance)
        for algorithm in (GeneralRandPrAlgorithm(), GeneralGreedyWeightAlgorithm()):
            result = simulate_general(instance, algorithm, rng=random.Random(seed))
            assert instance.is_feasible(result.completed_sets)
            assert result.benefit <= opt + 1e-9

    @given(general_instances())
    @settings(max_examples=40, deadline=None)
    def test_exact_solution_feasible(self, instance):
        chosen, value = solve_general_exact(instance)
        assert instance.is_feasible(chosen)
        assert value >= -1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_osp_embedding_equivalence(self, seed):
        # For any random OSP instance and seed, simulating the OSP form and the
        # embedded general form with the same RNG completes the same sets.
        from repro.algorithms import RandPrAlgorithm
        from repro.core import simulate
        from repro.workloads import random_online_instance

        rng = random.Random(seed)
        instance = random_online_instance(10, 14, (1, 3), rng)
        general = osp_instance_to_general(instance)
        osp_result = simulate(instance, RandPrAlgorithm(), rng=random.Random(seed))
        general_result = simulate_general(
            general, GeneralRandPrAlgorithm(), rng=random.Random(seed)
        )
        assert {str(s) for s in osp_result.completed_sets} == set(
            general_result.completed_sets
        )
