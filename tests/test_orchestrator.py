"""Tests for the parallel sweep orchestrator and its supporting caches.

The contract under test: parallelism is a *wall-clock* knob, never a
numerics knob.  ``run_sweep`` must return bit-identical rows at workers
∈ {1, 2, 4}; trial chunking must concatenate to the identical benefit
sequence; worker crashes must surface the original exception; and the OPT /
compiled-instance caches must hit when (and only when) the content matches.
"""

import random

import pytest

from repro.algorithms import (
    GreedyWeightAlgorithm,
    RandPrAlgorithm,
    UniformRandomAlgorithm,
)
from repro.core import simulate_batch
from repro.core.algorithm import OnlineAlgorithm
from repro.engine import clear_compile_cache, compile_cache_stats
from repro.exceptions import AlgorithmProtocolError
from repro.experiments import (
    OptCache,
    estimate_opt,
    instance_seed,
    measure_ratio_with_confidence,
    measure_suite,
    partition_trials,
    run_sweep,
    stable_seed,
)
from repro.experiments.competitive_ratio import simulation_benefits
from repro.experiments.opt_cache import system_fingerprint
from repro.workloads import random_online_instance

WORKER_COUNTS = (1, 2, 4)


def _points():
    points = []
    for num_elements in (30, 20):
        def factory(rng, num_elements=num_elements):
            return random_online_instance(
                14, num_elements, (2, 3), rng, weight_range=(1.0, 5.0)
            )

        points.append((f"n={num_elements}", factory))
    return points


def _sweep(workers, engine="auto", algorithms=None):
    return run_sweep(
        "orchestrator-test",
        _points(),
        algorithms
        or [RandPrAlgorithm(), GreedyWeightAlgorithm(), UniformRandomAlgorithm()],
        instances_per_point=2,
        trials_per_instance=10,
        seed=5,
        engine=engine,
        workers=workers,
    )


class TestStableSeed:
    def test_pinned_values(self):
        # Frozen outputs: stable_seed is a cross-version determinism contract,
        # so any change to its encoding must fail this test loudly.
        assert stable_seed(0) == 668664208450035680
        assert stable_seed("sweep-instance", 0, 0, 0) == 5463517088171824964
        assert stable_seed(1, 2, 3) == 8898541379578239556

    def test_distinct_components_distinct_seeds(self):
        seeds = {
            stable_seed(seed, point, inst)
            for seed in range(3)
            for point in range(4)
            for inst in range(4)
        }
        assert len(seeds) == 3 * 4 * 4

    def test_type_tagging_separates_int_from_str(self):
        assert stable_seed(1) != stable_seed("1")

    def test_rejects_unhashable_components(self):
        with pytest.raises(TypeError):
            stable_seed(1.5)
        with pytest.raises(TypeError):
            stable_seed(True)

    def test_range(self):
        for value in (stable_seed(i) for i in range(50)):
            assert 0 <= value < 2**63

    def test_instance_seed_is_stable(self):
        assert instance_seed(5, 0, 0) == stable_seed("sweep-instance", 5, 0, 0)
        assert instance_seed(5, 0, 0) != instance_seed(5, 0, 1)
        assert instance_seed(5, 0, 0) != instance_seed(5, 1, 0)


class TestSerialParallelDifferential:
    def test_rows_bit_identical_across_worker_counts(self):
        baseline = _sweep(workers=1)
        for workers in WORKER_COUNTS[1:]:
            assert _sweep(workers=workers).rows == baseline.rows

    def test_rows_bit_identical_across_engines_and_workers(self):
        reference = _sweep(workers=1, engine="reference")
        for workers in WORKER_COUNTS:
            assert _sweep(workers=workers, engine="auto").rows == reference.rows

    def test_simulation_benefits_chunking_is_exact(self):
        instance = random_online_instance(
            16, 24, (2, 4), random.Random(2), weight_range=(1.0, 6.0)
        )
        for engine in ("reference", "auto"):
            serial = list(
                simulation_benefits(
                    instance, RandPrAlgorithm(), trials=23, seed=9, engine=engine
                )
            )
            for workers in (2, 3, 4):
                chunked = list(
                    simulation_benefits(
                        instance,
                        RandPrAlgorithm(),
                        trials=23,
                        seed=9,
                        engine=engine,
                        workers=workers,
                    )
                )
                assert chunked == serial  # float-exact, not approx

    def test_measure_suite_workers_identical(self):
        instance = random_online_instance(
            14, 20, (2, 3), random.Random(4), weight_range=(1.0, 5.0)
        )
        algorithms = [RandPrAlgorithm(), GreedyWeightAlgorithm()]
        serial = measure_suite(instance, algorithms, trials=8, seed=1, engine="auto")
        parallel = measure_suite(
            instance, algorithms, trials=8, seed=1, engine="auto", workers=2
        )
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name].mean_benefit == parallel[name].mean_benefit
            assert serial[name].std_benefit == parallel[name].std_benefit
            assert serial[name].ratio == parallel[name].ratio

    def test_measure_ratio_with_confidence_workers_identical(self):
        instance = random_online_instance(
            14, 20, (2, 3), random.Random(6), weight_range=(1.0, 5.0)
        )
        serial = measure_ratio_with_confidence(
            instance, RandPrAlgorithm(), trials=24, seed=3, engine="auto"
        )
        parallel = measure_ratio_with_confidence(
            instance, RandPrAlgorithm(), trials=24, seed=3, engine="auto", workers=3
        )
        assert serial.benefit == parallel.benefit
        assert serial.ratio == parallel.ratio


class _CrashingAlgorithm(OnlineAlgorithm):
    """Raises from decide(); top-level so worker processes can unpickle it."""

    name = "crasher"
    is_deterministic = True

    def decide(self, arrival):
        raise RuntimeError("intentional crash inside a worker")


class _ProtocolViolator(OnlineAlgorithm):
    """Returns a non-parent set, tripping the simulator's validation."""

    name = "violator"
    is_deterministic = True

    def decide(self, arrival):
        return frozenset({"not-a-parent"})


class TestWorkerErrorPropagation:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_crash_propagates_original_type(self, workers):
        with pytest.raises(RuntimeError, match="intentional crash"):
            _sweep(
                workers=workers,
                engine="reference",
                algorithms=[_CrashingAlgorithm()],
            )

    @pytest.mark.parametrize("workers", (1, 2))
    def test_protocol_violation_propagates(self, workers):
        with pytest.raises(AlgorithmProtocolError):
            _sweep(
                workers=workers,
                engine="reference",
                algorithms=[_ProtocolViolator()],
            )


class TestPartitionTrials:
    def test_covers_range_in_order(self):
        for trials in (1, 2, 7, 23, 100):
            for workers in (1, 2, 3, 8, 200):
                chunks = partition_trials(trials, workers)
                covered = [
                    offset + i for offset, count in chunks for i in range(count)
                ]
                assert covered == list(range(trials))
                assert all(count >= 1 for _offset, count in chunks)
                assert len(chunks) == min(workers, trials)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_trials(0, 2)
        with pytest.raises(ValueError):
            partition_trials(5, 0)


class TestOptCache:
    def _system(self, seed=0, weight=2.0):
        from repro.core import SetSystem

        return SetSystem(
            sets={"A": ["u", "v"], "B": ["v", "w"], "C": ["x"]},
            weights={"A": weight, "B": 1.0, "C": 3.0},
        )

    def test_hit_on_equal_content_different_objects(self):
        cache = OptCache()
        first = estimate_opt(self._system(), cache=cache)
        second = estimate_opt(self._system(), cache=cache)  # a distinct object
        assert cache.misses == 1 and cache.hits == 1
        assert second is first  # the cached record itself is shared

    def test_miss_on_different_weights(self):
        cache = OptCache()
        estimate_opt(self._system(weight=2.0), cache=cache)
        estimate_opt(self._system(weight=4.0), cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_miss_on_different_method_or_limit(self):
        cache = OptCache()
        estimate_opt(self._system(), method="exact", cache=cache)
        estimate_opt(self._system(), method="lp", cache=cache)
        estimate_opt(self._system(), method="exact", exact_set_limit=10, cache=cache)
        assert cache.misses == 3 and cache.hits == 0

    def test_lru_eviction(self):
        cache = OptCache(maxsize=2)
        estimate_opt(self._system(weight=1.0), cache=cache)
        estimate_opt(self._system(weight=2.0), cache=cache)
        estimate_opt(self._system(weight=3.0), cache=cache)  # evicts weight=1.0
        assert len(cache) == 2
        estimate_opt(self._system(weight=1.0), cache=cache)
        assert cache.misses == 4 and cache.hits == 0

    def test_fingerprint_ignores_construction_order(self):
        from repro.core import SetSystem

        forward = SetSystem(sets={"A": ["u", "v"], "B": ["w"]})
        backward = SetSystem(sets={"B": ["w"], "A": ["v", "u"]})
        assert system_fingerprint(forward) == system_fingerprint(backward)

    def test_fingerprint_sensitive_to_capacities(self):
        from repro.core import SetSystem

        unit = SetSystem(sets={"A": ["u"], "B": ["u"]})
        doubled = SetSystem(sets={"A": ["u"], "B": ["u"]}, capacities={"u": 2})
        assert system_fingerprint(unit) != system_fingerprint(doubled)

    def test_cached_value_matches_uncached(self):
        cache = OptCache()
        cached = estimate_opt(self._system(), cache=cache)
        plain = estimate_opt(self._system())
        assert cached.value == plain.value
        assert cached.method == plain.method


class TestCompiledInstanceCache:
    def test_sweep_compiles_each_instance_once(self):
        clear_compile_cache()
        instance = random_online_instance(
            12, 18, (2, 3), random.Random(8), weight_range=(1.0, 4.0)
        )
        for algorithm in ("randPr", "greedy-weight", "first-listed"):
            simulate_batch(instance, algorithm, trials=4, seed=0)
        stats = compile_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_distinct_instances_compile_separately(self):
        clear_compile_cache()
        for seed in (1, 2):
            instance = random_online_instance(10, 15, (2, 3), random.Random(seed))
            simulate_batch(instance, "randPr", trials=2, seed=0)
        assert compile_cache_stats()["misses"] == 2
