"""Tests for the public API surface, the exception hierarchy and the examples."""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import exceptions
from repro.exceptions import (
    AlgorithmProtocolError,
    ConstructionError,
    InvalidInstanceError,
    InvalidSetSystemError,
    OspError,
    SolverError,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            InvalidSetSystemError,
            InvalidInstanceError,
            AlgorithmProtocolError,
            SolverError,
            ConstructionError,
        ],
    )
    def test_all_derive_from_osp_error(self, exception_type):
        assert issubclass(exception_type, OspError)
        assert issubclass(exception_type, Exception)

    def test_distinct_types(self):
        types = {
            InvalidSetSystemError,
            InvalidInstanceError,
            AlgorithmProtocolError,
            SolverError,
            ConstructionError,
        }
        assert len(types) == 5

    def test_raising_and_catching_base(self):
        with pytest.raises(OspError):
            raise ConstructionError("bad parameters")

    def test_module_all_is_consistent(self):
        for name in ("OspError", "SolverError", "ConstructionError"):
            assert hasattr(exceptions, name)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_algorithms_exports_resolve(self):
        from repro import algorithms

        for name in algorithms.__all__:
            assert hasattr(algorithms, name), name

    def test_workloads_exports_resolve(self):
        from repro import workloads

        for name in workloads.__all__:
            assert hasattr(workloads, name), name

    def test_experiments_exports_resolve(self):
        from repro import experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name

    def test_lowerbounds_exports_resolve(self):
        from repro import lowerbounds

        for name in lowerbounds.__all__:
            assert hasattr(lowerbounds, name), name

    def test_network_exports_resolve(self):
        from repro import network

        for name in network.__all__:
            assert hasattr(network, name), name

    def test_distributed_exports_resolve(self):
        from repro import distributed

        for name in distributed.__all__:
            assert hasattr(distributed, name), name

    def test_offline_exports_resolve(self):
        from repro import offline

        for name in offline.__all__:
            assert hasattr(offline, name), name

    def test_algorithm_suite_matches_exported_classes(self):
        suite = repro.default_algorithm_suite()
        for algorithm in suite:
            assert isinstance(algorithm, repro.OnlineAlgorithm)


@pytest.mark.parametrize(
    "script",
    ["variable_capacity_router.py", "bandwidth_reservation.py"],
)
def test_additional_example_scripts_run(script):
    """The extension example scripts execute end to end without errors."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
