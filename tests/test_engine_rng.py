"""The RNG bridge's exactness certificate (``repro.engine.rng``).

Every layer of the numpy replay is pinned against the CPython original it
mirrors:

* :func:`state_matrix` (the vectorized ``init_by_array`` seeding) against
  ``random.Random(seed).getstate()``, across small, zero, negative,
  multi-digit and mixed-digit-count seeds;
* :func:`uniform_matrix` against per-trial ``random.Random(seed + b).random()``
  loops, across twist-block boundaries;
* :func:`word_matrix` and :class:`WordStreams` (the raw word-stream layer
  under the per-arrival ``sample`` replay) against per-trial
  ``getrandbits`` loops, including masked advancement (ragged per-trial
  positions) and on-demand growth past twist boundaries;
* :func:`transplant_rng` (the ``getstate`` → ``set_state`` bridge) against
  the source generator it was transplanted from;
* :func:`getrandbits64` against ``random.Random(seed + b).getrandbits(64)``;
* ``batch._sample_uses_pool`` against the branch CPython's ``random.sample``
  actually takes (hypothesis, across the ``(width, take)`` plane);
* :func:`exact_pow` against CPython's scalar ``**`` (the property the numpy
  SIMD ``**`` does *not* have, which is why exact_pow exists);
* the rewritten :func:`~repro.engine.specs.priority_matrix` against the
  scalar per-trial reference construction it replaced, including the
  zero-draw fallback and the scalar-replay routes the bridge must *not*
  absorb (the draw-order-contract fallbacks).
"""

import math
import random
from collections.abc import Sequence

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import RandPrAlgorithm, UniformRandomAlgorithm
from repro.core import OnlineInstance, SetSystem, simulate_batch, simulate_many
from repro.core.priorities import hash_priority, sample_priority
from repro.engine import (
    AlgorithmSpec,
    WordStreams,
    clear_uniform_cache,
    exact_pow,
    priority_matrix,
    spec_for_algorithm,
    state_matrix,
    transplant_rng,
    uniform_cache_stats,
    uniform_matrix,
    word_matrix,
)
from repro.engine import rng as rng_bridge
from repro.engine import specs as specs_module
from repro.engine.cache import compiled_for
from repro.engine.compile import compile_instance
from repro.exceptions import UnsupportedAlgorithmError
from repro.workloads import random_weighted_instance

# ----------------------------------------------------------------------
# state_matrix: the vectorized init_by_array seeding
# ----------------------------------------------------------------------

ASSORTED_SEEDS = [
    0,
    1,
    7,
    2024,
    -5,  # CPython seeds by absolute value
    2**31,
    2**32 - 1,  # largest single-digit key
    2**32,  # smallest two-digit key
    2**32 + 1,
    2**64 + 12345,  # three-digit key
    -(2**33 + 9),
]


def test_state_matrix_matches_getstate_for_assorted_seeds():
    matrix = state_matrix(ASSORTED_SEEDS)
    assert matrix.shape == (len(ASSORTED_SEEDS), rng_bridge.MT_N)
    for row, seed in zip(matrix, ASSORTED_SEEDS):
        reference = random.Random(seed).getstate()[1][:-1]
        assert tuple(int(word) for word in row) == reference, seed


def test_state_matrix_handles_mixed_digit_counts_in_one_batch():
    """A trial range straddling 2**32 mixes one- and two-digit seeding keys."""
    seeds = list(range(2**32 - 3, 2**32 + 3))
    matrix = state_matrix(seeds)
    for row, seed in zip(matrix, seeds):
        assert tuple(int(word) for word in row) == random.Random(seed).getstate()[1][:-1]


def test_state_matrix_empty():
    assert state_matrix([]).shape == (0, rng_bridge.MT_N)


# ----------------------------------------------------------------------
# uniform_matrix: the vectorized draw table
# ----------------------------------------------------------------------


@pytest.mark.parametrize("draws", [1, 5, 311, 312, 313, 624, 625, 700])
def test_uniform_matrix_replays_reference_draws(draws):
    """Bit-equal across twist-block boundaries (312 pairs consume one block)."""
    clear_uniform_cache()
    table = uniform_matrix(1000, trials=4, draws=draws)
    for trial in range(4):
        reference = random.Random(1000 + trial)
        assert list(table[trial]) == [reference.random() for _ in range(draws)]


def test_uniform_matrix_negative_and_large_seeds():
    clear_uniform_cache()
    for seed in (-7, 2**32 - 2, 2**63):
        table = uniform_matrix(seed, trials=3, draws=10)
        for trial in range(3):
            reference = random.Random(seed + trial)
            assert list(table[trial]) == [reference.random() for _ in range(10)]


def test_uniform_matrix_is_read_only_and_cached():
    clear_uniform_cache()
    first = uniform_matrix(5, trials=4, draws=6)
    assert not first.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        first[0, 0] = 0.5
    second = uniform_matrix(5, trials=4, draws=6)
    assert second is first  # cache hit returns the same object
    stats = uniform_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1
    clear_uniform_cache()
    assert uniform_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_uniform_matrix_cache_is_bounded():
    clear_uniform_cache()
    for seed in range(10):
        uniform_matrix(seed, trials=2, draws=2)
    assert uniform_cache_stats()["entries"] <= 4


def test_uniform_matrix_degenerate_shapes():
    clear_uniform_cache()
    assert uniform_matrix(0, trials=0, draws=5).shape == (0, 5)
    assert uniform_matrix(0, trials=5, draws=0).shape == (5, 0)
    with pytest.raises(ValueError):
        uniform_matrix(0, trials=-1, draws=5)


def test_uniform_matrix_spans_trial_blocks():
    """Trial counts beyond the internal block size still line up per trial."""
    clear_uniform_cache()
    block = rng_bridge._TRIAL_BLOCK
    trials = block + 3
    table = uniform_matrix(42, trials=trials, draws=2)
    for trial in (0, block - 1, block, trials - 1):
        reference = random.Random(42 + trial)
        assert list(table[trial]) == [reference.random() for _ in range(2)]


# ----------------------------------------------------------------------
# word_matrix / WordStreams: the raw word-stream layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("words", [1, 5, 623, 624, 625, 1300])
def test_word_matrix_replays_raw_generator_words(words):
    """Bit-equal raw 32-bit outputs across twist-block boundaries (624 words
    consume one block)."""
    table = word_matrix(77, trials=3, words=words)
    assert table.shape == (3, words)
    assert table.dtype == np.uint32
    for trial in range(3):
        reference = random.Random(77 + trial)
        assert list(table[trial]) == [reference.getrandbits(32) for _ in range(words)]


def test_word_matrix_degenerate_shapes():
    assert word_matrix(0, trials=0, words=5).shape == (0, 5)
    assert word_matrix(0, trials=5, words=0).shape == (5, 0)
    with pytest.raises(ValueError):
        word_matrix(0, trials=-1, words=5)


def test_word_streams_replay_getrandbits_for_all_trials():
    streams = WordStreams(seed=2024, trials=5)
    references = [random.Random(2024 + trial) for trial in range(5)]
    for bits in (1, 3, 7, 16, 31, 32):
        drawn = streams.getrandbits(bits)
        assert drawn.tolist() == [ref.getrandbits(bits) for ref in references]


def test_word_streams_masked_advancement_keeps_per_trial_positions():
    """Only masked trials consume a word: the exact property the ragged
    ``_randbelow`` retry replay depends on."""
    streams = WordStreams(seed=9, trials=4)
    references = [random.Random(9 + trial) for trial in range(4)]
    mask_rounds = [
        np.array([True, True, True, True]),
        np.array([True, False, True, False]),
        np.array([False, False, True, False]),
        np.array([True, True, False, True]),
    ]
    for mask in mask_rounds:
        drawn = streams.getrandbits(5, mask)
        expected = [references[t].getrandbits(5) for t in np.flatnonzero(mask)]
        assert drawn.tolist() == expected
    assert streams.positions.tolist() == [3, 2, 3, 2]


def test_word_streams_grow_past_twist_boundaries_on_demand():
    streams = WordStreams(seed=5, trials=2)
    references = [random.Random(5 + trial) for trial in range(2)]
    assert streams.words_produced == 0
    first = streams.getrandbits(32)
    assert streams.words_produced == rng_bridge.MT_N
    assert first.tolist() == [ref.getrandbits(32) for ref in references]
    # Push one trial across the first twist boundary; the other stays put.
    only_first = np.array([True, False])
    for _ in range(rng_bridge.MT_N + 10):
        streams.getrandbits(32, only_first)
    assert streams.words_produced == 2 * rng_bridge.MT_N
    for _ in range(rng_bridge.MT_N + 10):
        references[0].getrandbits(32)
    drawn = streams.getrandbits(13)
    assert drawn.tolist() == [ref.getrandbits(13) for ref in references]


def test_word_streams_validate_arguments():
    streams = WordStreams(seed=0, trials=2)
    with pytest.raises(ValueError):
        streams.getrandbits(0)
    with pytest.raises(ValueError):
        streams.getrandbits(33)
    with pytest.raises(ValueError):
        WordStreams(seed=0, trials=-1)
    empty = WordStreams(seed=0, trials=0)
    assert empty.getrandbits(8).shape == (0,)
    assert empty.positions.shape == (0,)


def test_word_streams_empty_mask_consumes_nothing():
    streams = WordStreams(seed=1, trials=3)
    none = streams.getrandbits(8, np.zeros(3, dtype=bool))
    assert none.shape == (0,)
    assert streams.positions.tolist() == [0, 0, 0]
    assert streams.words_produced == 0  # no word was even generated


def test_word_streams_window_slides_on_long_lockstep_streams():
    """Fully-consumed rows are discarded: memory tracks the position spread,
    not the total stream length, so long arrival sequences stay bounded."""
    streams = WordStreams(seed=8, trials=3)
    references = [random.Random(8 + trial) for trial in range(3)]
    for _ in range(5 * rng_bridge.MT_N):
        drawn = streams.getrandbits(9)
        assert drawn.tolist() == [ref.getrandbits(9) for ref in references]
    assert streams.words_produced == 5 * rng_bridge.MT_N
    # The retained window holds at most the last couple of twist blocks.
    assert streams._words.shape[0] <= 2 * rng_bridge.MT_N
    # Sliding is invisible: the next draws still line up.
    drawn = streams.getrandbits(32)
    assert drawn.tolist() == [ref.getrandbits(32) for ref in references]


def test_word_streams_agree_with_word_matrix():
    """The dynamic stream and the static table are the same words."""
    table = word_matrix(42, trials=3, words=8)
    streams = WordStreams(seed=42, trials=3)
    for k in range(8):
        drawn = streams.getrandbits(32)
        assert drawn.tolist() == [int(w) for w in table[:, k]]


# ----------------------------------------------------------------------
# transplant_rng: the getstate -> set_state bridge
# ----------------------------------------------------------------------


def test_transplant_replays_long_streams():
    source = random.Random(99)
    mirror = transplant_rng(random.Random(99))
    # 2000 draws cross several twist regenerations.
    assert [source.random() for _ in range(2000)] == list(mirror.random_sample(2000))


def test_transplant_mid_stream_and_non_int_seeds():
    source = random.Random("a string seed")
    _ = [source.random() for _ in range(137)]  # advance to mid-block
    mirror = transplant_rng(source)
    assert [source.random() for _ in range(500)] == list(mirror.random_sample(500))


def test_transplant_is_independent_after_copy():
    source = random.Random(3)
    mirror = transplant_rng(source)
    _ = mirror.random_sample(10)
    fresh = random.Random(3)
    assert source.random() == fresh.random()  # source state untouched


# ----------------------------------------------------------------------
# getrandbits64
# ----------------------------------------------------------------------


def test_getrandbits64_matches_reference():
    assert rng_bridge.getrandbits64(2024, trials=64) == [
        random.Random(2024 + trial).getrandbits(64) for trial in range(64)
    ]
    assert rng_bridge.getrandbits64(0, trials=0) == []


# ----------------------------------------------------------------------
# exact_pow: bit-equality with the scalar reference transform
# ----------------------------------------------------------------------


def test_exact_pow_matches_scalar_pow():
    rng = random.Random(1)
    base = np.array([[rng.random() for _ in range(23)] for _ in range(17)])
    exponents = [1.0 / rng.uniform(0.01, 50.0) for _ in range(23)]
    result = exact_pow(base, exponents)
    for row_out, row_in in zip(result, base):
        expected = [value**exponent for value, exponent in zip(row_in.tolist(), exponents)]
        assert row_out.tolist() == expected


def test_exact_pow_unit_exponent_columns_are_copied():
    base = np.array([[0.25, 0.5], [0.75, 0.125]])
    result = exact_pow(base, [1.0, 2.0])
    assert result[:, 0].tolist() == [0.25, 0.75]  # pow(x, 1) == x (C99 Annex F)
    assert result[:, 1].tolist() == [0.5**2.0, 0.125**2.0]


def test_exact_pow_validates_shapes():
    with pytest.raises(ValueError):
        exact_pow(np.zeros(3), [1.0])  # not 2-D
    with pytest.raises(ValueError):
        exact_pow(np.zeros((2, 3)), [1.0, 2.0])  # exponent count mismatch


@settings(max_examples=200, deadline=None)
@given(
    uniform=st.floats(min_value=0.0, max_value=1.0, exclude_min=False),
    weight=st.floats(min_value=1e-12, max_value=1e6),
)
def test_math_pow_is_float_pow(uniform, weight):
    """``math.pow`` and ``**`` are the same libm call on the engine's domain.

    exact_pow relies on this: the reference algorithms compute ``u ** (1/w)``
    via ``float.__pow__`` while the bridge's tight loop calls ``math.pow``.
    """
    exponent = 1.0 / weight
    assert math.pow(uniform, exponent) == uniform**exponent


@settings(max_examples=100, deadline=None)
@given(weight=st.floats(min_value=1e-12, max_value=1e6))
def test_vectorized_exponents_match_scalar_division(weight):
    """``compile_instance``'s ``1.0 / clamped`` equals per-call ``1.0 / w``."""
    vectorized = (1.0 / np.array([weight], dtype=np.float64))[0]
    assert float(vectorized) == 1.0 / weight


# ----------------------------------------------------------------------
# priority_matrix: new vectorized path vs. the scalar construction
# ----------------------------------------------------------------------


def _compiled(num_sets=14, num_elements=20, seed=3, weight_range=(1.0, 6.0)):
    instance = random_weighted_instance(
        num_sets, num_elements, (2, 4), random.Random(seed), weight_range=weight_range
    )
    return compile_instance(instance)


def _scalar_randpr_matrix(compiled, trials, seed):
    """The pre-bridge scalar construction (kept as the correctness oracle)."""
    clamped = [float(value) for value in compiled.clamped_weights]
    exponents = [1.0 / weight for weight in clamped]
    matrix = np.empty((trials, compiled.num_sets), dtype=np.float64)
    for trial in range(trials):
        draw = random.Random(seed + trial).random
        row = [draw() ** exponent for exponent in exponents]
        if 0.0 in row:
            replay = random.Random(seed + trial)
            row = [sample_priority(weight, replay) for weight in clamped]
        matrix[trial] = row
    return matrix


@pytest.mark.parametrize("seed", [0, 17, 2024])
def test_randpr_priority_matrix_is_bit_identical_to_scalar_path(seed):
    clear_uniform_cache()
    compiled = _compiled(seed=seed % 7 + 1)
    vectorized = priority_matrix(AlgorithmSpec("randPr"), compiled, trials=25, seed=seed)
    scalar = _scalar_randpr_matrix(compiled, trials=25, seed=seed)
    assert np.array_equal(vectorized, scalar)


def test_randpr_priority_matrix_with_unit_and_zero_weights():
    """Unit weights take the copy shortcut; zero weights take the clamp."""
    system = SetSystem(
        sets={"A": ["u", "v"], "B": ["v", "w"], "C": ["u", "w"]},
        weights={"A": 1.0, "B": 0.0, "C": 3.5},
    )
    compiled = compile_instance(OnlineInstance(system, name="mixed"))
    vectorized = priority_matrix(AlgorithmSpec("randPr"), compiled, trials=40, seed=5)
    scalar = _scalar_randpr_matrix(compiled, trials=40, seed=5)
    assert np.array_equal(vectorized, scalar)


@pytest.mark.parametrize("seed", [0, 9])
def test_uniform_priority_matrix_is_bit_identical_to_scalar_path(seed):
    clear_uniform_cache()
    compiled = _compiled(seed=seed + 2)
    vectorized = priority_matrix(
        AlgorithmSpec("uniform-priority"), compiled, trials=30, seed=seed
    )
    matrix = np.empty((30, compiled.num_sets))
    for trial in range(30):
        draw = random.Random(seed + trial).random
        matrix[trial] = [draw() for _ in range(compiled.num_sets)]
    assert np.array_equal(vectorized, matrix)
    assert vectorized.flags.writeable  # the public matrix is caller-owned


def test_hashed_fresh_salt_matrix_is_bit_identical_to_scalar_path():
    compiled = _compiled(seed=11)
    clamped = [float(value) for value in compiled.clamped_weights]
    vectorized = priority_matrix(
        AlgorithmSpec("randPr-hashed"), compiled, trials=6, seed=77
    )
    matrix = np.empty((6, compiled.num_sets))
    for trial in range(6):
        reference = random.Random(77 + trial)
        salt = f"salt-{reference.getrandbits(64):016x}"
        matrix[trial] = [
            hash_priority(set_id, weight, salt=salt)
            for set_id, weight in zip(compiled.set_ids, clamped)
        ]
    assert np.array_equal(vectorized, matrix)


def test_zero_draw_trial_falls_back_to_scalar_replay(monkeypatch):
    """A 0.0 uniform (probability ~2^-53) must reroute that trial — and only
    that trial — through the scalar ``sample_priority`` replay."""
    compiled = _compiled(seed=4)
    m = compiled.num_sets
    trials, seed = 5, 123
    real_table = np.array(uniform_matrix(seed, trials, m))
    doctored = real_table.copy()
    doctored[2, 1] = 0.0  # inject the astronomically unlikely draw
    doctored.setflags(write=False)
    monkeypatch.setattr(
        specs_module.rng_bridge, "uniform_matrix", lambda *args: doctored
    )
    calls = []
    real_sample_priority = sample_priority

    def counting_sample_priority(weight, rng):
        calls.append(weight)
        return real_sample_priority(weight, rng)

    monkeypatch.setattr(specs_module, "sample_priority", counting_sample_priority)
    matrix = priority_matrix(AlgorithmSpec("randPr"), compiled, trials=trials, seed=seed)
    assert len(calls) == m  # exactly one trial replayed through the helper
    scalar = _scalar_randpr_matrix(compiled, trials=trials, seed=seed)
    for trial in (0, 1, 3, 4):
        assert matrix[trial].tolist() == scalar[trial].tolist()
    # The doctored trial replays the true stream (whose draws are nonzero).
    assert matrix[2].tolist() == scalar[2].tolist()


# ----------------------------------------------------------------------
# Draw-order-contract fallbacks: what the bridge must NOT absorb
# ----------------------------------------------------------------------


def test_unvectorizable_subclass_resolves_to_none_and_reference_engine():
    """A subclass may override behaviour: spec resolution must refuse it and
    the reference simulator must remain the (unchanged) execution route."""

    class TweakedRandPr(RandPrAlgorithm):
        def start(self, set_infos, rng):  # pragma: no cover - behaviour probe
            super().start(set_infos, rng)

    assert spec_for_algorithm(TweakedRandPr()) is None
    with pytest.raises(UnsupportedAlgorithmError):
        simulate_batch(_instance_small(), TweakedRandPr(), trials=2, seed=0)
    # The reference route still runs it (and is what engine="auto" picks).
    results = simulate_many(_instance_small(), TweakedRandPr(), trials=2, seed=0)
    baseline = simulate_many(_instance_small(), RandPrAlgorithm(), trials=2, seed=0)
    assert [r.completed_sets for r in results] == [r.completed_sets for r in baseline]


def _instance_small():
    return random_weighted_instance(
        8, 12, (2, 3), random.Random(6), weight_range=(1.0, 4.0)
    )


def test_per_step_random_kind_routes_through_word_stream_replay(monkeypatch):
    """uniform-random interleaves per-arrival draws: it must bypass the
    priority-matrix path entirely and replay over the per-trial word streams."""

    def exploding_priority_matrix(*args, **kwargs):  # pragma: no cover - guard
        raise AssertionError("uniform-random must not take the static-priority path")

    import repro.engine.batch as batch_module

    monkeypatch.setattr(batch_module, "priority_matrix", exploding_priority_matrix)
    instance = _instance_small()
    batch = simulate_batch(instance, UniformRandomAlgorithm(), trials=6, seed=44)
    reference = simulate_many(instance, UniformRandomAlgorithm(), trials=6, seed=44)
    for trial, result in enumerate(reference):
        assert batch.completed_sets(trial) == result.completed_sets


@pytest.mark.parametrize("cap", [0, 1, 3])
def test_uniform_random_retry_tail_bailout_replays_scalar(monkeypatch, cap):
    """Trials whose vectorized retry loops hit the round cap must fall back
    to the scalar per-trial replay — and still match the reference bit for
    bit.  Forcing the cap down makes every (cap=0) or many (cap=1, 3) trials
    take that path on an ordinary instance."""
    import repro.engine.batch as batch_module

    monkeypatch.setattr(batch_module, "_MAX_REPLAY_ROUNDS", cap)
    instance = _instance_small()
    batch = simulate_batch(instance, UniformRandomAlgorithm(), trials=8, seed=3)
    reference = simulate_many(instance, UniformRandomAlgorithm(), trials=8, seed=3)
    for trial, result in enumerate(reference):
        assert batch.completed_sets(trial) == result.completed_sets
        assert float(batch.benefits[trial]) == result.benefit


def test_uniform_random_bailout_covers_the_rejection_set_branch(monkeypatch):
    """Same bail-out guarantee on a dense instance (widths past the pool
    threshold), where the duplicate-rejection loop is also in play."""
    import repro.engine.batch as batch_module
    from repro.workloads import random_online_instance

    monkeypatch.setattr(batch_module, "_MAX_REPLAY_ROUNDS", 1)
    instance = random_online_instance(120, 12, (2, 4), random.Random(11))
    assert max(arrival.load for arrival in instance.arrivals()) > 21
    batch = simulate_batch(instance, UniformRandomAlgorithm(), trials=6, seed=31)
    reference = simulate_many(instance, UniformRandomAlgorithm(), trials=6, seed=31)
    for trial, result in enumerate(reference):
        assert batch.completed_sets(trial) == result.completed_sets


def test_uniform_random_trial_blocking_is_invisible(monkeypatch):
    """Splitting the batch into trial blocks must not change a single trial
    (each block's word streams restart at ``seed + block_start``)."""
    import repro.engine.batch as batch_module

    instance = _instance_small()
    whole = simulate_batch(instance, UniformRandomAlgorithm(), trials=9, seed=17)
    monkeypatch.setattr(batch_module, "_UNIFORM_TRIAL_BLOCK", 4)
    split = simulate_batch(instance, UniformRandomAlgorithm(), trials=9, seed=17)
    assert whole.equals(split)


# ----------------------------------------------------------------------
# _sample_uses_pool: pinned against CPython's actual sample branch
# ----------------------------------------------------------------------


class _BranchProbe(Sequence):
    """A sequence that records whether ``random.sample`` materialized it.

    CPython's pool branch starts with ``pool = list(population)``, which
    iterates the whole sequence; the rejection-set branch only ever indexes
    the selected positions.  Observing ``__iter__`` therefore observes the
    branch choice itself.
    """

    def __init__(self, width):
        self.width = width
        self.listed = False

    def __len__(self):
        return self.width

    def __getitem__(self, index):
        if not 0 <= index < self.width:
            raise IndexError(index)
        return index

    def __iter__(self):
        self.listed = True
        return iter(range(self.width))


@settings(max_examples=300, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=3000),
    take_fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_sample_uses_pool_matches_cpython_branch_choice(width, take_fraction, seed):
    """``_sample_uses_pool`` mirrors CPython's ``setsize`` heuristic; if an
    upstream CPython release moved the threshold, the engine's replay would
    take the wrong branch — this property makes that fail loudly across the
    whole ``(width, take)`` plane the engine can encounter (``take >= 1``:
    zero-take arrivals never call ``sample``)."""
    from repro.engine.batch import _sample_uses_pool

    take = max(1, round(take_fraction * width))
    probe = _BranchProbe(width)
    random.Random(seed).sample(probe, take)
    assert _sample_uses_pool(width, take) == probe.listed


# ----------------------------------------------------------------------
# End-to-end: simulate_batch with the bridge active
# ----------------------------------------------------------------------


def test_simulate_batch_unchanged_by_uniform_cache_state():
    instance = _instance_small()
    clear_uniform_cache()
    cold = simulate_batch(instance, "randPr", trials=10, seed=3)
    warm = simulate_batch(instance, "randPr", trials=10, seed=3)
    clear_uniform_cache()
    recold = simulate_batch(instance, "randPr", trials=10, seed=3)
    assert cold.equals(warm) and cold.equals(recold)


def test_compiled_exponents_match_reference_floats():
    compiled = compiled_for(_instance_small())
    clamped = [float(value) for value in compiled.clamped_weights]
    assert compiled.priority_exponents.tolist() == [1.0 / weight for weight in clamped]
