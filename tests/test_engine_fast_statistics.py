"""Structural and determinism invariants of the fast statistical engine.

The equivalence suite (``test_engine_fast_equivalence.py``) certifies that
fast results have the right *distribution*; this suite certifies that every
individual fast trial is still a *legal* OSP outcome, and that the
counter-based RNG delivers the portability the design promises:

* **protocol invariants** on hypothesis-generated systems — every trial's
  completed sets form a capacity-feasible packing, benefits are the exact
  weight sums of the completed sets (never negative), and on small
  instances no trial beats the exact offline optimum;
* **counter-based determinism** — fast results are a pure function of
  ``(instance, spec, seed + trial)``: independent of blocking, immune to
  the global RNG and ``PYTHONHASHSEED``, and bit-identical in a fresh
  interpreter (the same certificate the exact engines earn in
  ``test_engine_determinism.py`` / ``test_router_streaming_determinism.py``).
"""

import random
import subprocess
import sys

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import OnlineInstance, SetSystem
from repro.engine import simulate_fast, trial_generator
from repro.engine.fast import fast_uniforms
from repro.offline.exact import solve_exact
from repro.workloads import random_weighted_instance


@st.composite
def small_systems(draw):
    """A random small weighted set system with variable capacities.

    The same shape as ``test_engine_properties.small_systems`` — the fast
    engine must satisfy the identical protocol obligations on the identical
    adversarially-shrunk input space.
    """
    num_sets = draw(st.integers(min_value=1, max_value=6))
    num_elements = draw(st.integers(min_value=1, max_value=8))
    elements = [f"u{i}" for i in range(num_elements)]
    sets = {}
    for index in range(num_sets):
        members = draw(
            st.lists(st.sampled_from(elements), unique=True, max_size=num_elements)
        )
        sets[f"S{index}"] = members
    weights = {
        set_id: draw(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False, width=32)
        )
        for set_id in sets
    }
    used = {element for members in sets.values() for element in members}
    capacities = {
        element: draw(st.integers(min_value=1, max_value=3)) for element in sorted(used)
    }
    system = SetSystem(sets, weights=weights, capacities=capacities)
    order = list(system.element_ids)
    draw(st.randoms(use_true_random=False)).shuffle(order)
    return OnlineInstance(system, order, name="hypothesis")


@settings(max_examples=60, deadline=None)
@given(instance=small_systems(), seed=st.integers(min_value=0, max_value=2**16))
def test_fast_completed_sets_form_a_feasible_packing(instance, seed):
    """No element is ever oversubscribed by a fast trial's completed sets."""
    result = simulate_fast(instance, "randPr", trials=4, seed=seed)
    for trial in range(result.trials):
        chosen = result.completed_sets(trial)
        assert instance.system.is_feasible_packing(chosen)


@settings(max_examples=60, deadline=None)
@given(instance=small_systems(), seed=st.integers(min_value=0, max_value=2**16))
def test_fast_benefits_are_exact_weight_sums(instance, seed):
    """Float32 stops at the priorities: each trial's benefit is the float64
    weight sum of its completed sets, and therefore never negative."""
    result = simulate_fast(instance, "uniform-priority", trials=4, seed=seed)
    for trial in range(result.trials):
        expected = sum(
            instance.system.weight(set_id)
            for set_id in result.completed_sets(trial)
        )
        assert float(result.benefits[trial]) == float(expected)
        assert float(result.benefits[trial]) >= 0.0


def test_fast_benefit_never_exceeds_offline_opt():
    """Online fast benefit <= exact offline OPT, trial by trial."""
    for seed in range(6):
        instance = random_weighted_instance(
            10, 14, (2, 3), random.Random(seed), weight_range=(1.0, 5.0)
        )
        opt = solve_exact(instance.system)
        assert opt.is_optimal
        result = simulate_fast(instance, "randPr", trials=32, seed=seed)
        assert float(result.benefits.max()) <= opt.weight + 1e-9


@settings(max_examples=30, deadline=None)
@given(instance=small_systems(), seed=st.integers(min_value=0, max_value=2**16))
def test_fast_blocking_is_invisible(instance, seed):
    """Serial fast runs equal the concatenation of offset fast runs."""
    whole = simulate_fast(instance, "randPr", trials=7, seed=seed)
    head = simulate_fast(instance, "randPr", trials=3, seed=seed)
    tail = simulate_fast(instance, "randPr", trials=4, seed=seed + 3)
    np.testing.assert_array_equal(
        whole.benefits, np.concatenate([head.benefits, tail.benefits])
    )


def test_fast_immune_to_global_rng():
    """Perturbing the global ``random`` and numpy RNGs changes nothing."""
    instance = random_weighted_instance(
        16, 24, (2, 3), random.Random(1), weight_range=(1.0, 4.0)
    )
    first = simulate_fast(instance, "randPr", trials=8, seed=5)
    random.seed(999)
    np.random.seed(123)
    random.random()
    np.random.random(100)
    second = simulate_fast(instance, "randPr", trials=8, seed=5)
    assert first.equals(second)


_SUBPROCESS_SCRIPT = """
import random
from repro.engine import simulate_fast, trial_generator
from repro.engine.fast import fast_uniforms
from repro.workloads import random_weighted_instance

instance = random_weighted_instance(
    16, 24, (2, 3), random.Random(1), weight_range=(1.0, 4.0)
)
result = simulate_fast(instance, "randPr", trials=8, seed=5)
print(repr([float(b) for b in result.benefits]))
print(repr([int(c) for c in result.completed_counts]))
print(repr(sorted(map(str, result.completed_sets(0)))))
print(repr([round(float(x), 10) for x in trial_generator(7, 3).random(4)]))
print(repr([float(x) for x in fast_uniforms(7, 2, 3)[1]]))
"""


def test_fast_is_reproducible_across_processes():
    """A fresh interpreter (fresh hash seed, fresh global RNG) agrees bit
    for bit — the PCG64 states are SHA-256 functions of ``seed + trial``,
    nothing process-local leaks in."""
    instance = random_weighted_instance(
        16, 24, (2, 3), random.Random(1), weight_range=(1.0, 4.0)
    )
    result = simulate_fast(instance, "randPr", trials=8, seed=5)

    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
    )
    lines = completed.stdout.strip().splitlines()
    assert lines[0] == repr([float(b) for b in result.benefits])
    assert lines[1] == repr([int(c) for c in result.completed_counts])
    assert lines[2] == repr(sorted(map(str, result.completed_sets(0))))
    assert lines[3] == repr(
        [round(float(x), 10) for x in trial_generator(7, 3).random(4)]
    )
    assert lines[4] == repr([float(x) for x in fast_uniforms(7, 2, 3)[1]])


def test_trial_generator_streams_are_distinct_and_order_free():
    """Distinct trials own distinct streams; drawing them in any order (or
    skipping trials entirely) never changes a stream."""
    forward = [trial_generator(0, trial).random(3) for trial in range(6)]
    backward = [trial_generator(0, trial).random(3) for trial in reversed(range(6))]
    for trial in range(6):
        np.testing.assert_array_equal(forward[trial], backward[5 - trial])
    flat = np.concatenate(forward)
    assert len(np.unique(flat)) == len(flat)  # no stream collisions


def test_fast_uniforms_rows_match_trial_generator():
    """The blocked hot path replays the per-trial generator spec exactly."""
    block = fast_uniforms(42, 5, 8)
    for trial in range(5):
        np.testing.assert_array_equal(
            block[trial], trial_generator(42, trial).random(8, dtype=np.float32)
        )
    shifted = fast_uniforms(42, 3, 8, offset=2)
    np.testing.assert_array_equal(block[2:], shifted)
